//! Property tests for the memory-budgeted planner: over random volumes,
//! topologies, precisions, and budgets, every plan the planner emits
//! fits its budget, tiles the slice stack exactly once, and keeps its
//! residency map consistent with the slab count.

use proptest::prelude::*;
use xct_comm::Topology;
use xct_fp16::Precision;
use xct_plan::{PlanError, Planner, Residency, VolumeDims, MAX_FUSING_TAGS};

fn precision(sel: u8) -> Precision {
    match sel % 3 {
        0 => Precision::Single,
        1 => Precision::Mixed,
        _ => Precision::Half,
    }
}

proptest! {
    /// Any budget the planner accepts yields a plan whose peak per-rank
    /// footprint really stays within that budget.
    #[test]
    fn emitted_plans_fit_their_budget(
        n in 4usize..48,
        slices in 1usize..40,
        angles in 4usize..48,
        nodes in 1usize..3,
        sockets in 1usize..3,
        gpus in 1usize..3,
        sel in 0u8..3,
        max_fusing in 1usize..12,
        headroom in 0u64..64,
    ) {
        let planner = Planner {
            precision: precision(sel),
            hierarchical: true,
            overlap: false,
            max_fusing,
            kernel: None,
        };
        let dims = VolumeDims { n, slices };
        let topo = Topology::new(nodes, sockets, gpus);
        let probe = planner.plan(dims, angles, None, topo).unwrap();
        // Anything from the single-slice floor upward must be planable.
        let floor = probe.matrix_bytes_per_rank() + probe.slice_bytes_per_rank();
        let budget = floor + headroom * probe.slice_bytes_per_rank() / 7;
        let plan = planner.plan(dims, angles, Some(budget), topo).unwrap();
        prop_assert!(plan.fits());
        prop_assert!(
            plan.per_rank_bytes() <= budget,
            "peak {} exceeds budget {budget}",
            plan.per_rank_bytes()
        );
        prop_assert!(plan.fusing >= 1);
        prop_assert!(plan.fusing <= max_fusing.min(MAX_FUSING_TAGS));
    }

    /// Budgets below the single-slice floor are rejected with the exact
    /// requirement — the planner never emits a plan it knows cannot run.
    #[test]
    fn impossible_budgets_report_the_exact_requirement(
        n in 4usize..48,
        slices in 1usize..40,
        angles in 4usize..48,
        gpus in 1usize..5,
        sel in 0u8..3,
        shave in 1u64..1_000_000,
    ) {
        let planner = Planner {
            precision: precision(sel),
            hierarchical: true,
            overlap: false,
            max_fusing: 8,
            kernel: None,
        };
        let dims = VolumeDims { n, slices };
        let topo = Topology::new(1, 1, gpus);
        let probe = planner.plan(dims, angles, None, topo).unwrap();
        let floor = probe.matrix_bytes_per_rank() + probe.slice_bytes_per_rank();
        let budget = floor - 1 - shave % floor;
        match planner.plan(dims, angles, Some(budget), topo) {
            Err(PlanError::BudgetTooSmall { budget: b, required }) => {
                prop_assert_eq!(b, budget);
                prop_assert_eq!(required, floor);
                prop_assert!(required > budget);
            }
            other => prop_assert!(false, "expected BudgetTooSmall, got {other:?}"),
        }
    }

    /// Slabs tile the stack exactly once: execution-ordered indices,
    /// contiguous starts from slice 0, every length within the fusing
    /// bound, total length equal to the stack, and residency agreeing
    /// with the slab count (one slab resident, several all streamed).
    #[test]
    fn slabs_tile_the_volume_exactly(
        n in 4usize..48,
        slices in 1usize..60,
        angles in 4usize..48,
        nodes in 1usize..3,
        sockets in 1usize..3,
        gpus in 1usize..3,
        sel in 0u8..3,
        max_fusing in 1usize..12,
        batches in 1u64..6,
    ) {
        let planner = Planner {
            precision: precision(sel),
            hierarchical: true,
            overlap: false,
            max_fusing,
            kernel: None,
        };
        let dims = VolumeDims { n, slices };
        let topo = Topology::new(nodes, sockets, gpus);
        let probe = planner.plan(dims, angles, None, topo).unwrap();
        let budget = probe.matrix_bytes_per_rank() + batches * probe.slice_bytes_per_rank();
        let plan = planner.plan(dims, angles, Some(budget), topo).unwrap();
        let mut next = 0usize;
        for (i, slab) in plan.slabs.iter().enumerate() {
            prop_assert_eq!(slab.index, i);
            prop_assert_eq!(slab.start, next, "slab {i} leaves a gap or overlap");
            prop_assert!(slab.len >= 1);
            prop_assert!(slab.len <= plan.fusing, "slab {i} wider than fusing");
            let expect = if plan.slabs.len() == 1 {
                Residency::Resident
            } else {
                Residency::Streamed
            };
            prop_assert_eq!(slab.residency, expect);
            next += slab.len;
        }
        prop_assert_eq!(next, slices, "slabs must cover the stack exactly");
        prop_assert_eq!(plan.streaming(), plan.slabs.len() > 1);
    }

    /// Loosening the budget never shrinks the fusing factor: the planner
    /// is monotone in memory, matching the paper's rule of batching as
    /// wide as the footprint allows.
    #[test]
    fn fusing_is_monotone_in_the_budget(
        n in 4usize..48,
        slices in 2usize..40,
        angles in 4usize..48,
        gpus in 1usize..5,
        sel in 0u8..3,
        batches in 1u64..6,
        extra in 1u64..4,
    ) {
        let planner = Planner {
            precision: precision(sel),
            hierarchical: true,
            overlap: false,
            max_fusing: 64,
            kernel: None,
        };
        let dims = VolumeDims { n, slices };
        let topo = Topology::new(1, 1, gpus);
        let probe = planner.plan(dims, angles, None, topo).unwrap();
        let tight = probe.matrix_bytes_per_rank() + batches * probe.slice_bytes_per_rank();
        let loose = tight + extra * probe.slice_bytes_per_rank();
        let a = planner.plan(dims, angles, Some(tight), topo).unwrap();
        let b = planner.plan(dims, angles, Some(loose), topo).unwrap();
        prop_assert!(
            b.fusing >= a.fusing,
            "budget {loose} fused {} < {} at {tight}",
            b.fusing,
            a.fusing
        );
        prop_assert!(b.slabs.len() <= a.slabs.len());
    }
}
