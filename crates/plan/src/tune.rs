//! `petaxct-tune-v1` — kernel tile-shape autotune results as data.
//!
//! `petaxct tune` sweeps the SpMM tile parameters (thread-block size ×
//! shared-staging bytes × fusing) through the perf-suite machinery and
//! writes the measurements as a versioned JSON artifact. The planner
//! consumes that artifact via `--tune-from`: the best point's
//! [`KernelShape`] overrides the executor's default block size and
//! shared-memory budget, and its fusing seeds the planner's fusing cap.
//! Keeping the sweep's raw points (not just the winner) makes the
//! artifact auditable — a reviewer can re-rank under a different figure
//! of merit without re-measuring.

use xct_fp16::Precision;
use xct_telemetry::Json;

/// Schema tag stamped into every tune artifact; [`TuneReport::from_json`]
/// rejects documents carrying any other value.
pub const TUNE_SCHEMA: &str = "petaxct-tune-v1";

/// The kernel tile shape a plan carries to the executor: the CPU
/// realization's analogs of the CUDA launch geometry (threads per block)
/// and shared-memory carve-out (staging bytes per block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelShape {
    /// Rows per thread block (must be a multiple of the 32-lane warp).
    pub block_size: usize,
    /// Shared-staging bytes per block (bounds slots per stage).
    pub shared_bytes: usize,
}

/// One swept configuration and its measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunePoint {
    /// Rows per thread block.
    pub block_size: usize,
    /// Shared-staging bytes per block.
    pub shared_bytes: usize,
    /// Slices fused per kernel call.
    pub fusing: usize,
    /// Best-of-reps wall time of the measured solve.
    pub wall_ns: u64,
    /// Effective flops of the measured solve (padding excluded).
    pub flops: u64,
}

impl TunePoint {
    /// Effective floating-point rate — the sweep's figure of merit.
    pub fn flops_rate(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.flops as f64 / (self.wall_ns as f64 * 1e-9)
        }
    }

    /// The tile shape this point measured.
    pub fn shape(&self) -> KernelShape {
        KernelShape {
            block_size: self.block_size,
            shared_bytes: self.shared_bytes,
        }
    }

    fn to_json(self) -> Json {
        Json::object(vec![
            ("block_size", Json::from(self.block_size as u64)),
            ("shared_bytes", Json::from(self.shared_bytes as u64)),
            ("fusing", Json::from(self.fusing as u64)),
            ("wall_ns", Json::from(self.wall_ns)),
            ("flops", Json::from(self.flops)),
        ])
    }

    fn from_json(json: &Json) -> Result<TunePoint, String> {
        let field = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("tune point missing numeric field {key:?}"))
        };
        Ok(TunePoint {
            block_size: field("block_size")? as usize,
            shared_bytes: field("shared_bytes")? as usize,
            fusing: field("fusing")? as usize,
            wall_ns: field("wall_ns")?,
            flops: field("flops")?,
        })
    }
}

/// One full sweep: the problem it measured plus every point, in sweep
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Precision mode the sweep ran under.
    pub precision: Precision,
    /// Grid side of the swept problem.
    pub n: usize,
    /// Projection angles of the swept problem.
    pub angles: usize,
    /// Measurements in sweep order.
    pub points: Vec<TunePoint>,
}

impl TuneReport {
    /// The winning point: highest effective flops rate, earliest point on
    /// ties (sweep order is deterministic, so ranking is too). `None`
    /// only for an empty sweep.
    pub fn best(&self) -> Option<&TunePoint> {
        self.points
            .iter()
            .fold(None, |best: Option<&TunePoint>, p| match best {
                Some(b) if b.flops_rate() >= p.flops_rate() => Some(b),
                _ => Some(p),
            })
    }

    /// Serializes to the `petaxct-tune-v1` JSON document.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::from(TUNE_SCHEMA)),
            ("precision", Json::from(self.precision.label())),
            ("n", Json::from(self.n as u64)),
            ("angles", Json::from(self.angles as u64)),
            (
                "points",
                Json::from(
                    self.points
                        .iter()
                        .copied()
                        .map(TunePoint::to_json)
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    /// Decodes a parsed document, validating the schema tag.
    pub fn from_json(json: &Json) -> Result<TuneReport, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(s) if s == TUNE_SCHEMA => {}
            Some(s) => {
                return Err(format!(
                    "unsupported tune schema {s:?} (want {TUNE_SCHEMA:?})"
                ))
            }
            None => return Err("document has no \"schema\" field".to_string()),
        }
        let precision: Precision = json
            .get("precision")
            .and_then(Json::as_str)
            .ok_or("document has no \"precision\" field")?
            .parse()
            .map_err(|e| format!("bad precision: {e}"))?;
        let num = |key: &str| -> Result<usize, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("document missing numeric field {key:?}"))
        };
        let points = json
            .get("points")
            .and_then(Json::as_array)
            .ok_or("document has no \"points\" array")?
            .iter()
            .map(TunePoint::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TuneReport {
            precision,
            n: num("n")?,
            angles: num("angles")?,
            points,
        })
    }

    /// Parses artifact text (convenience over [`Json::parse`] +
    /// [`TuneReport::from_json`]).
    pub fn parse(text: &str) -> Result<TuneReport, String> {
        TuneReport::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TuneReport {
        TuneReport {
            precision: Precision::Single,
            n: 16,
            angles: 16,
            points: vec![
                TunePoint {
                    block_size: 32,
                    shared_bytes: 1024,
                    fusing: 1,
                    wall_ns: 2_000_000,
                    flops: 1_000_000,
                },
                TunePoint {
                    block_size: 64,
                    shared_bytes: 4096,
                    fusing: 8,
                    wall_ns: 1_000_000,
                    flops: 8_000_000,
                },
                TunePoint {
                    block_size: 128,
                    shared_bytes: 4096,
                    fusing: 8,
                    wall_ns: 1_000_000,
                    flops: 8_000_000, // ties the winner; earlier point wins
                },
            ],
        }
    }

    #[test]
    fn best_point_maximizes_flops_rate_with_stable_ties() {
        let r = report();
        let best = r.best().unwrap();
        assert_eq!(best.block_size, 64, "earliest of the tied maxima");
        assert_eq!(
            best.shape(),
            KernelShape {
                block_size: 64,
                shared_bytes: 4096
            }
        );
        assert!(best.flops_rate() > r.points[0].flops_rate());
    }

    #[test]
    fn empty_sweep_has_no_best() {
        let r = TuneReport {
            points: Vec::new(),
            ..report()
        };
        assert_eq!(r.best(), None);
    }

    #[test]
    fn json_round_trip_is_identity() {
        let r = report();
        let text = r.to_json().to_string();
        let back = TuneReport::parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = Json::object(vec![
            ("schema", Json::from("petaxct-tune-v999")),
            ("points", Json::from(Vec::<Json>::new())),
        ]);
        let err = TuneReport::from_json(&doc).unwrap_err();
        assert!(err.contains("petaxct-tune-v999"), "{err}");
        assert!(err.contains(TUNE_SCHEMA), "{err}");
    }

    #[test]
    fn missing_fields_are_named() {
        let doc = Json::object(vec![
            ("schema", Json::from(TUNE_SCHEMA)),
            ("precision", Json::from("single")),
            ("n", Json::from(16u64)),
            ("angles", Json::from(16u64)),
            (
                "points",
                Json::from(vec![Json::object(vec![("block_size", Json::from(32u64))])]),
            ),
        ]);
        let err = TuneReport::from_json(&doc).unwrap_err();
        assert!(err.contains("shared_bytes"), "{err}");
    }

    #[test]
    fn zero_wall_time_rates_zero() {
        let p = TunePoint {
            block_size: 32,
            shared_bytes: 1024,
            fusing: 1,
            wall_ns: 0,
            flops: 100,
        };
        assert_eq!(p.flops_rate(), 0.0);
    }
}
