//! `petaxct-profile-v1` — measured cost profiles as data.
//!
//! `petaxct profile` (and `reconstruct --profile-out`) runs a
//! reconstruction with the telemetry cost profiler enabled and writes
//! what it measured as a versioned JSON artifact: per-rank component
//! costs joined with the causal layer's slack, per-tile costs derived
//! from the rank SpMM time and the operator's nonzero distribution, a
//! model-vs-measured drift table, and a skew summary. The planner
//! closes the rebalance loop by consuming the artifact via
//! `--weights-from`: [`ProfileReport::tile_weights`] turns the per-tile
//! costs into the [`TileWeights`] the Hilbert partition re-runs with.

use crate::TileWeights;
use xct_comm::Topology;
use xct_fp16::Precision;
use xct_telemetry::{CostComponent, Json, ALL_COMPONENTS, COMPONENT_COUNT};

/// Schema tag stamped into every profile artifact;
/// [`ProfileReport::from_json`] rejects documents carrying any other
/// value.
pub const PROFILE_SCHEMA: &str = "petaxct-profile-v1";

/// One rank's measured costs: the profiler's per-component self times
/// joined with the causal layer's critical-path attribution and the
/// wire time charged to messages this rank received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankCost {
    /// Rank (telemetry track) id.
    pub rank: u32,
    /// Total busy nanoseconds (merged root spans, causal layer).
    pub busy_ns: u64,
    /// Nanoseconds of this rank's work on the critical path.
    pub on_path_ns: u64,
    /// Slack: busy time the critical path does not depend on. Zero
    /// marks a straggler.
    pub slack_ns: u64,
    /// Simulated wire nanoseconds of messages matched on this rank.
    pub wire_ns: u64,
    /// Per-component self-time nanoseconds, in
    /// [`ALL_COMPONENTS`] order.
    pub components: [u64; COMPONENT_COUNT],
}

impl RankCost {
    /// The nanoseconds this rank charged to `component`.
    pub fn component_ns(&self, component: CostComponent) -> u64 {
        self.components[component.index()]
    }

    fn to_json(&self) -> Json {
        let components = ALL_COMPONENTS
            .iter()
            .map(|c| (c.as_str(), Json::from(self.components[c.index()])))
            .collect();
        Json::object(vec![
            ("rank", Json::from(u64::from(self.rank))),
            ("busy_ns", Json::from(self.busy_ns)),
            ("on_path_ns", Json::from(self.on_path_ns)),
            ("slack_ns", Json::from(self.slack_ns)),
            ("wire_ns", Json::from(self.wire_ns)),
            ("components", Json::object(components)),
        ])
    }

    fn from_json(json: &Json) -> Result<RankCost, String> {
        let field = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("rank entry missing numeric field {key:?}"))
        };
        let table = json
            .get("components")
            .ok_or("rank entry has no \"components\" object")?;
        let mut components = [0u64; COMPONENT_COUNT];
        for c in ALL_COMPONENTS {
            components[c.index()] = table
                .get(c.as_str())
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("rank components missing {:?}", c.as_str()))?;
        }
        Ok(RankCost {
            rank: u32::try_from(field("rank")?).map_err(|_| "rank out of range".to_string())?,
            busy_ns: field("busy_ns")?,
            on_path_ns: field("on_path_ns")?,
            slack_ns: field("slack_ns")?,
            wire_ns: field("wire_ns")?,
            components,
        })
    }
}

/// One row of the model-vs-measured drift table: how much of the run a
/// component actually cost against how much the Tables III–IV analytic
/// model predicted it would.
///
/// Shares (fractions of the respective totals) rather than absolute
/// times carry the comparison, because the mini-scale executor and the
/// paper-scale model live at very different magnitudes; the absolute
/// measured time is kept alongside for the skew math.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentDrift {
    /// The attributed component.
    pub component: CostComponent,
    /// Measured self time, nanoseconds.
    pub measured_ns: u64,
    /// Measured fraction of total attributed time.
    pub measured_share: f64,
    /// Model-predicted fraction of total predicted time.
    pub predicted_share: f64,
}

impl ComponentDrift {
    /// Signed drift: measured share minus predicted share. Positive
    /// means the component costs more of the run than the model thinks.
    pub fn drift(&self) -> f64 {
        self.measured_share - self.predicted_share
    }

    fn to_json(self) -> Json {
        Json::object(vec![
            ("component", Json::from(self.component.as_str())),
            ("measured_ns", Json::from(self.measured_ns)),
            ("measured_share", Json::from(self.measured_share)),
            ("predicted_share", Json::from(self.predicted_share)),
            ("drift", Json::from(self.drift())),
        ])
    }

    fn from_json(json: &Json) -> Result<ComponentDrift, String> {
        let name = json
            .get("component")
            .and_then(Json::as_str)
            .ok_or("drift row has no \"component\" field")?;
        let component =
            CostComponent::parse(name).ok_or_else(|| format!("unknown cost component {name:?}"))?;
        let num = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("drift row missing numeric field {key:?}"))
        };
        Ok(ComponentDrift {
            component,
            measured_ns: num("measured_ns")? as u64,
            measured_share: num("measured_share")?,
            predicted_share: num("predicted_share")?,
        })
    }
}

/// The skew summary: how unevenly cost is spread over tiles and ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Cost of the most expensive tile, nanoseconds.
    pub max_tile_ns: u64,
    /// Mean per-tile cost, nanoseconds.
    pub mean_tile_ns: f64,
    /// Causal critical path of the measured run, nanoseconds.
    pub critical_path_ns: u64,
    /// The largest per-rank slack — the quantity weighted repartition
    /// is meant to shrink.
    pub max_rank_slack_ns: u64,
    /// Ranks with zero slack (stragglers the critical path runs
    /// through), ascending.
    pub zero_slack_ranks: Vec<u32>,
}

impl SkewReport {
    /// Max-over-mean tile cost: 1.0 is perfectly uniform.
    pub fn max_over_mean(&self) -> f64 {
        if self.mean_tile_ns == 0.0 {
            0.0
        } else {
            self.max_tile_ns as f64 / self.mean_tile_ns
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("max_tile_ns", Json::from(self.max_tile_ns)),
            ("mean_tile_ns", Json::from(self.mean_tile_ns)),
            ("max_over_mean", Json::from(self.max_over_mean())),
            ("critical_path_ns", Json::from(self.critical_path_ns)),
            ("max_rank_slack_ns", Json::from(self.max_rank_slack_ns)),
            (
                "zero_slack_ranks",
                Json::from(
                    self.zero_slack_ranks
                        .iter()
                        .map(|&r| Json::from(u64::from(r)))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<SkewReport, String> {
        let num = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("skew report missing numeric field {key:?}"))
        };
        let zero_slack_ranks = json
            .get("zero_slack_ranks")
            .and_then(Json::as_array)
            .ok_or("skew report has no \"zero_slack_ranks\" array")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .map(|r| r as u32)
                    .ok_or("non-numeric zero-slack rank".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SkewReport {
            max_tile_ns: num("max_tile_ns")? as u64,
            mean_tile_ns: num("mean_tile_ns")?,
            critical_path_ns: num("critical_path_ns")? as u64,
            max_rank_slack_ns: num("max_rank_slack_ns")? as u64,
            zero_slack_ranks,
        })
    }
}

/// One full measured cost profile: the problem it profiled, per-tile
/// and per-rank costs, the drift table, and the skew summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Precision mode the profiled run used.
    pub precision: Precision,
    /// Grid side of the profiled problem.
    pub n: usize,
    /// Slices in the profiled stack.
    pub slices: usize,
    /// Projection angles per slice.
    pub angles: usize,
    /// Rank topology the run executed on.
    pub topology: Topology,
    /// Side length of the Hilbert tiles the per-tile costs key on.
    pub tile_size: usize,
    /// Tile-grid width (`ceil(n / tile_size)`).
    pub tiles_x: usize,
    /// Tile-grid height.
    pub tiles_y: usize,
    /// Derived per-tile cost, nanoseconds, row-major over the tile
    /// grid: the owning rank's measured SpMM self time spread over its
    /// tiles proportionally to per-tile operator nonzeros.
    pub tile_costs_ns: Vec<u64>,
    /// Per-rank measured costs, ascending by rank.
    pub ranks: Vec<RankCost>,
    /// Model-vs-measured drift rows, in [`ALL_COMPONENTS`] order.
    pub drift: Vec<ComponentDrift>,
    /// The skew summary.
    pub skew: SkewReport,
}

impl ProfileReport {
    /// The per-tile weights the planner re-partitions with
    /// (`--weights-from`).
    pub fn tile_weights(&self) -> TileWeights {
        TileWeights {
            tile_size: self.tile_size,
            weights: self.tile_costs_ns.clone(),
        }
    }

    /// Serializes to the `petaxct-profile-v1` JSON document.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::from(PROFILE_SCHEMA)),
            ("precision", Json::from(self.precision.label())),
            ("n", Json::from(self.n as u64)),
            ("slices", Json::from(self.slices as u64)),
            ("angles", Json::from(self.angles as u64)),
            (
                "topology",
                Json::from(format!(
                    "{}x{}x{}",
                    self.topology.nodes,
                    self.topology.sockets_per_node,
                    self.topology.gpus_per_socket
                )),
            ),
            ("tile_size", Json::from(self.tile_size as u64)),
            ("tiles_x", Json::from(self.tiles_x as u64)),
            ("tiles_y", Json::from(self.tiles_y as u64)),
            (
                "tile_costs_ns",
                Json::from(
                    self.tile_costs_ns
                        .iter()
                        .map(|&ns| Json::from(ns))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "ranks",
                Json::from(self.ranks.iter().map(RankCost::to_json).collect::<Vec<_>>()),
            ),
            (
                "drift",
                Json::from(self.drift.iter().map(|d| d.to_json()).collect::<Vec<_>>()),
            ),
            ("skew", self.skew.to_json()),
        ])
    }

    /// Decodes a parsed document, validating the schema tag, the tile
    /// table length against the declared grid, and rank ordering.
    pub fn from_json(json: &Json) -> Result<ProfileReport, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(s) if s == PROFILE_SCHEMA => {}
            Some(s) => {
                return Err(format!(
                    "unsupported profile schema {s:?} (want {PROFILE_SCHEMA:?})"
                ))
            }
            None => return Err("document has no \"schema\" field".to_string()),
        }
        let precision: Precision = json
            .get("precision")
            .and_then(Json::as_str)
            .ok_or("document has no \"precision\" field")?
            .parse()
            .map_err(|e| format!("bad precision: {e}"))?;
        let num = |key: &str| -> Result<usize, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("document missing numeric field {key:?}"))
        };
        let topology_text = json
            .get("topology")
            .and_then(Json::as_str)
            .ok_or("document has no \"topology\" field")?;
        let parts: Vec<usize> = topology_text
            .split('x')
            .map(|p| p.parse::<usize>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| format!("bad topology {topology_text:?} (want NxSxG)"))?;
        let [nodes, sockets, gpus] = parts[..] else {
            return Err(format!("bad topology {topology_text:?} (want NxSxG)"));
        };
        let tile_costs_ns = json
            .get("tile_costs_ns")
            .and_then(Json::as_array)
            .ok_or("document has no \"tile_costs_ns\" array")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .map(|ns| ns as u64)
                    .ok_or("non-numeric tile cost".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let ranks = json
            .get("ranks")
            .and_then(Json::as_array)
            .ok_or("document has no \"ranks\" array")?
            .iter()
            .map(RankCost::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(w) = ranks.windows(2).find(|w| w[0].rank >= w[1].rank) {
            return Err(format!(
                "rank entries out of order: {} then {}",
                w[0].rank, w[1].rank
            ));
        }
        let drift = json
            .get("drift")
            .and_then(Json::as_array)
            .ok_or("document has no \"drift\" array")?
            .iter()
            .map(ComponentDrift::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let skew =
            SkewReport::from_json(json.get("skew").ok_or("document has no \"skew\" object")?)?;
        let report = ProfileReport {
            precision,
            n: num("n")?,
            slices: num("slices")?,
            angles: num("angles")?,
            topology: Topology::new(nodes, sockets, gpus),
            tile_size: num("tile_size")?,
            tiles_x: num("tiles_x")?,
            tiles_y: num("tiles_y")?,
            tile_costs_ns,
            ranks,
            drift,
            skew,
        };
        if report.tile_costs_ns.len() != report.tiles_x * report.tiles_y {
            return Err(format!(
                "tile cost table has {} entries, grid is {}x{}",
                report.tile_costs_ns.len(),
                report.tiles_x,
                report.tiles_y
            ));
        }
        Ok(report)
    }

    /// Parses artifact text (convenience over [`Json::parse`] +
    /// [`ProfileReport::from_json`]).
    pub fn parse(text: &str) -> Result<ProfileReport, String> {
        ProfileReport::from_json(&Json::parse(text)?)
    }

    /// Renders the drift and skew tables as fixed-width text (the
    /// `petaxct profile` human output).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: n={} slices={} angles={} topology={}x{}x{} precision={} tiles={}x{} (tile {})",
            self.n,
            self.slices,
            self.angles,
            self.topology.nodes,
            self.topology.sockets_per_node,
            self.topology.gpus_per_socket,
            self.precision.label(),
            self.tiles_x,
            self.tiles_y,
            self.tile_size,
        );
        let _ = writeln!(
            out,
            "\n{:<16} {:>14} {:>10} {:>10} {:>8}",
            "component", "measured", "meas%", "model%", "drift"
        );
        for row in &self.drift {
            let _ = writeln!(
                out,
                "{:<16} {:>12}ns {:>9.1}% {:>9.1}% {:>+7.1}%",
                row.component.as_str(),
                row.measured_ns,
                row.measured_share * 100.0,
                row.predicted_share * 100.0,
                row.drift() * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "\nskew: max tile {}ns, mean tile {:.0}ns (max/mean {:.2})",
            self.skew.max_tile_ns,
            self.skew.mean_tile_ns,
            self.skew.max_over_mean(),
        );
        let _ = writeln!(
            out,
            "critical path {}ns, max rank slack {}ns, zero-slack ranks {:?}",
            self.skew.critical_path_ns, self.skew.max_rank_slack_ns, self.skew.zero_slack_ranks,
        );
        let _ = writeln!(
            out,
            "\n{:<6} {:>12} {:>12} {:>12} {:>12}",
            "rank", "busy", "on-path", "slack", "wire"
        );
        for r in &self.ranks {
            let _ = writeln!(
                out,
                "{:<6} {:>10}ns {:>10}ns {:>10}ns {:>10}ns",
                r.rank, r.busy_ns, r.on_path_ns, r.slack_ns, r.wire_ns,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ProfileReport {
        ProfileReport {
            precision: Precision::Single,
            n: 16,
            slices: 2,
            angles: 16,
            topology: Topology::new(1, 2, 2),
            tile_size: 4,
            tiles_x: 4,
            tiles_y: 4,
            tile_costs_ns: (0..16u64).map(|i| i * 100).collect(),
            ranks: vec![
                RankCost {
                    rank: 0,
                    busy_ns: 1_000,
                    on_path_ns: 1_000,
                    slack_ns: 0,
                    wire_ns: 50,
                    components: [400, 100, 100, 100, 100, 150, 50],
                },
                RankCost {
                    rank: 1,
                    busy_ns: 800,
                    on_path_ns: 300,
                    slack_ns: 500,
                    wire_ns: 0,
                    components: [300, 100, 100, 100, 100, 100, 0],
                },
            ],
            drift: ALL_COMPONENTS
                .iter()
                .map(|&component| ComponentDrift {
                    component,
                    measured_ns: 700,
                    measured_share: 1.0 / 7.0,
                    predicted_share: 0.125,
                })
                .collect(),
            skew: SkewReport {
                max_tile_ns: 1_500,
                mean_tile_ns: 750.0,
                critical_path_ns: 1_300,
                max_rank_slack_ns: 500,
                zero_slack_ranks: vec![0],
            },
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let r = report();
        let text = r.to_json().to_string();
        let back = ProfileReport::parse(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = Json::object(vec![("schema", Json::from("petaxct-profile-v999"))]);
        let err = ProfileReport::from_json(&doc).unwrap_err();
        assert!(err.contains("petaxct-profile-v999"), "{err}");
        assert!(err.contains(PROFILE_SCHEMA), "{err}");
    }

    #[test]
    fn tile_table_must_match_the_declared_grid() {
        let mut r = report();
        r.tile_costs_ns.pop();
        let err = ProfileReport::parse(&r.to_json().to_string()).unwrap_err();
        assert!(err.contains("15 entries"), "{err}");
    }

    #[test]
    fn out_of_order_ranks_are_rejected() {
        let mut r = report();
        r.ranks.swap(0, 1);
        let err = ProfileReport::parse(&r.to_json().to_string()).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn missing_component_keys_are_named() {
        let mut doc = report().to_json();
        // Drop one component key from the first rank's table.
        if let Json::Obj(pairs) = &mut doc {
            let ranks = pairs
                .iter_mut()
                .find(|(k, _)| k == "ranks")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Arr(items) = ranks {
                if let Json::Obj(rank0) = &mut items[0] {
                    let comps = rank0
                        .iter_mut()
                        .find(|(k, _)| k == "components")
                        .map(|(_, v)| v)
                        .unwrap();
                    if let Json::Obj(table) = comps {
                        table.retain(|(k, _)| k != "comm.wait");
                    }
                }
            }
        }
        let err = ProfileReport::from_json(&doc).unwrap_err();
        assert!(err.contains("comm.wait"), "{err}");
    }

    #[test]
    fn weights_extraction_matches_the_tile_table() {
        let r = report();
        let w = r.tile_weights();
        assert_eq!(w.tile_size, 4);
        assert_eq!(w.weights, r.tile_costs_ns);
        assert_eq!(w.expected_len(16), 16);
        assert_eq!(w.grid_side(16), 4);
    }

    #[test]
    fn drift_and_skew_math_is_exact() {
        let row = ComponentDrift {
            component: CostComponent::SpmmCompute,
            measured_ns: 500,
            measured_share: 0.5,
            predicted_share: 0.25,
        };
        assert_eq!(row.drift(), 0.25);
        let skew = report().skew;
        assert_eq!(skew.max_over_mean(), 2.0);
        let empty = SkewReport {
            mean_tile_ns: 0.0,
            ..skew
        };
        assert_eq!(empty.max_over_mean(), 0.0);
    }

    #[test]
    fn text_rendering_names_every_component_and_rank() {
        let text = report().render_text();
        for c in ALL_COMPONENTS {
            assert!(text.contains(c.as_str()), "missing {c} in:\n{text}");
        }
        assert!(text.contains("max rank slack 500ns"), "{text}");
        assert!(text.contains("zero-slack ranks [0]"), "{text}");
    }
}
