//! The optimal partitioning strategy (paper §III-A3) and the complexity
//! model of Table I.

use xct_cluster::MachineSpec;
use xct_fp16::Precision;

/// A batch × data split of the GPUs (Fig 3): `batch` groups each hold a
/// full copy of the per-slice operator and an equal share of the slices;
/// within a group, `data` GPUs partition each slice's x–z plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioning {
    /// Batch processes (Pb): slice-parallel, no communication.
    pub batch: usize,
    /// Data processes (Pd): plane-parallel, communication per iteration.
    pub data: usize,
}

impl Partitioning {
    /// Total GPUs.
    pub fn total(&self) -> usize {
        self.batch * self.data
    }

    /// Fraction of GPU memory usable for data and matrix. The remainder
    /// holds I/O-batch buffers, partial-data send/receive buffers (each
    /// up to a footprint in size), pinned staging, and CUDA context.
    /// Calibrated so every Table III partitioning reproduces exactly —
    /// and, consistently, so the Brain dataset *just* fits 128 nodes in
    /// mixed precision, which the paper states is its minimum (§IV-E1).
    pub const USABLE_MEMORY_FRACTION: f64 = 0.465;

    /// The paper's optimal strategy at node granularity (§III-A3,
    /// Table III): *"minimize partitioning of the 3D data cube in the
    /// x–z dimension; only until per-process memory footprint fits into
    /// GPU memory. Then batch partitioning should take over."*
    ///
    /// Batch groups *duplicate* the memoized matrix but split the
    /// data, so per-GPU footprint = `matrix/(data_nodes·g) +
    /// data/(nodes·g)`. The largest batch factor whose footprint fits
    /// wins; lower precision shrinks both terms — exactly the
    /// 1×/2×/4× progression of Table III.
    pub fn optimal(
        matrix_bytes: u64,
        data_bytes: u64,
        nodes: usize,
        gpus_per_node: usize,
        gpu_memory: u64,
        slices: usize,
    ) -> Partitioning {
        assert!(
            nodes > 0 && gpus_per_node > 0 && gpu_memory > 0 && slices > 0,
            "degenerate inputs"
        );
        let usable = gpu_memory as f64 * Self::USABLE_MEMORY_FRACTION;
        let g = gpus_per_node as f64;
        let mut best = Partitioning {
            batch: 1,
            data: nodes * gpus_per_node,
        };
        for batch in 1..=nodes {
            if !nodes.is_multiple_of(batch) || batch > slices {
                continue;
            }
            let data_nodes = (nodes / batch) as f64;
            let per_gpu =
                matrix_bytes as f64 / (data_nodes * g) + data_bytes as f64 / (nodes as f64 * g);
            if per_gpu <= usable {
                best = Partitioning {
                    batch,
                    data: (nodes / batch) * gpus_per_node,
                };
            }
        }
        best
    }

    /// Memoized-matrix footprint (one `A` + one `Aᵀ`, packed) for a
    /// dataset with `channels` detector channels and `projections`
    /// angles, at `precision`.
    pub fn matrix_bytes(projections: usize, channels: usize, precision: Precision) -> u64 {
        let elem = match precision.storage_bytes() {
            2 => 4u64,
            4 => 8,
            _ => 16,
        };
        let nnz = 0.55 * projections as f64 * (channels as f64).powi(2);
        2 * (nnz as u64) * elem
    }

    /// Sinogram + tomogram footprint at `precision`.
    pub fn data_bytes(
        projections: usize,
        rows: usize,
        channels: usize,
        precision: Precision,
    ) -> u64 {
        let s = precision.storage_bytes() as u64;
        let (k, m, n) = (projections as u64, rows as u64, channels as u64);
        (k * m * n + m * n * n) * s
    }

    /// Convenience: optimal partitioning for a dataset on a machine.
    pub fn optimal_for(
        projections: usize,
        rows: usize,
        channels: usize,
        machine: &MachineSpec,
        precision: Precision,
    ) -> Partitioning {
        Self::optimal(
            Self::matrix_bytes(projections, channels, precision),
            Self::data_bytes(projections, rows, channels, precision),
            machine.nodes,
            machine.sockets_per_node * machine.gpus_per_socket,
            machine.gpu.mem_capacity,
            rows,
        )
    }
}

/// The asymptotic cost model of Table I, evaluated concretely.
///
/// `M` = detector rows (slices), `N` = channels, `Pb` = batch processes,
/// `Pd` = data processes. Units: elements (multiply by storage bytes for
/// bytes) and FLOPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableIComplexity {
    /// Per-process computation, FLOPs (`MN²/PbPd + MN/Pb√Pd`).
    pub compute_per_process: f64,
    /// Per-process memory, elements (`N²/Pd + N/√Pd` per slice share).
    pub memory_per_process: f64,
    /// Per-process communication, elements (`MN/Pb√Pd`).
    pub comm_per_process: f64,
    /// Total computation, FLOPs (`MN² + MN√Pd`).
    pub compute_total: f64,
    /// Total communication, elements (`MN√Pd`).
    pub comm_total: f64,
}

impl TableIComplexity {
    /// Evaluates the Table I formulas (constant factors set to 1, as in
    /// the paper's asymptotic table; the projection-count factor `K` is
    /// folded into per-iteration costs by the caller).
    pub fn evaluate(m: usize, n: usize, part: Partitioning) -> Self {
        let (m, n) = (m as f64, n as f64);
        let pb = part.batch as f64;
        let pd = part.data as f64;
        let sqrt_pd = pd.sqrt();
        TableIComplexity {
            compute_per_process: m * n * n / (pb * pd) + m * n / (pb * sqrt_pd),
            memory_per_process: n * n / pd + n / sqrt_pd,
            comm_per_process: m * n / (pb * sqrt_pd),
            compute_total: m * n * n + m * n * sqrt_pd,
            comm_total: m * n * sqrt_pd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_maximizes_batch_when_memory_allows() {
        // Tiny matrix: everything goes to batch (no data-parallel comm).
        let p = Partitioning::optimal(1 << 30, 4 << 30, 8, 6, 16 << 30, 1000);
        assert_eq!(p.batch, 8);
        assert_eq!(p.data, 6);
        // Huge matrix: all nodes must share one copy.
        let p = Partitioning::optimal(400 << 30, 4 << 30, 8, 6, 16 << 30, 1000);
        assert_eq!(p.batch, 1);
        assert_eq!(p.data, 48);
    }

    #[test]
    fn batch_capped_by_slice_count() {
        let p = Partitioning::optimal(1 << 20, 1 << 20, 24, 6, 16 << 30, 3);
        assert!(p.batch <= 3);
    }

    #[test]
    fn table3_shale_partitionings_match_paper() {
        // Table III, Shale on 4 nodes: double → 1×(4×6),
        // single → 2×(2×6), mixed → 4×(1×6).
        let m = MachineSpec::summit(4);
        let d = Partitioning::optimal_for(1501, 1792, 2048, &m, Precision::Double);
        let s = Partitioning::optimal_for(1501, 1792, 2048, &m, Precision::Single);
        let x = Partitioning::optimal_for(1501, 1792, 2048, &m, Precision::Mixed);
        assert_eq!((d.batch, d.data), (1, 24), "double {d:?}");
        assert_eq!((s.batch, s.data), (2, 12), "single {s:?}");
        assert_eq!((x.batch, x.data), (4, 6), "mixed {x:?}");
    }

    #[test]
    fn table3_charcoal_partitionings_match_paper() {
        // Table III, Charcoal on 128 nodes: double → 1×(128×6),
        // single → 2×(64×6), mixed → 4×(32×6).
        let m = MachineSpec::summit(128);
        let d = Partitioning::optimal_for(4500, 4198, 6613, &m, Precision::Double);
        let s = Partitioning::optimal_for(4500, 4198, 6613, &m, Precision::Single);
        let x = Partitioning::optimal_for(4500, 4198, 6613, &m, Precision::Mixed);
        assert_eq!((d.batch, d.data), (1, 768), "double {d:?}");
        assert_eq!((s.batch, s.data), (2, 384), "single {s:?}");
        assert_eq!((x.batch, x.data), (4, 192), "mixed {x:?}");
    }

    #[test]
    fn table1_complexity_shapes() {
        let m = 128;
        let n = 2048;
        let base = TableIComplexity::evaluate(m, n, Partitioning { batch: 1, data: 1 });
        let dp4 = TableIComplexity::evaluate(m, n, Partitioning { batch: 1, data: 4 });
        let bp4 = TableIComplexity::evaluate(m, n, Partitioning { batch: 4, data: 1 });

        // Data parallelism: compute divides by Pd, comm grows √Pd total.
        assert!((dp4.compute_per_process / base.compute_per_process - 0.25).abs() < 0.01);
        assert!((dp4.comm_total / base.comm_total - 2.0).abs() < 0.01);
        // Batch parallelism: compute divides by Pb, total comm unchanged.
        assert!((bp4.compute_per_process / base.compute_per_process - 0.25).abs() < 0.01);
        assert!((bp4.comm_total - base.comm_total).abs() < 1.0);
        // Quadrupling Pd halves the per-process communication
        // ("the cross-section of each subdomain on the detector halves
        // only when Pd is quadrupled").
        let dp16 = TableIComplexity::evaluate(m, n, Partitioning { batch: 1, data: 16 });
        assert!((dp16.comm_per_process / dp4.comm_per_process - 0.5).abs() < 0.01);
    }

    #[test]
    fn slice_bytes_shrink_with_precision() {
        let d = Partitioning::matrix_bytes(1501, 2048, Precision::Double);
        let s = Partitioning::matrix_bytes(1501, 2048, Precision::Single);
        let x = Partitioning::matrix_bytes(1501, 2048, Precision::Mixed);
        assert!((d as f64 / s as f64 - 2.0).abs() < 0.05);
        assert!((s as f64 / x as f64 - 2.0).abs() < 0.05);
    }
}
