//! xct-plan — reconstruction plans as first-class, checkable values.
//!
//! The paper states one optimal-partitioning rule (§III-A3): *partition
//! the 3D data cube in x–z only until the per-GPU footprint fits into
//! GPU memory, then batch over angles/slices*. Historically that
//! decision was smeared across `core::partition`, the slice
//! decomposition, the paper-scale model, and ad-hoc CLI flags — and a
//! volume larger than memory simply could not run. This crate owns the
//! decision as data: a [`ReconPlan`] records the x–z split (the
//! [`Partitioning`] and the rank topology), the fused-slice count, and a
//! per-slab residency map, and a memory-budgeted [`Planner`] produces it
//! by applying the paper's rule against an explicit byte budget.
//!
//! Plans are *data*, so they can be verified (`xct-verify`'s
//! `plan_fits` proves footprint ≤ budget and exact slab cover before a
//! single byte moves) and executed out-of-core (`xct-core`'s streaming
//! pipeline pages non-resident slabs through `xct-io` while resident
//! slabs compute, bit-identical to the fully resident path because slab
//! boundaries — not data movement — determine the arithmetic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod profile;
pub mod tune;

pub use partition::{Partitioning, TableIComplexity};
pub use profile::{ComponentDrift, ProfileReport, RankCost, SkewReport, PROFILE_SCHEMA};
pub use tune::{KernelShape, TunePoint, TuneReport, TUNE_SCHEMA};

use xct_cluster::MachineSpec;
use xct_comm::Topology;
use xct_fp16::Precision;

/// Reconstruction volume shape at mini scale: a stack of `slices`
/// square `n × n` tomogram planes scanned by a matched detector
/// (`angles × n` sinogram rows per slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeDims {
    /// Grid side (voxels per edge = detector channels).
    pub n: usize,
    /// Number of slices in the stack.
    pub slices: usize,
}

/// Whether a slab's working set lives in (simulated) device memory for
/// the whole run or is paged through `xct-io`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// The slab is loaded once and stays resident.
    Resident,
    /// The slab streams: its sinogram is prefetched while the previous
    /// slab computes, and its volume is written back while the next one
    /// computes.
    Streamed,
}

/// One contiguous run of slices reconstructed together (a fused
/// minibatch in time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabPlan {
    /// Position in execution order.
    pub index: usize,
    /// First slice (inclusive).
    pub start: usize,
    /// Slice count (`<=` the plan's fusing factor).
    pub len: usize,
    /// Where the slab lives during the run.
    pub residency: Residency,
}

/// Measured per-tile cost weights for the x–z Hilbert decomposition,
/// extracted from a `petaxct-profile-v1` artifact (`--weights-from`).
///
/// `weights[ty * tiles_x + tx]` is the measured cost (nanoseconds) of
/// the tile at grid position `(tx, ty)`, row-major over the
/// `ceil(n / tile_size)²` tile grid of one slice plane. A plan carrying
/// weights re-runs the Hilbert partition with these instead of uniform
/// cell counts, shrinking the tile runs of measured-hot ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileWeights {
    /// Side length of the square Hilbert tiles the weights were
    /// measured against. The executor must decompose with this same
    /// tile size for the grid indices to line up.
    pub tile_size: usize,
    /// Row-major per-tile cost table over the full tile grid.
    pub weights: Vec<u64>,
}

impl TileWeights {
    /// Tiles per axis for a grid side of `n` cells.
    pub fn grid_side(&self, n: usize) -> usize {
        n.div_ceil(self.tile_size)
    }

    /// The number of weights a square `n × n` plane requires.
    pub fn expected_len(&self, n: usize) -> usize {
        let side = self.grid_side(n);
        side * side
    }
}

/// The complete, checkable description of how one reconstruction runs:
/// topology mapping, x–z partitioning, precision, fused-slice count,
/// per-slab residency, and the budget the plan was made against.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconPlan {
    /// Node × socket × GPU structure executing the plan.
    pub topology: Topology,
    /// Precision mode (storage + wire + compute).
    pub precision: Precision,
    /// Batch × data split at machine granularity (Table III). At mini
    /// scale the executable pipeline uses one batch group whose `data`
    /// ranks split every slice's x–z plane.
    pub partitioning: Partitioning,
    /// Slices reconstructed simultaneously (the minibatch/fusing
    /// factor); every slab holds at most this many slices.
    pub fusing: usize,
    /// Execution-ordered slabs covering `dims.slices` exactly.
    pub slabs: Vec<SlabPlan>,
    /// The byte budget the planner worked against, if any.
    pub budget_bytes: Option<u64>,
    /// Hierarchical (true) or direct (false) partial-data exchange.
    pub hierarchical: bool,
    /// Overlap each slice's global exchange with the next slice's local
    /// compute (§III-E).
    pub overlap: bool,
    /// Volume shape the plan covers.
    pub dims: VolumeDims,
    /// Projection angles per slice.
    pub angles: usize,
    /// Tuned kernel tile shape (from a `petaxct-tune-v1` artifact via
    /// `--tune-from`); `None` leaves the executor's defaults in place.
    pub kernel: Option<KernelShape>,
    /// Measured per-tile cost weights (from a `petaxct-profile-v1`
    /// artifact via `--weights-from`); `None` keeps the uniform
    /// cell-count Hilbert partition.
    pub tile_weights: Option<TileWeights>,
}

impl ReconPlan {
    /// Stamps measured tile weights onto the plan (builder style); the
    /// executor re-runs the Hilbert decomposition with them.
    pub fn with_tile_weights(mut self, weights: TileWeights) -> ReconPlan {
        self.tile_weights = Some(weights);
        self
    }

    /// Ranks executing the plan.
    pub fn ranks(&self) -> usize {
        self.topology.size()
    }

    /// True when any slab pages through I/O rather than staying
    /// resident.
    pub fn streaming(&self) -> bool {
        self.slabs
            .iter()
            .any(|s| s.residency == Residency::Streamed)
    }

    /// Per-rank share of the memoized per-slice operator (`A` + `Aᵀ`,
    /// restricted to the rank's x–z subdomain).
    pub fn matrix_bytes_per_rank(&self) -> u64 {
        Partitioning::matrix_bytes(self.angles, self.dims.n, self.precision)
            .div_ceil(self.ranks() as u64)
    }

    /// Per-rank bytes one slice's data (sinogram row block + tomogram
    /// plane) adds to the working set.
    pub fn slice_bytes_per_rank(&self) -> u64 {
        Partitioning::data_bytes(self.angles, 1, self.dims.n, self.precision)
            .div_ceil(self.ranks() as u64)
    }

    /// Peak per-rank footprint over the whole run: the operator share
    /// plus the largest slab's data share. This is the quantity the
    /// budget constrains and `xct-verify`'s `plan_fits` re-checks.
    pub fn per_rank_bytes(&self) -> u64 {
        let widest = self.slabs.iter().map(|s| s.len).max().unwrap_or(0) as u64;
        self.matrix_bytes_per_rank() + widest * self.slice_bytes_per_rank()
    }

    /// Whether the peak footprint fits the budget (vacuously true for
    /// unbudgeted plans).
    pub fn fits(&self) -> bool {
        self.budget_bytes
            .is_none_or(|budget| self.per_rank_bytes() <= budget)
    }
}

/// Why a plan could not be made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Even a single slice per rank exceeds the budget: the volume
    /// cannot run on this topology at this precision.
    BudgetTooSmall {
        /// The offered budget.
        budget: u64,
        /// The smallest achievable per-rank footprint (fusing = 1).
        required: u64,
    },
    /// Zero-sized volume, angle count, or fusing bound.
    Degenerate(&'static str),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::BudgetTooSmall { budget, required } => write!(
                f,
                "memory budget {budget} B too small: even one slice per rank needs {required} B \
                 (use more ranks or lower precision)"
            ),
            PlanError::Degenerate(what) => write!(f, "degenerate plan input: {what}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Fusing factors must leave the per-slice tag salts
/// (`(f + 1) << 44`) clear of the collectives' reply namespace
/// (bit 63), so at most `2^19 - 1` slices may be in flight per slab.
pub const MAX_FUSING_TAGS: usize = (1 << 19) - 1;

/// The memory-budgeted planner: applies the paper's §III-A3 rule to a
/// concrete volume, topology, and byte budget.
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// Precision mode the run will use.
    pub precision: Precision,
    /// Hierarchical or direct exchanges.
    pub hierarchical: bool,
    /// Overlap communication with compute (§III-E).
    pub overlap: bool,
    /// Upper bound on the fusing factor (the I/O batch the caller is
    /// willing to stage); the planner only ever shrinks it.
    pub max_fusing: usize,
    /// Tuned kernel tile shape to stamp into emitted plans, typically
    /// the best point of a `petaxct tune` sweep.
    pub kernel: Option<KernelShape>,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            precision: Precision::Mixed,
            hierarchical: true,
            overlap: false,
            max_fusing: 8,
            kernel: None,
        }
    }
}

impl Planner {
    /// Produces the plan for `dims` scanned at `angle_count` angles on
    /// `topology`, honoring `budget_bytes` per rank.
    ///
    /// The paper's rule, applied at mini scale: the x–z split is fixed
    /// by the topology (every rank takes a Hilbert-ordered subdomain of
    /// every slice — partitioning the plane *first*), so the planner's
    /// free variable is the slice batch. It picks the largest fusing
    /// `f ≤ max_fusing` whose per-rank footprint
    /// `matrix/ranks + f · slice/ranks` fits the budget, then covers
    /// the stack with `ceil(slices / f)` slabs. One slab → everything
    /// is resident; more → the run streams, and every slab pages
    /// through `xct-io`.
    pub fn plan(
        &self,
        dims: VolumeDims,
        angle_count: usize,
        budget_bytes: Option<u64>,
        topology: Topology,
    ) -> Result<ReconPlan, PlanError> {
        if dims.n == 0 || dims.slices == 0 {
            return Err(PlanError::Degenerate("empty volume"));
        }
        if angle_count == 0 {
            return Err(PlanError::Degenerate("no projection angles"));
        }
        if self.max_fusing == 0 {
            return Err(PlanError::Degenerate("zero fusing bound"));
        }
        let ranks = topology.size();
        let mut plan = ReconPlan {
            topology,
            precision: self.precision,
            partitioning: Partitioning {
                batch: 1,
                data: ranks,
            },
            fusing: 0,
            slabs: Vec::new(),
            budget_bytes,
            hierarchical: self.hierarchical,
            overlap: self.overlap,
            dims,
            angles: angle_count,
            kernel: self.kernel,
            tile_weights: None,
        };
        let cap = self.max_fusing.min(dims.slices).min(MAX_FUSING_TAGS);
        let fusing = match budget_bytes {
            None => cap,
            Some(budget) => {
                let fixed = plan.matrix_bytes_per_rank();
                let per_slice = plan.slice_bytes_per_rank();
                if fixed + per_slice > budget {
                    return Err(PlanError::BudgetTooSmall {
                        budget,
                        required: fixed + per_slice,
                    });
                }
                // Largest f with fixed + f·per_slice ≤ budget, capped.
                let headroom = (budget - fixed) / per_slice.max(1);
                cap.min(usize::try_from(headroom).unwrap_or(cap))
            }
        };
        plan.fusing = fusing;
        let slab_count = dims.slices.div_ceil(fusing);
        let residency = if slab_count == 1 {
            Residency::Resident
        } else {
            Residency::Streamed
        };
        let mut start = 0;
        for index in 0..slab_count {
            let len = fusing.min(dims.slices - start);
            plan.slabs.push(SlabPlan {
                index,
                start,
                len,
                residency,
            });
            start += len;
        }
        debug_assert_eq!(start, dims.slices, "slabs must cover the stack");
        debug_assert!(plan.fits(), "planner emitted an over-budget plan");
        Ok(plan)
    }

    /// Machine-granularity planning for the paper-scale model (Tables
    /// III–IV): derives the batch × data split with
    /// [`Partitioning::optimal_for`] and wraps it, the machine's
    /// topology, and the dataset shape into one resident-slab plan the
    /// model layer consumes.
    pub fn plan_machine(
        &self,
        projections: usize,
        rows: usize,
        channels: usize,
        machine: &MachineSpec,
        fusing: usize,
    ) -> ReconPlan {
        let partitioning =
            Partitioning::optimal_for(projections, rows, channels, machine, self.precision);
        ReconPlan {
            topology: Topology::new(
                machine.nodes,
                machine.sockets_per_node,
                machine.gpus_per_socket,
            ),
            precision: self.precision,
            partitioning,
            fusing,
            slabs: vec![SlabPlan {
                index: 0,
                start: 0,
                len: rows,
                residency: Residency::Resident,
            }],
            budget_bytes: None,
            hierarchical: self.hierarchical,
            overlap: self.overlap,
            dims: VolumeDims {
                n: channels,
                slices: rows,
            },
            angles: projections,
            kernel: self.kernel,
            tile_weights: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> Planner {
        Planner {
            precision: Precision::Single,
            hierarchical: true,
            overlap: false,
            max_fusing: 8,
            kernel: None,
        }
    }

    #[test]
    fn tuned_shape_propagates_into_plans() {
        let shape = KernelShape {
            block_size: 64,
            shared_bytes: 4096,
        };
        let plan = Planner {
            kernel: Some(shape),
            ..planner()
        }
        .plan(
            VolumeDims { n: 16, slices: 4 },
            16,
            None,
            Topology::new(1, 1, 2),
        )
        .unwrap();
        assert_eq!(plan.kernel, Some(shape));
        assert_eq!(
            planner()
                .plan(
                    VolumeDims { n: 16, slices: 4 },
                    16,
                    None,
                    Topology::new(1, 1, 2),
                )
                .unwrap()
                .kernel,
            None
        );
    }

    #[test]
    fn unbudgeted_plan_is_one_resident_slab_per_batch() {
        let plan = planner()
            .plan(
                VolumeDims { n: 16, slices: 6 },
                16,
                None,
                Topology::new(1, 2, 2),
            )
            .unwrap();
        assert_eq!(plan.fusing, 6);
        assert_eq!(plan.slabs.len(), 1);
        assert_eq!(plan.slabs[0].residency, Residency::Resident);
        assert!(!plan.streaming());
        assert!(plan.fits());
    }

    #[test]
    fn budget_shrinks_fusing_until_it_fits() {
        let dims = VolumeDims { n: 16, slices: 8 };
        let topo = Topology::new(1, 2, 2);
        let unbounded = planner().plan(dims, 16, None, topo).unwrap();
        // A budget just above the two-slice footprint forces fusing 2.
        let two = unbounded.matrix_bytes_per_rank() + 2 * unbounded.slice_bytes_per_rank();
        let plan = planner().plan(dims, 16, Some(two), topo).unwrap();
        assert_eq!(plan.fusing, 2);
        assert_eq!(plan.slabs.len(), 4);
        assert!(plan.streaming());
        assert!(plan.fits());
        for (i, slab) in plan.slabs.iter().enumerate() {
            assert_eq!(slab.index, i);
            assert_eq!(slab.residency, Residency::Streamed);
        }
    }

    #[test]
    fn impossible_budget_is_rejected() {
        let err = planner()
            .plan(
                VolumeDims { n: 16, slices: 4 },
                16,
                Some(16),
                Topology::new(1, 1, 2),
            )
            .unwrap_err();
        match err {
            PlanError::BudgetTooSmall { budget, required } => {
                assert_eq!(budget, 16);
                assert!(required > 16);
            }
            other => panic!("expected BudgetTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn ragged_tail_slab_is_shorter() {
        let dims = VolumeDims { n: 12, slices: 7 };
        let topo = Topology::new(1, 1, 2);
        let probe = planner().plan(dims, 12, None, topo).unwrap();
        let budget = probe.matrix_bytes_per_rank() + 3 * probe.slice_bytes_per_rank();
        let plan = planner().plan(dims, 12, Some(budget), topo).unwrap();
        assert_eq!(plan.fusing, 3);
        let lens: Vec<usize> = plan.slabs.iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![3, 3, 1]);
        let covered: usize = lens.iter().sum();
        assert_eq!(covered, 7);
    }

    #[test]
    fn more_ranks_admit_tighter_budgets() {
        // The x–z rule: partitioning the plane across more ranks shrinks
        // the per-rank footprint, so a budget that fails on 2 ranks can
        // succeed on 8.
        let dims = VolumeDims { n: 32, slices: 4 };
        let small = planner().plan(dims, 32, None, Topology::new(1, 1, 2));
        let tight = small.unwrap().matrix_bytes_per_rank() / 2;
        assert!(matches!(
            planner().plan(dims, 32, Some(tight), Topology::new(1, 1, 2)),
            Err(PlanError::BudgetTooSmall { .. })
        ));
        let wide = planner()
            .plan(dims, 32, Some(tight), Topology::new(2, 2, 2))
            .unwrap();
        assert!(wide.fits());
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let topo = Topology::new(1, 1, 1);
        assert!(planner()
            .plan(VolumeDims { n: 0, slices: 4 }, 8, None, topo)
            .is_err());
        assert!(planner()
            .plan(VolumeDims { n: 8, slices: 0 }, 8, None, topo)
            .is_err());
        assert!(planner()
            .plan(VolumeDims { n: 8, slices: 4 }, 0, None, topo)
            .is_err());
    }

    #[test]
    fn machine_plan_carries_table3_partitioning() {
        let machine = MachineSpec::summit(4);
        let plan = Planner {
            precision: Precision::Mixed,
            ..planner()
        }
        .plan_machine(1501, 1792, 2048, &machine, 16);
        // Table III, Shale, mixed: 4×(1×6).
        assert_eq!(plan.partitioning.batch, 4);
        assert_eq!(plan.partitioning.data, 6);
        assert_eq!(plan.topology.size(), 24);
        assert!(!plan.streaming());
    }
}
