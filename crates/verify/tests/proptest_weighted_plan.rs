//! Property tests for the `--weights-from` gate: every weighted plan
//! the pipeline can actually produce — a planner-emitted plan carrying
//! a weight table that covers its tile grid — must pass `plan_fits`,
//! and every table of the wrong length must be rejected with the
//! grid-mismatch witness.

#![forbid(unsafe_code)]

use proptest::prelude::*;
use xct_comm::Topology;
use xct_plan::{Planner, TileWeights, VolumeDims};
use xct_verify::{plan_fits, ViolationKind};

proptest! {
    /// Producible weighted plans pass: arbitrary per-tile weights
    /// (zeros and nanosecond-scale values alike) on a grid-covering
    /// table never trip the verifier. This is the invariant the
    /// `petaxct profile` → `--weights-from` loop rests on — any profile
    /// artifact whose tile table decodes becomes one of these plans.
    #[test]
    fn grid_covering_weight_tables_always_verify(
        (n, slices, angles, tile, weights) in (8usize..40, 1usize..8, 4usize..32, 1usize..12)
            .prop_flat_map(|(n, slices, angles, tile)| {
                let side = n.div_ceil(tile);
                (
                    Just(n),
                    Just(slices),
                    Just(angles),
                    Just(tile),
                    prop::collection::vec(0u64..10_000_000_000, side * side..=side * side),
                )
            }),
        topo_sel in 0u8..4,
    ) {
        let topology = match topo_sel {
            0 => Topology::new(1, 1, 1),
            1 => Topology::new(1, 1, 2),
            2 => Topology::new(1, 2, 2),
            _ => Topology::new(2, 2, 1),
        };
        let plan = Planner::default()
            .plan(VolumeDims { n, slices }, angles, None, topology)
            .unwrap()
            .with_tile_weights(TileWeights { tile_size: tile, weights });
        plan_fits(&plan).assert_ok("planner plan + grid-covering weights");
    }

    /// A table that misses the grid by even one entry is rejected, and
    /// the witness names both the table length and the grid side.
    #[test]
    fn mis_sized_weight_tables_are_rejected_with_the_grid_witness(
        n in 8usize..40,
        tile in 1usize..12,
        off_by in 1usize..4,
        longer in any::<bool>(),
    ) {
        let side = n.div_ceil(tile);
        let want = side * side;
        let len = if longer { want + off_by } else { want.saturating_sub(off_by) };
        prop_assume!(len != want);
        let plan = Planner::default()
            .plan(VolumeDims { n, slices: 2 }, 8, None, Topology::new(1, 1, 2))
            .unwrap()
            .with_tile_weights(TileWeights {
                tile_size: tile,
                weights: vec![1u64; len],
            });
        let report = plan_fits(&plan);
        prop_assert!(!report.ok());
        prop_assert!(
            report.violations.iter().any(|v| matches!(
                v.kind,
                ViolationKind::WeightGridMismatch { weights, grid_side }
                    if weights == len && grid_side == side
            )),
            "missing grid witness in: {report}"
        );
    }
}
