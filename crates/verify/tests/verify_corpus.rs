//! The known-bad corpus: every communication bug PR 3 fixed must be
//! rejected by the static layer or caught by the schedule explorer, with
//! the *right* diagnostic and witness — and the corresponding correct
//! artifacts must pass cleanly.

#![forbid(unsafe_code)]

use std::time::Duration;
use xct_comm::{
    Communicator, CompiledPlans, DirectPlan, Footprints, HierarchicalPlan, Ownership, PlanError,
    Topology,
};
use xct_verify::corpus::{
    aliased_reply_exchange, barrier_program, buggy_allreduce_claims, dropped_direct,
    duplicate_designee_step, duplicated_direct, misrouted_direct, over_budget_plan,
    single_sweep_gather, small_direct_fixture, unheld_direct, unsorted_transfer,
};
use xct_verify::deadlock::{CommOp, CommProgram};
use xct_verify::{
    explore, verify_all_direct, verify_all_hierarchical, verify_direct, verify_reduce_step,
    ExchangeLevel, ViolationKind,
};

// ---- PR-3 bug 1: barrier peer mispairing (deadlock layer) ----

#[test]
fn correct_barrier_program_is_deadlock_free() {
    for n in [2, 3, 4, 7] {
        let report = barrier_program(n, 0x4000, false).check();
        assert!(report.ok(), "n={n}: {report}");
    }
}

#[test]
fn buggy_barrier_peer_formula_is_flagged() {
    let report = barrier_program(4, 0x4000, true).check();
    assert!(!report.ok(), "mis-paired barrier must not verify");
    // The mis-parenthesized formula waits on out-of-range ranks.
    let unmatched = report
        .violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::UnmatchedRecv { peer, .. } if peer >= 4))
        .count();
    assert!(
        unmatched > 0,
        "expected out-of-range UnmatchedRecv witnesses, got: {report}"
    );
}

// ---- PR-3 bug 2: allreduce reply-tag aliasing (tag layer + explorer) ----

#[test]
fn buggy_allreduce_claims_collide() {
    let report = buggy_allreduce_claims(4, 0x7000).check();
    let hit = report.violations.iter().any(|v| {
        matches!(
            &v.kind,
            ViolationKind::TagCollision { src: 0, tag, first, second, .. }
                if *tag == 0x7001 && first != second
        )
    });
    assert!(hit, "expected 0→r collision at 0x7001, got: {report}");
}

#[test]
fn aliased_reply_swaps_payloads_at_baseline() {
    let n = 3;
    let expect: f64 = (1..=n).map(|r| r as f64).sum();
    let oracle = move |results: &[(f64, f64)]| {
        results.iter().enumerate().find_map(|(r, &(red, sen))| {
            (red != expect || sen != -1.0)
                .then(|| format!("rank {r} got (reduced={red}, sentinel={sen})"))
        })
    };
    // The buggy reply tag collides with the next exchange: caught at
    // baseline (no chaos needed — the cross-match is deterministic).
    let bad = explore(
        n,
        Duration::from_secs(5),
        &[],
        |c| aliased_reply_exchange(c, 0x7000, 0x7001),
        oracle,
    );
    let fail = bad.first_failure().expect("aliased reply must fail");
    assert_eq!(fail.label, "baseline");
    // A disjoint reply tag survives baseline and chaos schedules.
    let good = explore(
        n,
        Duration::from_secs(5),
        &[1, 2, 3],
        |c| aliased_reply_exchange(c, 0x7000, 0x7007),
        oracle,
    );
    assert!(good.ok(), "{:?}", good.first_failure());
}

// ---- PR-3 bug 3: unsorted partial-data indices (construction layer) ----

#[test]
fn unsorted_transfer_is_rejected_with_position() {
    match unsorted_transfer() {
        Err(PlanError::UnsortedIndices {
            position,
            prev,
            next,
        }) => {
            assert_eq!((position, prev, next), (1, 3, 3));
        }
        other => panic!("expected UnsortedIndices, got {other:?}"),
    }
}

// ---- Direct-plan conservation corruptions ----

#[test]
fn misrouted_direct_reports_wrong_destination() {
    let (fp, own) = small_direct_fixture();
    let report = verify_direct(&fp, &own, &misrouted_direct());
    assert!(report.violations.iter().any(|v| matches!(
        v.kind,
        ViolationKind::Misrouted {
            row: 2,
            dst: 0,
            expected: 1
        }
    )));
}

#[test]
fn dropped_direct_reports_zero_delivery() {
    let (fp, own) = small_direct_fixture();
    let report = verify_direct(&fp, &own, &dropped_direct());
    assert!(report.violations.iter().any(|v| matches!(
        v.kind,
        ViolationKind::Conservation {
            holder: 0,
            row: 2,
            delivered: 0
        }
    )));
}

#[test]
fn duplicated_direct_reports_double_delivery() {
    let (fp, own) = small_direct_fixture();
    let report = verify_direct(&fp, &own, &duplicated_direct());
    assert!(report.violations.iter().any(|v| matches!(
        v.kind,
        ViolationKind::Conservation {
            holder: 0,
            row: 2,
            delivered: 2
        }
    )));
}

#[test]
fn unheld_direct_reports_phantom_row() {
    let (fp, own) = small_direct_fixture();
    let report = verify_direct(&fp, &own, &unheld_direct());
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(v.kind, ViolationKind::UnheldRow { sender: 0, row: 3 })));
}

#[test]
fn duplicate_designee_reports_double_count() {
    let (pre, step) = duplicate_designee_step();
    let report = verify_reduce_step(&pre, &step, ExchangeLevel::Socket);
    assert!(report.violations.iter().any(|v| matches!(
        v.kind,
        ViolationKind::Conservation {
            row: 5,
            delivered: 2,
            ..
        }
    )));
}

// ---- Deadlock: genuine cyclic wait ----

#[test]
fn cross_wait_cycle_is_extracted() {
    // Rank 0 waits for rank 1's second op; rank 1 waits for rank 0's
    // second op — a classic head-of-line cycle.
    let program = CommProgram {
        ops: vec![
            vec![
                CommOp::Recv { from: 1, tag: 1 },
                CommOp::Send { to: 1, tag: 2 },
            ],
            vec![
                CommOp::Recv { from: 0, tag: 2 },
                CommOp::Send { to: 0, tag: 1 },
            ],
        ],
    };
    let report = program.check();
    let cycle = report
        .violations
        .iter()
        .find_map(|v| match &v.kind {
            ViolationKind::DeadlockCycle { cycle } => Some(cycle.clone()),
            _ => None,
        })
        .expect("cycle must be reported");
    assert!(cycle.len() >= 2, "cycle too short: {cycle:?}");
    assert!(cycle.iter().any(|&(r, _)| r == 0) && cycle.iter().any(|&(r, _)| r == 1));
}

// ---- Explorer: progress bug invisible to static checks ----

#[test]
fn single_sweep_gather_passes_baseline_fails_under_chaos() {
    let n = 4;
    let expect: f64 = (1..=n).map(|r| r as f64).sum();
    let oracle = move |results: &[f64]| {
        results
            .iter()
            .enumerate()
            .find_map(|(r, &v)| (v != expect).then(|| format!("rank {r} got {v}, want {expect}")))
    };
    let seeds: Vec<u64> = (0..48).collect();
    let report = explore(
        n,
        Duration::from_secs(10),
        &seeds,
        |c| single_sweep_gather(c, 0x5000),
        oracle,
    );
    assert!(
        report.outcomes[0].failure.is_none(),
        "baseline must pass: {:?}",
        report.outcomes[0]
    );
    let fail = report
        .first_failure()
        .expect("some chaos schedule must expose the dropped contribution");
    assert!(
        fail.label.starts_with("delay-one"),
        "expected a delay-one schedule to catch it, got {}",
        fail.label
    );
    // Determinism: re-running the failing schedule alone reproduces it.
    let seed: u64 = fail
        .label
        .rsplit("seed=0x")
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .expect("label carries the seed");
    let again = explore(
        n,
        Duration::from_secs(10),
        &[seed],
        |c| single_sweep_gather(c, 0x5000),
        oracle,
    );
    let repro = again
        .outcomes
        .iter()
        .find(|o| o.label == fail.label)
        .expect("same schedule present");
    assert_eq!(
        repro.failure, fail.failure,
        "seeded schedule must reproduce"
    );

    // Every failing chaos schedule carries a post-mortem: the seed
    // re-ran with the flight recorder armed, and the dump names the
    // schedule so the post-mortem is reproducible from the label alone.
    let dump = fail
        .flight_dump
        .as_ref()
        .expect("failing chaos schedule must produce a flight dump");
    let doc = xct_telemetry::Json::parse(dump).expect("flight dump is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(xct_telemetry::Json::as_str),
        Some("petaxct-flightrec-v1")
    );
    assert!(
        doc.get("reason")
            .and_then(xct_telemetry::Json::as_str)
            .is_some_and(|r| r.contains(&fail.label)),
        "dump reason must name the failing schedule"
    );
    let events = doc
        .get("events")
        .and_then(xct_telemetry::Json::as_array)
        .expect("dump carries events");
    assert!(!events.is_empty(), "flight ring must hold the last moments");
    // Passing schedules carry no dump.
    assert!(report.outcomes[0].flight_dump.is_none());
}

// ---- Reconstruction plans: budgets and streamed schedules ----

#[test]
fn over_budget_plan_artifact_is_rejected_with_the_exact_gap() {
    let plan = over_budget_plan();
    let budget = plan.budget_bytes.expect("artifact carries a budget");
    let required = plan.per_rank_bytes();
    assert!(required > budget, "artifact must actually be over budget");
    let report = xct_verify::plan_fits(&plan);
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::PlanOverBudget { budget: b, required: r }
                if b == budget && r == required
        )),
        "expected PlanOverBudget with the exact gap, got: {report}"
    );
}

#[test]
fn streamed_slab_exchanges_survive_chaos_schedules() {
    // The streaming executor runs one exchange sequence per slab; the
    // per-slab tag salt is what keeps a chaos-delayed message from slab
    // k out of slab k+1's matching window. Drive a minimal per-slab
    // gather over a real streamed plan under baseline + chaos schedules
    // and require every schedule to produce the per-slab sums.
    let planner = xct_plan::Planner::default();
    let dims = xct_plan::VolumeDims { n: 16, slices: 6 };
    let topo = Topology::new(1, 1, 2);
    let probe = planner.plan(dims, 16, None, topo).unwrap();
    let budget = probe.matrix_bytes_per_rank() + 2 * probe.slice_bytes_per_rank();
    let plan = planner.plan(dims, 16, Some(budget), topo).unwrap();
    assert!(plan.streaming(), "budget must force streaming");
    xct_verify::plan_fits(&plan).assert_ok("streamed chaos plan");

    let n = plan.ranks();
    let slabs: Vec<usize> = plan.slabs.iter().map(|s| s.index).collect();
    let expect: Vec<f64> = slabs
        .iter()
        .map(|&s| (1..=n).map(|r| (r * (s + 1)) as f64).sum())
        .collect();
    let body = move |comm: &Communicator| -> Vec<f64> {
        let me = comm.rank();
        let mut sums = Vec::with_capacity(slabs.len());
        for &s in &slabs {
            let tag = 0x9000u64 ^ xct_verify::slice_salt(s);
            let value = ((me + 1) * (s + 1)) as f64;
            if me == 0 {
                let mut acc = value;
                for src in 1..comm.size() {
                    let v: Vec<f64> = comm.recv_vals(src, tag).expect("gather");
                    acc += v[0];
                }
                for dst in 1..comm.size() {
                    comm.send_vals(dst, tag ^ 0x10, &[acc]).expect("bcast");
                }
                sums.push(acc);
            } else {
                comm.send_vals(0, tag, &[value]).expect("contribute");
                let v: Vec<f64> = comm.recv_vals(0, tag ^ 0x10).expect("result");
                sums.push(v[0]);
            }
        }
        sums
    };
    let oracle = move |results: &[Vec<f64>]| {
        results.iter().enumerate().find_map(|(r, sums)| {
            (sums != &expect).then(|| format!("rank {r} got {sums:?}, want {expect:?}"))
        })
    };
    let seeds: Vec<u64> = (0..16).collect();
    let report = explore(n, Duration::from_secs(10), &seeds, body, oracle);
    assert!(report.ok(), "{:?}", report.first_failure());
}

// ---- Generated plans: the real pipeline must verify cleanly ----

#[test]
fn built_plans_verify_cleanly_across_topologies() {
    for seed in 0..24u64 {
        let case = xct_verify::corpus::gen_case(seed);
        let fp = &case.footprints;
        let own = &case.ownership;
        let direct = DirectPlan::build(fp, own);
        let dc = CompiledPlans::compile_direct(fp, own, &direct);
        for overlap in [false, true] {
            let report = verify_all_direct(fp, own, &direct, &dc, overlap);
            assert!(
                report.ok(),
                "seed {seed} direct overlap={overlap}: {report}"
            );
        }
        let hier = HierarchicalPlan::build(fp, own, &case.topology);
        let hc = CompiledPlans::compile_hierarchical(fp, own, &hier);
        for overlap in [false, true] {
            let report = verify_all_hierarchical(fp, own, &case.topology, &hier, &hc, overlap);
            assert!(
                report.ok(),
                "seed {seed} hier {:?} overlap={overlap}: {report}",
                case.topology
            );
        }
    }
}

#[test]
fn corrupted_compiled_plan_is_caught_end_to_end() {
    // Sanity that verify_compiled is not vacuous: verify a compiled plan
    // against a *different* ownership than it was built for.
    let fp = Footprints::new(vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3]]);
    let own = Ownership::new(vec![0, 0, 1, 1], 2);
    let other = Ownership::new(vec![0, 1, 0, 1], 2);
    let direct = DirectPlan::build(&fp, &own);
    let compiled = CompiledPlans::compile_direct(&fp, &own, &direct);
    let report = xct_verify::verify_compiled(&fp, &other, &compiled);
    assert!(!report.ok(), "mismatched ownership must not verify");
}

#[test]
fn hierarchical_against_wrong_topology_is_malformed() {
    let topo = Topology::new(2, 2, 1);
    let n = topo.size();
    let fp = Footprints::new(
        (0..n)
            .map(|p| vec![p as u32, ((p + 1) % n) as u32])
            .collect(),
    );
    let own = Ownership::new((0..n as u32).collect(), n);
    let hier = HierarchicalPlan::build(&fp, &own, &topo);
    let wrong = Topology::new(1, 2, 2);
    let report = xct_verify::verify_hierarchical(&fp, &own, &wrong, &hier);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::Malformed { .. })),
        "group/topology mismatch must be malformed: {report}"
    );
}

// ---- Mutated index programs: the abstract-interpretation layer ----

#[test]
fn oob_gather_is_rejected_with_exact_interval_witness() {
    let report = xct_verify::verify_bounds(&xct_verify::corpus::oob_gather_compiled());
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            xct_verify::ViolationKind::IndexOutOfBounds {
                access: xct_verify::AccessKind::SendGather,
                index: 40,
                len: 3
            }
        ) && v.rank == 0),
        "expected send-gather OOB (40, len 3) at rank 0, got: {report}"
    );
}

#[test]
fn oob_recv_landing_is_rejected_with_exact_interval_witness() {
    let report = xct_verify::verify_bounds(&xct_verify::corpus::oob_recv_compiled());
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            xct_verify::ViolationKind::IndexOutOfBounds {
                access: xct_verify::AccessKind::RecvLanding,
                index: 9,
                len: 2
            }
        )),
        "expected recv-landing OOB (9, len 2), got: {report}"
    );
}

#[test]
fn oob_keep_destination_is_rejected() {
    let report = xct_verify::verify_bounds(&xct_verify::corpus::oob_keep_compiled());
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            xct_verify::ViolationKind::IndexOutOfBounds {
                access: xct_verify::AccessKind::KeepDst,
                index: 30,
                len: 2
            }
        )),
        "expected keep-destination OOB (30, len 2), got: {report}"
    );
}

#[test]
fn oob_restriction_is_rejected() {
    let report = xct_verify::verify_bounds(&xct_verify::corpus::oob_restrict_compiled());
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            xct_verify::ViolationKind::IndexOutOfBounds {
                access: xct_verify::AccessKind::Restrict,
                index: 77,
                len: 3
            }
        )),
        "expected restriction OOB (77, len 3), got: {report}"
    );
}

#[test]
fn read_before_finish_is_a_pending_write_read() {
    let ops = xct_verify::corpus::read_before_finish_schedule();
    let report = xct_verify::verify_scratch_lifetime(0, &ops);
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            xct_verify::ViolationKind::PendingWriteRead {
                buffer: "acc",
                slice: 0,
                pending: 3
            }
        )),
        "expected acc read with 3 pending writes, got: {report}"
    );
}

#[test]
fn cross_socket_steal_is_rejected() {
    let (plans, topo, rehomed) = xct_verify::corpus::cross_socket_steal();
    let report = xct_verify::verify_transfer_safety(&plans, &topo, &[0, 1], &rehomed);
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            xct_verify::ViolationKind::CrossSocketSteal {
                from: 0,
                to: 2,
                from_socket: 0,
                to_socket: 1
            }
        )),
        "expected cross-socket witness, got: {report}"
    );
}

#[test]
fn tag_colliding_steal_is_rejected() {
    let (plans, topo, rehomed) = xct_verify::corpus::tag_colliding_steal();
    let report = xct_verify::verify_transfer_safety(&plans, &topo, &[0, 1], &rehomed);
    assert!(
        report.violations.iter().any(|v| matches!(
            &v.kind,
            xct_verify::ViolationKind::TagCollision { second, .. }
                if second.contains("stolen slice 0")
        )),
        "expected a collision against the stolen slice, got: {report}"
    );
}

#[test]
fn truncated_rehoming_is_rejected_with_the_stale_tag() {
    let (plans, topo, rehomed) = xct_verify::corpus::truncated_rehoming();
    let report = xct_verify::verify_transfer_safety(&plans, &topo, &[0, 1], &rehomed);
    assert!(
        report.violations.iter().any(|v| matches!(
            v.kind,
            xct_verify::ViolationKind::RehomingGap { vacated: 0, .. }
        )),
        "expected a re-homing gap naming the vacated rank, got: {report}"
    );
}

#[test]
fn legal_steal_fixture_rehoming_verifies_cleanly() {
    // The same fixture the mutations corrupt must pass untouched — the
    // work-stealing precondition the ROADMAP item needs.
    let (plans, topo) = xct_verify::corpus::steal_fixture();
    let steal = xct_verify::SliceSteal {
        slice: 0,
        from: 0,
        to: 1,
    };
    let rehomed = xct_verify::rehome_slice(&plans, steal);
    assert!(!rehomed.transfers.is_empty());
    let report = xct_verify::verify_transfer_safety(&plans, &topo, &[0, 1, 2], &rehomed);
    assert!(report.ok(), "{report}");
}
