//! Deadlock-freedom verification of abstract communication programs.
//!
//! A [`CommProgram`] is each rank's ordered list of send/recv operations
//! — the communication skeleton of an exchange, with payloads erased.
//! Under the runtime's matching rules (buffered non-blocking sends,
//! blocking receives matched by `(source, tag)` with per-key FIFO), the
//! `i`-th receive at rank `q` for key `(p, t)` completes exactly when
//! rank `p` has executed its `i`-th send to `q` with tag `t`. The
//! program is deadlock-free iff the resulting wait-for graph — program
//! order within each rank, plus one edge from every send to the receive
//! it satisfies — admits a topological order. A cycle is reported with
//! the participating `(rank, op)` pairs; a receive whose send never
//! exists is reported as [`ViolationKind::UnmatchedRecv`] (it can only
//! time out, or steal a later exchange's message).

use crate::diag::{VerifyReport, ViolationKind};
use std::collections::HashMap;
use xct_comm::{CompiledPlans, LevelProgram};

/// One communication operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// Buffered non-blocking send: executes when reached, never blocks.
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
    },
    /// Blocking receive matched by `(from, tag)`.
    Recv {
        /// Expected source rank.
        from: usize,
        /// Expected tag.
        tag: u64,
    },
}

/// Per-rank ordered operation lists.
#[derive(Debug, Clone, Default)]
pub struct CommProgram {
    /// `ops[rank]` in program order.
    pub ops: Vec<Vec<CommOp>>,
}

impl CommProgram {
    /// World size.
    pub fn num_ranks(&self) -> usize {
        self.ops.len()
    }

    /// The forward (reduce) skeleton of a compiled plan under `salt`:
    /// per level, sends are posted first, then receives complete in plan
    /// order — matching `reduce_local` + `global_begin`/`global_finish`.
    pub fn reduce_of(plans: &CompiledPlans, salt: u64) -> Self {
        let n = plans.num_ranks();
        let ops = (0..n)
            .map(|p| {
                let rp = plans.rank(p);
                let mut ops = Vec::new();
                for level in rp.local_levels() {
                    push_level(&mut ops, level, salt);
                }
                push_level(&mut ops, rp.global_level(), salt);
                ops
            })
            .collect();
        CommProgram { ops }
    }

    /// The transpose (scatter) skeleton of a compiled plan under `salt`.
    pub fn scatter_of(plans: &CompiledPlans, salt: u64) -> Self {
        let n = plans.num_ranks();
        let ops = (0..n)
            .map(|p| {
                let rp = plans.rank(p);
                let mut ops = Vec::new();
                push_level(&mut ops, rp.scatter_global_level(), salt);
                for level in rp.scatter_local_levels() {
                    push_level(&mut ops, level, salt);
                }
                ops
            })
            .collect();
        CommProgram { ops }
    }

    /// Checks deadlock freedom; violations carry the blocking cycle or
    /// the unmatched operation as witness.
    pub fn check(&self) -> VerifyReport {
        let mut report = VerifyReport::new();
        let n = self.num_ranks();
        // Node id for (rank, op index).
        let base: Vec<usize> = self
            .ops
            .iter()
            .scan(0usize, |acc, ops| {
                let b = *acc;
                *acc += ops.len();
                Some(b)
            })
            .collect();
        let total: usize = self.ops.iter().map(Vec::len).sum();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut indeg: Vec<usize> = vec![0; total];
        let mut edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>| {
            succs[from].push(to);
            indeg[to] += 1;
        };
        // Program order.
        for (rank, ops) in self.ops.iter().enumerate() {
            for i in 1..ops.len() {
                edge(base[rank] + i - 1, base[rank] + i, &mut succs);
            }
        }
        // Match edges: i-th recv of key (from, tag) at q ↔ i-th send of
        // (to=q, tag) at `from`.
        // send_index[(src, dst, tag)] -> ordered op indices of the sends.
        let mut send_ops: HashMap<(usize, usize, u64), Vec<usize>> = HashMap::new();
        for (rank, ops) in self.ops.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                if let CommOp::Send { to, tag } = op {
                    send_ops
                        .entry((rank, *to, *tag))
                        .or_default()
                        .push(base[rank] + i);
                }
            }
        }
        let mut recv_counts: HashMap<(usize, usize, u64), usize> = HashMap::new();
        let mut matched_sends = 0usize;
        for (rank, ops) in self.ops.iter().enumerate() {
            for (i, op) in ops.iter().enumerate() {
                if let CommOp::Recv { from, tag } = op {
                    let key = (*from, rank, *tag);
                    let k = recv_counts.entry(key).or_insert(0);
                    let sends = send_ops.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                    if *from >= n || *k >= sends.len() {
                        report.push(
                            rank,
                            None,
                            ViolationKind::UnmatchedRecv {
                                peer: *from,
                                tag: *tag,
                            },
                        );
                    } else {
                        edge(sends[*k], base[rank] + i, &mut succs);
                        matched_sends += 1;
                    }
                    *k += 1;
                }
            }
        }
        // Sends beyond the receive count linger in the mailbox, where a
        // later exchange reusing the tag can cross-match them.
        let total_sends: usize = send_ops.values().map(Vec::len).sum();
        if total_sends > matched_sends {
            for ((src, dst, tag), ops) in &send_ops {
                let consumed = recv_counts.get(&(*src, *dst, *tag)).copied().unwrap_or(0);
                for _ in consumed..ops.len() {
                    report.push(
                        *src,
                        None,
                        ViolationKind::UnconsumedSend {
                            peer: *dst,
                            tag: *tag,
                        },
                    );
                }
            }
        }
        // Kahn's algorithm; whatever survives is cyclically blocked.
        let mut queue: Vec<usize> = (0..total).filter(|&v| indeg[v] == 0).collect();
        let mut done = vec![false; total];
        let mut remaining = total;
        while let Some(v) = queue.pop() {
            done[v] = true;
            remaining -= 1;
            for &w in &succs[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w);
                }
            }
        }
        if remaining > 0 {
            // Extract one concrete cycle: walk predecessors among the
            // undone nodes until a repeat.
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); total];
            for (v, ss) in succs.iter().enumerate() {
                for &w in ss {
                    if !done[v] && !done[w] {
                        preds[w].push(v);
                    }
                }
            }
            // xct-allow(no-panic): infallible — remaining > 0 guarantees an undone vertex
            let start = (0..total).find(|&v| !done[v]).expect("remaining > 0");
            let mut path = vec![start];
            let mut seen: HashMap<usize, usize> = HashMap::new();
            seen.insert(start, 0);
            let cycle = loop {
                // xct-allow(no-panic): infallible — path starts non-empty and only grows
                let cur = *path.last().expect("path non-empty");
                // xct-allow(no-panic): infallible — every vertex on the path is blocked, so it has a predecessor
                let prev = preds[cur].first().copied().expect("blocked node has pred");
                if let Some(&at) = seen.get(&prev) {
                    let mut cyc: Vec<usize> = path[at..].to_vec();
                    cyc.reverse();
                    break cyc;
                }
                seen.insert(prev, path.len());
                path.push(prev);
            };
            let who = |v: usize| -> (usize, usize) {
                // xct-allow(no-panic): infallible — base starts at 0, so rposition always finds a block
                let rank = base.iter().rposition(|&b| b <= v).expect("base covers v");
                (rank, v - base[rank])
            };
            let rank0 = who(cycle[0]).0;
            report.push(
                rank0,
                None,
                ViolationKind::DeadlockCycle {
                    cycle: cycle.iter().map(|&v| who(v)).collect(),
                },
            );
        }
        report
    }
}

/// Appends one level's skeleton: all sends, then all receives in plan
/// (completion) order.
fn push_level(ops: &mut Vec<CommOp>, level: &LevelProgram, salt: u64) {
    for t in level.sends() {
        ops.push(CommOp::Send {
            to: t.peer,
            tag: level.tag() ^ salt,
        });
    }
    for t in level.recvs() {
        ops.push(CommOp::Recv {
            from: t.peer,
            tag: level.tag() ^ salt,
        });
    }
}

/// Verifies deadlock freedom of both pipeline directions of a compiled
/// plan.
pub fn verify_deadlock(plans: &CompiledPlans) -> VerifyReport {
    let mut report = CommProgram::reduce_of(plans, 0).check();
    report.merge(CommProgram::scatter_of(plans, 0).check());
    report
}
