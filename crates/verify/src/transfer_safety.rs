//! The work-stealing precondition: proving a slice re-homing safe.
//!
//! The ROADMAP's work-stealing item wants an overloaded rank to hand
//! one fused slice's share of the exchange pipeline to a socket-local
//! sibling (the NVLink neighbor can absorb it without crossing the slow
//! links). Before the runtime may do that, three properties must hold,
//! and this module proves them for a concrete [`CompiledPlans`] +
//! [`SliceSteal`] pair rather than trusting the re-homing code:
//!
//! * **socket locality** — `from` and `to` share a socket
//!   ([`ViolationKind::CrossSocketSteal`] otherwise); stealing across
//!   sockets would silently convert NVLink traffic into X-bus/IB
//!   traffic and invalidate the plan's volume accounting;
//! * **conservation** — the re-homed transfer set covers *exactly* the
//!   original transfers touching `from` for the stolen slice, with
//!   identical payload lengths: a transfer left behind is reported as a
//!   [`ViolationKind::RehomingGap`] (its payload would still be
//!   addressed at the vacated rank), a truncated or invented one as
//!   `Malformed`. Because re-homing is then a pure endpoint renaming of
//!   a plan that already passed [`crate::verify_compiled`]'s token
//!   proof, row conservation carries over unchanged;
//! * **tag disjointness** — every re-homed wire tag must be disjoint
//!   from everything else in flight: the victim pipeline's other slices
//!   *and* the thief's own share of the stolen slice. The
//!   [`xct_comm::TAG_STEAL`] namespace exists precisely for this;
//!   [`rehome_slice`] applies it, and the checker reports a
//!   [`ViolationKind::TagCollision`] for any artifact that does not.
//!
//! [`rehome_slice`] constructs the legal artifact; the corpus mutates
//! copies of it (cross-socket thief, missing steal bit, truncated
//! rewrite) that this checker must reject. The clean-verdict path is
//! allocation-free: expectation matching is count-based scanning, and a
//! passing report never pushes.

use crate::diag::{ExchangeLevel, VerifyReport, ViolationKind};
use crate::tags::slice_salt;
use xct_comm::{CompiledPlans, LevelProgram, RankPlan, Topology, TAG_STEAL};

/// A proposed slice re-homing: rank `from` gives its share of fused
/// slice `slice` to rank `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSteal {
    /// The fused slice whose share moves.
    pub slice: usize,
    /// The overloaded rank vacating its share.
    pub from: usize,
    /// The socket-local thief absorbing it.
    pub to: usize,
}

/// One wire transfer after re-homing: physical endpoints and the tag it
/// will actually fly under (salt not yet applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RehomedTransfer {
    /// Physical sending rank after the move.
    pub src: usize,
    /// Physical receiving rank after the move.
    pub dst: usize,
    /// Base wire tag (the legal artifact uses `level_tag | TAG_STEAL`).
    pub tag: u64,
    /// Payload length in elements (conservation witness).
    pub len: usize,
    /// The pipeline level the transfer belongs to.
    pub level: ExchangeLevel,
}

/// The re-homed share of one stolen slice: every transfer that used to
/// touch `from`, with its post-move endpoints and tags.
#[derive(Debug, Clone)]
pub struct RehomedSlice {
    /// The steal this artifact implements.
    pub steal: SliceSteal,
    /// The re-homed transfers (fields public so the corpus can mutate
    /// them).
    pub transfers: Vec<RehomedTransfer>,
}

/// Visits both pipelines' levels of one rank, in execution order, with
/// names. A visitor (not a collected Vec) so the clean verdict stays
/// allocation-free.
fn for_each_level<'a, F: FnMut(ExchangeLevel, &'a LevelProgram)>(rp: &'a RankPlan, mut f: F) {
    let num_local = rp.local_levels().len();
    for (i, l) in rp.local_levels().iter().enumerate() {
        let name = match (num_local, i) {
            (2, 0) => ExchangeLevel::Socket,
            _ => ExchangeLevel::Node,
        };
        f(name, l);
    }
    f(ExchangeLevel::Global, rp.global_level());
    f(ExchangeLevel::ScatterGlobal, rp.scatter_global_level());
    let num_scatter = rp.scatter_local_levels().len();
    for (i, l) in rp.scatter_local_levels().iter().enumerate() {
        let name = match (num_scatter, i) {
            (2, 0) => ExchangeLevel::ScatterNode,
            _ => ExchangeLevel::ScatterSocket,
        };
        f(name, l);
    }
}

/// Enumerates the transfers of `plans` that touch `from` for one slice,
/// as `(src, dst, level tag, len, level)` in original addressing,
/// calling `f` for each. This is the ground truth the re-homed set must
/// cover.
fn for_each_touching<F: FnMut(usize, usize, u64, usize, ExchangeLevel)>(
    plans: &CompiledPlans,
    from: usize,
    mut f: F,
) {
    for p in 0..plans.num_ranks() {
        for_each_level(plans.rank(p), |name, level| {
            for t in level.sends() {
                if p == from || t.peer == from {
                    f(p, t.peer, level.tag(), t.idx.len(), name);
                }
            }
        });
    }
}

/// Builds the legal re-homed artifact for `steal`: every transfer
/// touching `from` is redirected to `to` and re-tagged into the
/// [`TAG_STEAL`] namespace.
pub fn rehome_slice(plans: &CompiledPlans, steal: SliceSteal) -> RehomedSlice {
    let mut transfers = Vec::new();
    for_each_touching(plans, steal.from, |src, dst, tag, len, level| {
        let src = if src == steal.from { steal.to } else { src };
        let dst = if dst == steal.from { steal.to } else { dst };
        transfers.push(RehomedTransfer {
            src,
            dst,
            tag: tag | TAG_STEAL,
            len,
            level,
        });
    });
    RehomedSlice { steal, transfers }
}

/// Proves `rehomed` safe against `plans` on `topo`, with the victim
/// pipeline's slices `concurrent` in flight (the stolen slice itself is
/// always considered concurrent — the thief's own share runs alongside
/// the stolen one).
pub fn verify_transfer_safety(
    plans: &CompiledPlans,
    topo: &Topology,
    concurrent: &[usize],
    rehomed: &RehomedSlice,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    let SliceSteal { slice, from, to } = rehomed.steal;
    let n = plans.num_ranks();
    if from >= n || to >= n || from == to {
        report.push(
            from.min(n.saturating_sub(1)),
            None,
            ViolationKind::Malformed {
                detail: format!("steal {from}→{to} names invalid ranks for a {n}-rank world"),
            },
        );
        return report;
    }
    // Socket locality.
    let (fs, ts) = (topo.socket_of(from), topo.socket_of(to));
    if fs != ts {
        report.push(
            from,
            None,
            ViolationKind::CrossSocketSteal {
                from,
                to,
                from_socket: fs,
                to_socket: ts,
            },
        );
    }
    // Conservation: the artifact must cover the touching set exactly.
    // Count-based matching on (src, dst, len, level) after endpoint
    // renaming — tags are checked separately so a mis-tagged artifact
    // reports a collision, not a phantom gap.
    for_each_touching(plans, from, |src, dst, tag, len, level| {
        let esrc = if src == from { to } else { src };
        let edst = if dst == from { to } else { dst };
        let expected = count_touching(plans, from, esrc, edst, len, level, to);
        let got = rehomed
            .transfers
            .iter()
            .filter(|r| r.src == esrc && r.dst == edst && r.len == len && r.level == level)
            .count();
        if got < expected {
            // Deduplicate the report: only the canonical (first) witness
            // for this key pushes.
            if is_first_touching(plans, from, to, src, dst, tag, len, level) {
                report.push(
                    src,
                    Some(level),
                    ViolationKind::RehomingGap {
                        rank: src,
                        vacated: from,
                        tag,
                    },
                );
            }
        }
    });
    for r in &rehomed.transfers {
        // Every artifact entry must correspond to some touching
        // transfer (same key after renaming).
        let expected = count_touching(plans, from, r.src, r.dst, r.len, r.level, to);
        if expected == 0 {
            report.push(
                r.src,
                Some(r.level),
                ViolationKind::Malformed {
                    detail: format!(
                        "re-homed transfer {}→{} ({} elements, {}) matches nothing in the stolen share",
                        r.src, r.dst, r.len, r.level
                    ),
                },
            );
        }
    }
    // Tag disjointness: re-homed tags vs everything concurrently in
    // flight under original addressing. Transfers touching `from` for
    // the stolen slice no longer exist, so they are excluded for that
    // slice only.
    let steal_salt = slice_salt(slice);
    for r in &rehomed.transfers {
        let rtag = r.tag ^ steal_salt;
        for p in 0..n {
            for_each_level(plans.rank(p), |name, level| {
                for t in level.sends() {
                    for &s in concurrent {
                        if s == slice && (p == from || t.peer == from) {
                            continue; // re-homed away for the stolen slice
                        }
                        if p == r.src && t.peer == r.dst && level.tag() ^ slice_salt(s) == rtag {
                            report.push(
                                r.src,
                                Some(r.level),
                                ViolationKind::TagCollision {
                                    src: r.src,
                                    dst: r.dst,
                                    tag: rtag,
                                    first: format!("slice {s} {name}"),
                                    second: format!("stolen slice {slice} {}", r.level),
                                },
                            );
                        }
                    }
                }
            });
        }
    }
    report
}

/// How many transfers of the touching set map to the post-rename key
/// `(src, dst, len, level)`.
fn count_touching(
    plans: &CompiledPlans,
    from: usize,
    src: usize,
    dst: usize,
    len: usize,
    level: ExchangeLevel,
    to: usize,
) -> usize {
    let mut count = 0;
    for_each_touching(plans, from, |s, d, _tag, l, lv| {
        let s = if s == from { to } else { s };
        let d = if d == from { to } else { d };
        if s == src && d == dst && l == len && lv == level {
            count += 1;
        }
    });
    count
}

/// Whether `(src, dst, tag, len, level)` is the first enumeration-order
/// member of its post-rename key (report deduplication).
#[allow(clippy::too_many_arguments)]
fn is_first_touching(
    plans: &CompiledPlans,
    from: usize,
    to: usize,
    src: usize,
    dst: usize,
    tag: u64,
    len: usize,
    level: ExchangeLevel,
) -> bool {
    let rename = |r: usize| if r == from { to } else { r };
    let key = (rename(src), rename(dst), len, level);
    let mut first: Option<(usize, usize, u64)> = None;
    for_each_touching(plans, from, |s, d, t, l, lv| {
        if first.is_none() && (rename(s), rename(d), l, lv) == key {
            first = Some((s, d, t));
        }
    });
    first == Some((src, dst, tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_comm::{Footprints, HierarchicalPlan, Ownership};

    fn fixture() -> (CompiledPlans, Topology) {
        let topo = Topology::new(2, 2, 2);
        let owner: Vec<u32> = (0..32u32).map(|r| r / 4).collect();
        let fp: Vec<Vec<u32>> = (0..8usize)
            .map(|p| {
                (0..32u32)
                    .filter(|&r| (r as usize * 7 + p * 3) % 5 < 3)
                    .collect()
            })
            .collect();
        let fp = Footprints::new(fp);
        let own = Ownership::new(owner, 8);
        let plan = HierarchicalPlan::build(&fp, &own, &topo);
        (CompiledPlans::compile_hierarchical(&fp, &own, &plan), topo)
    }

    #[test]
    fn legal_socket_local_rehoming_verifies() {
        let (plans, topo) = fixture();
        // Ranks 0 and 1 share socket 0 on the 2×2×2 topology.
        let steal = SliceSteal {
            slice: 1,
            from: 0,
            to: 1,
        };
        let rehomed = rehome_slice(&plans, steal);
        assert!(!rehomed.transfers.is_empty(), "share must be non-trivial");
        let report = verify_transfer_safety(&plans, &topo, &[0, 1, 2], &rehomed);
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn every_rehomed_tag_is_in_the_steal_namespace() {
        let (plans, _) = fixture();
        let rehomed = rehome_slice(
            &plans,
            SliceSteal {
                slice: 0,
                from: 2,
                to: 3,
            },
        );
        for t in &rehomed.transfers {
            assert_ne!(t.tag & TAG_STEAL, 0, "tag {:#x} lacks the steal bit", t.tag);
            assert_ne!(t.src, 2, "vacated rank must not send");
            assert_ne!(t.dst, 2, "vacated rank must not receive");
        }
    }
}
