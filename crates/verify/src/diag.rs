//! Structured verification diagnostics.
//!
//! Every check in this crate reports [`Violation`]s, never booleans: a
//! violation pins down the rank it was detected at, the exchange level,
//! and a witness (element, tag, cycle, or position) precise enough to
//! reconstruct the failure by hand. This is the contract that makes the
//! known-bad corpus testable — each corpus entry asserts not just "fails"
//! but *which* diagnostic fires and with what witness.

use std::fmt;

/// Which exchange of the compiled pipeline a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeLevel {
    /// Forward socket-level reduction.
    Socket,
    /// Forward node-level reduction.
    Node,
    /// Forward global exchange to owners.
    Global,
    /// Scatter global stage (owners fan values back out).
    ScatterGlobal,
    /// Scatter node-level fan-out.
    ScatterNode,
    /// Scatter socket-level fan-out.
    ScatterSocket,
}

impl fmt::Display for ExchangeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExchangeLevel::Socket => "socket",
            ExchangeLevel::Node => "node",
            ExchangeLevel::Global => "global",
            ExchangeLevel::ScatterGlobal => "scatter-global",
            ExchangeLevel::ScatterNode => "scatter-node",
            ExchangeLevel::ScatterSocket => "scatter-socket",
        };
        f.write_str(name)
    }
}

/// Where a scratch-buffer write came from (aliasing witnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOrigin {
    /// A local carry from input position `src`.
    Keep {
        /// Input position the value was carried from.
        src: u32,
    },
    /// Element `offset` of the transfer received from `peer`.
    Recv {
        /// Sending rank.
        peer: usize,
        /// Offset within the received payload.
        offset: u32,
    },
}

impl fmt::Display for WriteOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteOrigin::Keep { src } => write!(f, "keep from input position {src}"),
            WriteOrigin::Recv { peer, offset } => {
                write!(f, "recv from rank {peer} payload offset {offset}")
            }
        }
    }
}

/// Which index table of a level program an out-of-bounds access lives
/// in (witness component of [`ViolationKind::IndexOutOfBounds`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A send transfer's gather index into the level's input buffer.
    SendGather,
    /// A local carry's source position in the input buffer.
    KeepSrc,
    /// A local carry's destination position in the output buffer.
    KeepDst,
    /// A recv transfer's landing position in the output buffer.
    RecvLanding,
    /// A restriction index into the final scatter buffer.
    Restrict,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AccessKind::SendGather => "send gather",
            AccessKind::KeepSrc => "keep source",
            AccessKind::KeepDst => "keep destination",
            AccessKind::RecvLanding => "recv landing",
            AccessKind::Restrict => "restriction",
        };
        f.write_str(name)
    }
}

/// The defect a check found, with its witness.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// Conservation failure: rank `holder`'s contribution for `row` was
    /// delivered to the row's owner `delivered` times instead of exactly
    /// once.
    Conservation {
        /// The rank whose partial sum is lost or duplicated.
        holder: usize,
        /// The witness element (global row id).
        row: u32,
        /// How many copies actually arrive.
        delivered: usize,
    },
    /// One scratch position accumulated contributions belonging to two
    /// different rows — partial sums for unrelated elements combine.
    MixedRows {
        /// The output position.
        position: u32,
        /// The two distinct rows found there.
        rows: (u32, u32),
    },
    /// A rank's send table transmits a row the rank does not hold.
    UnheldRow {
        /// The sending rank.
        sender: usize,
        /// The row it does not hold.
        row: u32,
    },
    /// A row is routed to a rank that is neither its owner nor a
    /// designated group member for it.
    Misrouted {
        /// The witness row.
        row: u32,
        /// Where the plan sends it.
        dst: usize,
        /// Who should receive it.
        expected: usize,
    },
    /// Two concurrently in-flight exchanges can emit matchable messages
    /// with the same `(src, dst, tag)` — the runtime would cross-match
    /// them.
    TagCollision {
        /// Sending rank of the colliding messages.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// The shared tag.
        tag: u64,
        /// Label of the first claiming exchange.
        first: String,
        /// Label of the second claiming exchange.
        second: String,
    },
    /// An application exchange claims a tag with the reserved reply bit
    /// set, invading the collectives' reply namespace.
    ReservedTagBit {
        /// The offending tag.
        tag: u64,
        /// Label of the claiming exchange.
        exchange: String,
    },
    /// The send/recv match graph admits no topological order: these
    /// `(rank, op index)` ops wait on each other in a cycle.
    DeadlockCycle {
        /// The cyclic ops, in dependency order.
        cycle: Vec<(usize, usize)>,
    },
    /// A receive waits for a message no one sends (or from a rank outside
    /// the world) — it can only time out or steal a later exchange's
    /// message.
    UnmatchedRecv {
        /// The rank the receive expects the message from.
        peer: usize,
        /// The tag it matches on.
        tag: u64,
    },
    /// A sent message is never received; it lingers in the mailbox and
    /// can cross-match a later exchange reusing the tag.
    UnconsumedSend {
        /// The destination rank.
        peer: usize,
        /// The message tag.
        tag: u64,
    },
    /// Two writes land on the same scratch position within one level —
    /// the second silently overwrites the first.
    ScratchAliasing {
        /// The position written twice.
        position: u32,
        /// The first write.
        first: WriteOrigin,
        /// The overwriting write.
        second: WriteOrigin,
    },
    /// Structurally malformed program: index out of bounds, mismatched
    /// payload lengths, or similar.
    Malformed {
        /// Human-readable description with the witness inline.
        detail: String,
    },
    /// A plan's peak per-rank footprint exceeds the byte budget it was
    /// made against — executing it would overrun (simulated) device
    /// memory.
    PlanOverBudget {
        /// The budget the plan claims to honor.
        budget: u64,
        /// The actual peak per-rank footprint.
        required: u64,
    },
    /// Slab `index` does not start where the previous slab ended — the
    /// cover has a gap or an overlap.
    SlabCoverBreak {
        /// The offending slab.
        index: usize,
        /// Where it should start (previous slab's end).
        expected_start: usize,
        /// Where it actually starts.
        start: usize,
    },
    /// The slabs end before the stack does: slices `covered..slices`
    /// are never reconstructed.
    SlabCoverShort {
        /// Slices the slabs cover.
        covered: usize,
        /// Slices the plan promises.
        slices: usize,
    },
    /// A slab holds more slices than the plan's fusing factor — its
    /// footprint was never accounted against the budget.
    SlabTooWide {
        /// The offending slab.
        index: usize,
        /// Its slice count.
        len: usize,
        /// The plan's fusing bound.
        fusing: usize,
    },
    /// A slab's residency contradicts the slab count: a single slab
    /// must be resident, multiple slabs must all stream.
    ResidencyConflict {
        /// The slab whose residency is wrong.
        index: usize,
        /// How many slabs the plan has.
        slabs: usize,
    },
    /// The plan carries measured tile weights whose table does not match
    /// the tile grid its volume decomposes into — the weighted Hilbert
    /// partition would panic (short table) or silently ignore entries
    /// (long table).
    WeightGridMismatch {
        /// Weight entries the plan carries.
        weights: usize,
        /// Tiles per axis of the `n × n` slice plane at the weights'
        /// tile size.
        grid_side: usize,
    },
    /// The interval bounds proof failed: an index table reaches outside
    /// the buffer it addresses.
    IndexOutOfBounds {
        /// Which table of the level program the access lives in.
        access: AccessKind,
        /// The offending index (the interval's upper bound).
        index: u32,
        /// The addressed buffer's declared length.
        len: usize,
    },
    /// A scratch region is read while an in-flight exchange still has
    /// pending writes into it — the read observes partially-delivered
    /// data.
    PendingWriteRead {
        /// The buffer region (e.g. `acc`, `cur`).
        buffer: &'static str,
        /// The pipeline slice whose in-flight exchange owns the region.
        slice: usize,
        /// Outstanding writes (posted irecvs not yet waited).
        pending: usize,
    },
    /// A slice re-homing crosses a socket boundary: the work-stealing
    /// precondition only holds between NVLink-connected siblings.
    CrossSocketSteal {
        /// The overloaded rank giving up the slice.
        from: usize,
        /// The would-be thief.
        to: usize,
        /// Global socket index of `from`.
        from_socket: usize,
        /// Global socket index of `to`.
        to_socket: usize,
    },
    /// A re-homed slice still has a transfer addressed at the vacated
    /// rank: the rewrite was not total, so that payload is lost (or
    /// waited on forever) after the move.
    RehomingGap {
        /// The rank whose program still references the vacated rank.
        rank: usize,
        /// The vacated rank that should no longer appear.
        vacated: usize,
        /// The stale transfer's tag.
        tag: u64,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Conservation {
                holder,
                row,
                delivered,
            } => write!(
                f,
                "conservation: rank {holder}'s contribution for row {row} delivered {delivered}× (expected exactly once)"
            ),
            ViolationKind::MixedRows { position, rows } => write!(
                f,
                "mixed rows: position {position} accumulates rows {} and {}",
                rows.0, rows.1
            ),
            ViolationKind::UnheldRow { sender, row } => {
                write!(f, "rank {sender} sends row {row} it does not hold")
            }
            ViolationKind::Misrouted { row, dst, expected } => write!(
                f,
                "row {row} routed to rank {dst}, expected rank {expected}"
            ),
            ViolationKind::TagCollision {
                src,
                dst,
                tag,
                first,
                second,
            } => write!(
                f,
                "tag collision: {first} and {second} both send {src}→{dst} with tag {tag:#x}"
            ),
            ViolationKind::ReservedTagBit { tag, exchange } => write!(
                f,
                "{exchange} claims tag {tag:#x} with the reserved reply bit set"
            ),
            ViolationKind::DeadlockCycle { cycle } => {
                write!(f, "deadlock cycle:")?;
                for (rank, op) in cycle {
                    write!(f, " (rank {rank}, op {op})")?;
                }
                Ok(())
            }
            ViolationKind::UnmatchedRecv { peer, tag } => write!(
                f,
                "receive from rank {peer} tag {tag:#x} matches no send"
            ),
            ViolationKind::UnconsumedSend { peer, tag } => write!(
                f,
                "send to rank {peer} tag {tag:#x} is never received"
            ),
            ViolationKind::ScratchAliasing {
                position,
                first,
                second,
            } => write!(
                f,
                "scratch aliasing at position {position}: {second} overwrites {first}"
            ),
            ViolationKind::Malformed { detail } => write!(f, "malformed program: {detail}"),
            ViolationKind::PlanOverBudget { budget, required } => write!(
                f,
                "plan over budget: peak per-rank footprint {required} B exceeds budget {budget} B"
            ),
            ViolationKind::SlabCoverBreak {
                index,
                expected_start,
                start,
            } => write!(
                f,
                "slab {index} starts at slice {start}, expected {expected_start} (gap or overlap)"
            ),
            ViolationKind::SlabCoverShort { covered, slices } => write!(
                f,
                "slabs cover {covered} of {slices} slices; the tail is never reconstructed"
            ),
            ViolationKind::SlabTooWide { index, len, fusing } => write!(
                f,
                "slab {index} holds {len} slices, above the fusing bound {fusing}"
            ),
            ViolationKind::ResidencyConflict { index, slabs } => write!(
                f,
                "slab {index} residency contradicts the slab count ({slabs})"
            ),
            ViolationKind::WeightGridMismatch { weights, grid_side } => write!(
                f,
                "tile-weight table has {weights} entries, the volume decomposes into a \
                 {grid_side}x{grid_side} tile grid"
            ),
            ViolationKind::IndexOutOfBounds { access, index, len } => write!(
                f,
                "bounds: {access} index {index} outside buffer of length {len}"
            ),
            ViolationKind::PendingWriteRead {
                buffer,
                slice,
                pending,
            } => write!(
                f,
                "lifetime: `{buffer}` of slice {slice} read with {pending} in-flight write(s) pending"
            ),
            ViolationKind::CrossSocketSteal {
                from,
                to,
                from_socket,
                to_socket,
            } => write!(
                f,
                "steal {from}→{to} crosses sockets {from_socket}→{to_socket}; re-homing must stay socket-local"
            ),
            ViolationKind::RehomingGap { rank, vacated, tag } => write!(
                f,
                "re-homing gap: rank {rank} still has a transfer for vacated rank {vacated} (tag {tag:#x})"
            ),
        }
    }
}

/// One verification finding: what went wrong, where.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The rank the violation was detected at (the receiver/owner side
    /// for routing defects, the program's rank for deadlock ops).
    pub rank: usize,
    /// The exchange level, when the check is level-scoped.
    pub level: Option<ExchangeLevel>,
    /// The defect and its witness.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}", self.rank)?;
        if let Some(level) = self.level {
            write!(f, " [{level}]")?;
        }
        write!(f, ": {}", self.kind)
    }
}

/// The outcome of one verification pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Every violation found, in detection order.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// An empty (passing) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no violations were found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records a violation.
    pub fn push(&mut self, rank: usize, level: Option<ExchangeLevel>, kind: ViolationKind) {
        self.violations.push(Violation { rank, level, kind });
    }

    /// Absorbs another report's findings.
    pub fn merge(&mut self, other: VerifyReport) {
        self.violations.extend(other.violations);
    }

    /// Panics with the full diagnostic listing when violations exist —
    /// the debug-mode / `--verify-plans` enforcement hook.
    pub fn assert_ok(&self, what: &str) {
        assert!(self.ok(), "{what} failed verification:\n{self}");
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            return write!(f, "no violations");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}
