//! xct-verify — static communication-plan verification and deterministic
//! schedule exploration for the xct-comm runtime.
//!
//! The comm stack lowers a sparse-matrix footprint into hierarchical
//! exchange plans (DESIGN.md §3) and executes them over an in-process
//! message runtime. Every bug class it has historically produced —
//! misrouted partials, cross-matched tags, peers that never answer,
//! aliased scratch writes — is a *plan or protocol* property, checkable
//! without running the solver. This crate makes those checks explicit,
//! in two layers:
//!
//! * **Static verification** ([`plan_check`], [`compiled_check`],
//!   [`tags`], [`deadlock`], [`plan_fits`]) proves, per rank and level:
//!   *conservation*
//!   (every footprint element reaches its owner exactly once — keeps
//!   plus receives partition the owned set), *tag disjointness* (no two
//!   concurrently in-flight exchanges emit matchable messages on the
//!   same `(src, dst, tag)`, including the overlap pipeline's
//!   double-buffered slices and the collectives' reply namespace),
//!   *deadlock freedom* (the send/recv match graph under the runtime's
//!   per-key FIFO rules admits a topological order), *scratch
//!   non-aliasing* (no position written twice within a level), and
//!   *plan fitness* (an `xct_plan::ReconPlan`'s peak footprint fits its
//!   byte budget, its slabs cover the stack exactly once, and its
//!   fusing factor keeps slice tag salts out of the reply namespace).
//!   Violations are structured [`Violation`]s with witnesses, never
//!   booleans.
//! * **Abstract interpretation** ([`absint`], [`lifetime`],
//!   [`transfer_safety`]) interprets the compiled index programs over
//!   abstract domains instead of executing them: interval bounds proofs
//!   for every Transfer table access, scratch-region lifetime tracking
//!   across the split `begin`/`finish` overlap windows (no read of a
//!   region with pending in-flight writes), and the work-stealing
//!   precondition — a socket-local slice re-homing preserves
//!   conservation and tag disjointness (DESIGN.md §3i).
//! * **Schedule exploration** ([`explore`]) runs real rank bodies under
//!   seeded chaos schedules (jitter + delay-one-message), making timing
//!   bugs that static analysis cannot see — wrong *progress logic*
//!   rather than wrong plans — reproducible from a seed.
//!
//! The [`corpus`] module reconstructs the three communication bugs fixed
//! in PR 3 as minimal artifacts each layer must reject, plus a seeded
//! case generator for property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Witness positions and row ids are `u32` by the `Ownership` contract;
// enumerate-index casts back into that space are lossless by
// construction and carry local allows where they occur.
#![warn(clippy::cast_possible_truncation)]

pub mod absint;
pub mod compiled_check;
pub mod corpus;
pub mod deadlock;
pub mod diag;
pub mod explore;
pub mod lifetime;
pub mod plan_check;
pub mod plan_fits;
pub mod tags;
pub mod transfer_safety;

pub use absint::verify_bounds;
pub use compiled_check::verify_compiled;
pub use deadlock::{verify_deadlock, CommOp, CommProgram};
pub use diag::{AccessKind, ExchangeLevel, VerifyReport, Violation, ViolationKind, WriteOrigin};
pub use explore::{explore, ExploreReport, SeedOutcome};
pub use lifetime::{overlap_schedule, verify_lifetimes, verify_scratch_lifetime, ScratchOp};
pub use plan_check::{verify_direct, verify_hierarchical, verify_reduce_step};
pub use plan_fits::plan_fits;
pub use tags::{claims_for_compiled, slice_salt, verify_tags, TagClaim, TagClaimSet};
pub use transfer_safety::{
    rehome_slice, verify_transfer_safety, RehomedSlice, RehomedTransfer, SliceSteal,
};

use xct_comm::{CompiledPlans, DirectPlan, Footprints, HierarchicalPlan, Ownership, Topology};

/// Every static check against a hierarchical plan and its compilation:
/// row-table routing, compiled end-to-end conservation, tag
/// disjointness under `overlap`, and deadlock freedom. This is the
/// entry point the distributed pipeline calls in debug builds and under
/// `--verify-plans`.
pub fn verify_all_hierarchical(
    footprints: &Footprints,
    ownership: &Ownership,
    topo: &Topology,
    plan: &HierarchicalPlan,
    compiled: &CompiledPlans,
    overlap: bool,
) -> VerifyReport {
    let mut report = verify_hierarchical(footprints, ownership, topo, plan);
    report.merge(verify_compiled(footprints, ownership, compiled));
    report.merge(verify_bounds(compiled));
    if overlap {
        report.merge(verify_lifetimes(compiled, OVERLAP_CHECK_SLICES));
    }
    report.merge(verify_tags(compiled, overlap));
    report.merge(verify_deadlock(compiled));
    report
}

/// Fused-slice depth the lifetime pass models for the overlap pipeline:
/// enough iterations for the steady-state two-in-flight pattern to
/// repeat.
const OVERLAP_CHECK_SLICES: usize = 3;

/// Every static check against a direct plan and its compilation.
pub fn verify_all_direct(
    footprints: &Footprints,
    ownership: &Ownership,
    plan: &DirectPlan,
    compiled: &CompiledPlans,
    overlap: bool,
) -> VerifyReport {
    let mut report = verify_direct(footprints, ownership, plan);
    report.merge(verify_compiled(footprints, ownership, compiled));
    report.merge(verify_bounds(compiled));
    if overlap {
        report.merge(verify_lifetimes(compiled, OVERLAP_CHECK_SLICES));
    }
    report.merge(verify_tags(compiled, overlap));
    report.merge(verify_deadlock(compiled));
    report
}
