//! Deterministic schedule exploration for the in-process comm runtime.
//!
//! Static checks prove properties of the *plan*; schedule exploration
//! probes the *implementation* executing it. The runtime's chaos hook
//! ([`xct_comm::ChaosSchedule`]) derives message-delivery delays and
//! rank start staggers as pure functions of a seed, so any interleaving
//! it produces is exactly reproducible from that seed alone.
//! [`explore`] runs a rank body under a baseline schedule plus, per
//! seed, a jitter schedule (many small perturbations) and a
//! delay-one-message schedule (DPOR-lite: hold back a single targeted
//! message long enough to flip every race it participates in), and
//! evaluates an oracle over each run's outputs. A failure names the
//! schedule that produced it — rerunning that one schedule reproduces
//! the bug deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
use xct_comm::{
    run_ranks_chaos, run_ranks_chaos_traced, run_ranks_with_timeout, ChaosSchedule, Communicator,
};
use xct_telemetry::Telemetry;

/// The outcome of one schedule.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// Which schedule ran — `"baseline"`, `"jitter seed=S"`, or
    /// `"delay-one seed=S"`. Feed the seed back into
    /// [`ChaosSchedule::jitter`] / [`ChaosSchedule::delay_one`] to
    /// reproduce.
    pub label: String,
    /// `None` when the run completed and the oracle accepted its
    /// outputs; otherwise the oracle's complaint or the panic payload.
    pub failure: Option<String>,
    /// A `petaxct-flightrec-v1` post-mortem of the failure: the failing
    /// chaos schedule re-run (deterministically, from its seed) with the
    /// flight recorder armed, capturing every rank's last spans, events,
    /// and metric deltas. `None` for passing schedules and for baseline
    /// (chaos-free) failures.
    pub flight_dump: Option<String>,
}

/// The outcome of a full exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// One entry per schedule executed, in execution order.
    pub outcomes: Vec<SeedOutcome>,
}

impl ExploreReport {
    /// True when every schedule passed.
    pub fn ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.failure.is_none())
    }

    /// The first failing schedule, if any.
    pub fn first_failure(&self) -> Option<&SeedOutcome> {
        self.outcomes.iter().find(|o| o.failure.is_some())
    }
}

fn run_one<T, F>(
    label: &str,
    n: usize,
    timeout: Duration,
    chaos: Option<ChaosSchedule>,
    body: &F,
    oracle: &dyn Fn(&[T]) -> Option<String>,
) -> SeedOutcome
where
    T: Send + 'static,
    F: Fn(&Communicator) -> T + Sync,
{
    let ran = catch_unwind(AssertUnwindSafe(|| match chaos {
        Some(c) => run_ranks_chaos(n, timeout, c, body),
        None => run_ranks_with_timeout(n, timeout, body),
    }));
    let failure = match ran {
        Ok(results) => oracle(&results),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Some(format!("panicked: {msg}"))
        }
    };
    // Chaos schedules are pure functions of their seed, so a failing one
    // can be re-run traced to capture a post-mortem flight dump of the
    // exact same interleaving.
    let flight_dump = match (&failure, chaos) {
        (Some(reason), Some(c)) => {
            let telemetry = Telemetry::enabled();
            let _ = catch_unwind(AssertUnwindSafe(|| {
                run_ranks_chaos_traced(n, timeout, c, &telemetry, body)
            }));
            telemetry.flight_dump_json(&format!("{label}: {reason}"))
        }
        _ => None,
    };
    SeedOutcome {
        label: label.to_string(),
        failure,
        flight_dump,
    }
}

/// Runs `body` on `n` ranks under the baseline schedule, then under a
/// jitter and a delay-one chaos schedule for each seed, checking every
/// run's outputs with `oracle` (`None` = accept). Panics inside any run
/// are caught and reported as failures of that schedule.
pub fn explore<T, F>(
    n: usize,
    timeout: Duration,
    seeds: &[u64],
    body: F,
    oracle: impl Fn(&[T]) -> Option<String>,
) -> ExploreReport
where
    T: Send + 'static,
    F: Fn(&Communicator) -> T + Sync,
{
    let mut outcomes = Vec::with_capacity(1 + 2 * seeds.len());
    outcomes.push(run_one("baseline", n, timeout, None, &body, &oracle));
    for &seed in seeds {
        outcomes.push(run_one(
            &format!("jitter seed={seed:#x}"),
            n,
            timeout,
            Some(ChaosSchedule::jitter(seed)),
            &body,
            &oracle,
        ));
        outcomes.push(run_one(
            &format!("delay-one seed={seed:#x}"),
            n,
            timeout,
            Some(ChaosSchedule::delay_one(seed, n)),
            &body,
            &oracle,
        ));
    }
    ExploreReport { outcomes }
}
