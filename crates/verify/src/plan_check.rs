//! Static verification of routing plans (`DirectPlan`, `ReductionStep`,
//! `HierarchicalPlan`) against the footprints and ownership they were
//! built from.
//!
//! These checks operate on the *row tables* of the plan, before any
//! compilation: every foreign row must be routed to exactly one correct
//! destination, senders may only transmit rows they hold, local levels
//! must stay inside their groups, and each group must designate exactly
//! one member per row. The compiled-program checker
//! ([`crate::compiled_check`]) then re-proves conservation end-to-end on
//! the lowered index programs.

use crate::diag::{ExchangeLevel, VerifyReport, ViolationKind};
use std::collections::HashMap;
use xct_comm::{DirectPlan, Footprints, HierarchicalPlan, Ownership, ReductionStep, Topology};

/// Verifies a direct plan: every rank's foreign footprint rows are sent
/// to their owner exactly once, owned rows are kept, and no rank sends a
/// row it does not hold.
pub fn verify_direct(
    footprints: &Footprints,
    ownership: &Ownership,
    plan: &DirectPlan,
) -> VerifyReport {
    verify_global_stage(footprints, ownership, plan, ExchangeLevel::Global)
}

fn verify_global_stage(
    footprints: &Footprints,
    ownership: &Ownership,
    plan: &DirectPlan,
    level: ExchangeLevel,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    for (p, sends) in plan.sends.iter().enumerate() {
        let fp = &footprints.per_rank[p];
        // How often each row leaves this rank.
        let mut sent: HashMap<u32, usize> = HashMap::new();
        for (dst, rows) in sends {
            for &r in rows {
                if fp.binary_search(&r).is_err() {
                    report.push(
                        p,
                        Some(level),
                        ViolationKind::UnheldRow { sender: p, row: r },
                    );
                    continue;
                }
                let owner = ownership.owner[r as usize] as usize;
                if *dst != owner {
                    report.push(
                        p,
                        Some(level),
                        ViolationKind::Misrouted {
                            row: r,
                            dst: *dst,
                            expected: owner,
                        },
                    );
                }
                *sent.entry(r).or_insert(0) += 1;
            }
        }
        for &r in fp {
            let owner = ownership.owner[r as usize] as usize;
            let expected = usize::from(owner != p);
            let got = sent.get(&r).copied().unwrap_or(0);
            if got != expected {
                // Owned rows are kept implicitly, so the owner side always
                // counts one extra delivery for them.
                report.push(
                    owner,
                    Some(level),
                    ViolationKind::Conservation {
                        holder: p,
                        row: r,
                        delivered: got + usize::from(owner == p),
                    },
                );
            }
        }
    }
    report
}

/// Verifies one local reduction level against the footprints feeding it:
/// within each group, every row present in the group is designated to
/// exactly one member (its entry in `step.post`), every other holder
/// sends its partial to that designee exactly once, traffic stays inside
/// the group, and nobody sends a row it does not hold.
pub fn verify_reduce_step(
    pre: &Footprints,
    step: &ReductionStep,
    level: ExchangeLevel,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for (g, group) in step.groups.iter().enumerate() {
        for &p in group {
            group_of.insert(p, g);
        }
    }
    // Per-sender structural checks.
    for (p, sends) in step.sends.iter().enumerate() {
        let fp = &pre.per_rank[p];
        for (dst, rows) in sends {
            if group_of.get(&p) != group_of.get(dst) || !group_of.contains_key(&p) {
                report.push(
                    p,
                    Some(level),
                    ViolationKind::Malformed {
                        detail: format!("send from rank {p} to rank {dst} crosses group boundary"),
                    },
                );
            }
            for &r in rows {
                if fp.binary_search(&r).is_err() {
                    report.push(
                        p,
                        Some(level),
                        ViolationKind::UnheldRow { sender: p, row: r },
                    );
                }
            }
        }
    }
    // Per-group designation + conservation.
    for group in &step.groups {
        // Designee per row (from the post footprints).
        let mut designees: HashMap<u32, Vec<usize>> = HashMap::new();
        for &p in group {
            for &r in &step.post.per_rank[p] {
                designees.entry(r).or_default().push(p);
            }
        }
        for &p in group {
            for &r in &pre.per_rank[p] {
                let designated = designees.get(&r).map(Vec::as_slice).unwrap_or(&[]);
                if designated.len() != 1 {
                    report.push(
                        *group.first().unwrap_or(&p),
                        Some(level),
                        ViolationKind::Conservation {
                            holder: p,
                            row: r,
                            delivered: designated.len(),
                        },
                    );
                    continue;
                }
                let designee = designated[0];
                // This holder's contribution must reach the designee
                // exactly once: kept locally iff p is the designee, sent
                // exactly once otherwise.
                let sent_to_designee: usize = step.sends[p]
                    .iter()
                    .filter(|(dst, _)| *dst == designee)
                    .map(|(_, rows)| rows.iter().filter(|&&x| x == r).count())
                    .sum();
                let sent_elsewhere: usize = step.sends[p]
                    .iter()
                    .filter(|(dst, _)| *dst != designee)
                    .map(|(_, rows)| rows.iter().filter(|&&x| x == r).count())
                    .sum();
                let delivered = sent_to_designee + usize::from(p == designee);
                if delivered != 1 {
                    report.push(
                        designee,
                        Some(level),
                        ViolationKind::Conservation {
                            holder: p,
                            row: r,
                            delivered,
                        },
                    );
                }
                if sent_elsewhere != 0 {
                    report.push(
                        p,
                        Some(level),
                        ViolationKind::Misrouted {
                            row: r,
                            dst: step.sends[p]
                                .iter()
                                .find(|(dst, rows)| *dst != designee && rows.contains(&r))
                                .map(|(dst, _)| *dst)
                                .unwrap_or(designee),
                            expected: designee,
                        },
                    );
                }
            }
        }
        // Post rows nobody held are phantom values.
        for &p in group {
            for &r in &step.post.per_rank[p] {
                let held = group
                    .iter()
                    .any(|&q| pre.per_rank[q].binary_search(&r).is_ok());
                if !held {
                    report.push(
                        p,
                        Some(level),
                        ViolationKind::UnheldRow { sender: p, row: r },
                    );
                }
            }
        }
    }
    report
}

/// Verifies a full three-level hierarchical plan: the socket step against
/// the original footprints, the node step against the socket-reduced
/// footprints, and the global exchange against the node-reduced
/// footprints — so a cross-level inconsistency (a step built from the
/// wrong footprints) surfaces at the level that introduces it.
pub fn verify_hierarchical(
    footprints: &Footprints,
    ownership: &Ownership,
    topo: &Topology,
    plan: &HierarchicalPlan,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    if footprints.num_ranks() != topo.size() {
        report.push(
            0,
            None,
            ViolationKind::Malformed {
                detail: format!(
                    "footprints cover {} ranks but topology has {}",
                    footprints.num_ranks(),
                    topo.size()
                ),
            },
        );
        return report;
    }
    report.merge(verify_reduce_step(
        footprints,
        &plan.socket,
        ExchangeLevel::Socket,
    ));
    report.merge(verify_reduce_step(
        &plan.socket.post,
        &plan.node,
        ExchangeLevel::Node,
    ));
    report.merge(verify_global_stage(
        &plan.node.post,
        ownership,
        &plan.global,
        ExchangeLevel::Global,
    ));
    // Group shape must match the topology.
    let expect_sockets = topo.socket_groups();
    let expect_nodes = topo.node_groups();
    if plan.socket.groups != expect_sockets {
        report.push(
            0,
            Some(ExchangeLevel::Socket),
            ViolationKind::Malformed {
                detail: "socket groups do not match topology".into(),
            },
        );
    }
    if plan.node.groups != expect_nodes {
        report.push(
            0,
            Some(ExchangeLevel::Node),
            ViolationKind::Malformed {
                detail: "node groups do not match topology".into(),
            },
        );
    }
    report
}
