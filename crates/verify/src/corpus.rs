//! Known-bad corpus and random case generation.
//!
//! The corpus reconstructs each communication bug fixed in PR 3 as a
//! minimal artifact the verifier must reject (or the explorer must
//! catch), so the checks are pinned to real historical failures rather
//! than synthetic strawmen:
//!
//! 1. **Barrier peer mispairing** — the dissemination barrier's receive
//!    peer was computed as `rank + n - (dist % n)` (missing the outer
//!    `% n`), waiting on ranks outside the world.
//!    [`barrier_program`]`(.., buggy = true)` rebuilds that skeleton;
//!    the deadlock checker flags every receive as
//!    `UnmatchedRecv`.
//! 2. **Allreduce reply-tag aliasing** — the collective's reply leg
//!    used `tag + 1`, which a neighboring application exchange also
//!    claimed; the reply drained the app's payload.
//!    [`buggy_allreduce_claims`] rebuilds the claim set; the tag checker
//!    reports the `TagCollision`. [`aliased_reply_exchange`] is the
//!    runnable version for the explorer, which fails its oracle even at
//!    baseline.
//! 3. **Unsorted partial-data indices** — merge tables with
//!    non-ascending row indices silently mis-accumulated.
//!    `Transfer::try_new` (promoted to release builds in this PR)
//!    rejects them; [`unsorted_transfer`] exercises it.
//!
//! Beyond the reconstructions, [`misrouted_direct`] / [`dropped_direct`]
//! / [`duplicated_direct`] / [`unheld_direct`] are minimal conservation
//! corruptions of a valid direct plan, [`duplicate_designee_step`] is a
//! reduction level designating one row twice,
//! [`over_budget_plan`] is a reconstruction plan claiming a byte budget
//! its own footprint exceeds (`plan_fits` must report the exact gap),
//! and
//! [`single_sweep_gather`] is a *timing* bug — a gather whose root polls
//! each source once without retrying — that passes every static check
//! and the baseline schedule, and is caught only by chaos schedules
//! (demonstrating why the explorer layer exists).
//!
//! [`gen_case`] derives random-but-deterministic topology/footprint/
//! ownership cases from a seed for property tests and the CI corpus
//! sweep.

// Witness positions/offsets are indices into u32-sized buffers; casting
// the enumerate index back to `u32` is lossless by construction.
#![allow(clippy::cast_possible_truncation)]
use crate::deadlock::{CommOp, CommProgram};
use crate::tags::TagClaimSet;
use crate::transfer_safety::{rehome_slice, RehomedSlice, SliceSteal};
use xct_comm::{
    Communicator, CompiledPlans, DirectPlan, Footprints, LevelProgram, Ownership, RankPlan,
    ReductionStep, Topology,
};

/// The dissemination-barrier skeleton on `n` ranks at `tag`. With
/// `buggy`, the receive peer uses PR 3's mis-parenthesized formula
/// (missing the outer `% n`), so most receives wait on out-of-range
/// ranks.
pub fn barrier_program(n: usize, tag: u64, buggy: bool) -> CommProgram {
    let mut ops: Vec<Vec<CommOp>> = vec![Vec::new(); n];
    let mut dist = 1usize;
    while dist < n {
        let round_tag = tag ^ ((dist as u64) << 32);
        for (rank, ops) in ops.iter_mut().enumerate() {
            let to = (rank + dist) % n;
            let from = if buggy {
                // PR 3's bug: `(rank + n - dist % n) % n` lost its outer
                // modulus in a refactor, leaving `rank + n - (dist % n)`.
                rank + n - (dist % n)
            } else {
                (rank + n - dist) % n
            };
            ops.push(CommOp::Send { to, tag: round_tag });
            ops.push(CommOp::Recv {
                from,
                tag: round_tag,
            });
        }
        dist *= 2;
    }
    CommProgram { ops }
}

/// The claim set of PR 3's buggy allreduce on `n` ranks: the reply leg
/// reuses the application namespace at `tag + 1`, where a neighboring
/// exchange legitimately claims its own traffic. `TagClaimSet::check`
/// must report the collision.
pub fn buggy_allreduce_claims(n: usize, tag: u64) -> TagClaimSet {
    let mut set = TagClaimSet::new();
    for r in 1..n {
        set.claim(r, 0, tag, "allreduce gather");
        // The bug: replies went out at `tag + 1` instead of a reserved
        // namespace.
        set.claim(0, r, tag + 1, "allreduce reply");
    }
    // A neighboring exchange that (correctly, per the old convention)
    // claims the adjacent tag for its own root-to-rank traffic.
    for r in 1..n {
        set.claim(0, r, tag + 1, "next exchange");
    }
    set
}

/// Runnable version of the reply-tag bug, shaped like the real failure:
/// rank 0 gathers at `tag`, replies at `reply_tag`, then broadcasts a
/// "next exchange" sentinel at `tag + 1`; non-root ranks service the
/// next exchange *first* (in real code it is a different subsystem that
/// polls ahead of the solver), then collect the reply. With
/// `reply_tag == tag + 1` — PR 3's bug — both messages share one
/// `(src, tag)` FIFO key, so the receiver's first matching recv drains
/// the reply and the second gets the sentinel: values swap, and the
/// oracle fails deterministically at baseline. With a disjoint
/// `reply_tag` the same reordering is harmless. Returns
/// `(reduced, sentinel)` per rank — the oracle expects
/// `(Σ(r+1), -1.0)`.
pub fn aliased_reply_exchange(comm: &Communicator, tag: u64, reply_tag: u64) -> (f64, f64) {
    let me = comm.rank();
    let n = comm.size();
    let value = (me + 1) as f64;
    if me == 0 {
        let mut acc = value;
        for src in 1..n {
            // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
            let v: Vec<f64> = comm.recv_vals(src, tag).expect("gather");
            acc += v[0];
        }
        for dst in 1..n {
            // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
            comm.send_vals(dst, reply_tag, &[acc]).expect("reply");
        }
        for dst in 1..n {
            // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
            comm.send_vals(dst, tag + 1, &[-1.0f64]).expect("bcast");
        }
        (acc, -1.0)
    } else {
        // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
        comm.send_vals(0, tag, &[value]).expect("contribute");
        // The "next exchange" subsystem polls before the solver resumes.
        // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
        let s: Vec<f64> = comm.recv_vals(0, tag + 1).expect("next exchange");
        // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
        let v: Vec<f64> = comm.recv_vals(0, reply_tag).expect("reply");
        (v[0], s[0])
    }
}

/// A correct 2-rank direct-plan fixture: each rank owns half the rows
/// and touches one foreign row.
pub fn small_direct_fixture() -> (Footprints, Ownership) {
    let footprints = Footprints::new(vec![vec![0, 1, 2], vec![1, 2, 3]]);
    let ownership = Ownership::new(vec![0, 0, 1, 1], 2);
    (footprints, ownership)
}

/// Rank 0's foreign row 2 is sent to rank 0 itself instead of its owner
/// — `Misrouted` (and the owner never gets it: `Conservation`).
pub fn misrouted_direct() -> DirectPlan {
    DirectPlan::from_sends(vec![vec![(0, vec![2])], vec![(0, vec![1])]])
}

/// Rank 0 never sends its foreign row 2 — `Conservation` with
/// `delivered = 0`.
pub fn dropped_direct() -> DirectPlan {
    DirectPlan::from_sends(vec![vec![], vec![(0, vec![1])]])
}

/// Rank 0 sends its foreign row 2 twice — `Conservation` with
/// `delivered = 2`.
pub fn duplicated_direct() -> DirectPlan {
    DirectPlan::from_sends(vec![vec![(1, vec![2, 2])], vec![(0, vec![1])]])
}

/// Rank 0 sends row 3, which is not in its footprint — `UnheldRow`.
pub fn unheld_direct() -> DirectPlan {
    DirectPlan::from_sends(vec![vec![(1, vec![2, 3])], vec![(0, vec![1])]])
}

/// A reduction level whose post-footprints designate row 5 to *both*
/// members of the group — the partial would be double-counted
/// downstream. `verify_reduce_step` reports `Conservation` with
/// `delivered = 2`.
pub fn duplicate_designee_step() -> (Footprints, ReductionStep) {
    let pre = Footprints::new(vec![vec![5], vec![5]]);
    let step = ReductionStep {
        groups: vec![vec![0, 1]],
        sends: vec![Vec::new(), Vec::new()],
        post: Footprints::new(vec![vec![5], vec![5]]),
    };
    (pre, step)
}

/// PR 3's unsorted-merge-table bug as a `Transfer` construction:
/// non-ascending indices must be rejected with the offending position.
pub fn unsorted_transfer() -> Result<xct_comm::Transfer, xct_comm::PlanError> {
    xct_comm::Transfer::try_new(1, vec![3, 3])
}

/// A reconstruction plan whose claimed budget is one byte below its
/// true peak per-rank footprint — the shape of a hand-edited or stale
/// plan file that would overrun (simulated) device memory if executed.
/// `plan_fits` must report `PlanOverBudget` with the exact byte gap.
pub fn over_budget_plan() -> xct_plan::ReconPlan {
    let planner = xct_plan::Planner::default();
    let dims = xct_plan::VolumeDims { n: 16, slices: 6 };
    let topo = Topology::new(1, 2, 2);
    let mut plan = planner
        .plan(dims, 16, None, topo)
        // xct-allow(no-panic): fixture constructs known-valid plan inputs
        .expect("valid plan inputs");
    plan.budget_bytes = Some(plan.per_rank_bytes() - 1);
    plan
}

/// A gather whose root sweeps its sources with `try_recv` exactly once
/// instead of blocking: under the baseline schedule every message has
/// landed by the time the root polls, so the sum is correct; under a
/// chaos schedule a delayed message is silently dropped from the sum.
/// Static checks cannot see this (the plan is fine — the *progress
/// logic* is wrong), which is what the explorer layer is for.
pub fn single_sweep_gather(comm: &Communicator, tag: u64) -> f64 {
    let me = comm.rank();
    let n = comm.size();
    let value = (me + 1) as f64;
    if me == 0 {
        // Give the messages a moment — enough for the baseline schedule,
        // not enough for a chaos-delayed one.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let mut acc = value;
        for src in 1..n {
            if let Ok(Some(bytes)) = comm.try_recv(src, tag) {
                let vals = f64_slice(&bytes);
                acc += vals[0];
            }
        }
        for dst in 1..n {
            // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
            comm.send_vals(dst, tag ^ 0x10, &[acc]).expect("bcast");
        }
        acc
    } else {
        // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
        comm.send_vals(0, tag, &[value]).expect("contribute");
        // xct-allow(no-panic): corpus fixture harness; an infra failure must abort the reproduction
        let v: Vec<f64> = comm.recv_vals(0, tag ^ 0x10).expect("result");
        v[0]
    }
}

fn f64_slice(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        // xct-allow(no-panic): infallible — chunks_exact(8) yields exactly 8 bytes
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// SplitMix64 — the corpus generator's only randomness source, so every
/// case is a pure function of its seed.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic random verification case.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// The machine shape (nodes × sockets × GPUs).
    pub topology: Topology,
    /// Per-rank row footprints.
    pub footprints: Footprints,
    /// Row → owner map.
    pub ownership: Ownership,
}

/// Derives a random case from `seed`: a topology of 1–3 nodes × 1–2
/// sockets × 1–2 GPUs, a row space of a few rows per rank, round-robin-
/// ish ownership, and per-rank footprints that always include the rank's
/// owned rows plus a random selection of foreign ones (mirroring how a
/// projector footprint always covers the rank's own slab).
pub fn gen_case(seed: u64) -> GenCase {
    let mut state = seed;
    let mut next = move || {
        state = mix64(state.wrapping_add(0xA5A5_A5A5));
        state
    };
    let nodes = 1 + (next() % 3) as usize;
    let sockets = 1 + (next() % 2) as usize;
    let gpus = 1 + (next() % 2) as usize;
    let topology = Topology::new(nodes, sockets, gpus);
    let n = topology.size();
    let rows_per_rank = 2 + (next() % 5) as usize;
    let num_rows = n * rows_per_rank;
    // Contiguous slabs, with slab boundaries perturbed by ±1 where legal.
    let owner: Vec<u32> = (0..num_rows)
        .map(|r| ((r / rows_per_rank) as u32).min(n as u32 - 1))
        .collect();
    let ownership = Ownership::new(owner.clone(), n);
    let per_rank: Vec<Vec<u32>> = (0..n)
        .map(|p| {
            let mut fp: Vec<u32> = Vec::new();
            for r in 0..num_rows as u32 {
                let owned = owner[r as usize] as usize == p;
                // Owned rows are always in the footprint; foreign rows
                // join with seed-dependent probability ~1/2.
                if owned || next() % 2 == 0 {
                    fp.push(r);
                }
            }
            fp
        })
        .collect();
    GenCase {
        topology,
        footprints: Footprints::new(per_rank),
        ownership,
    }
}

// ---- Mutated compiled index programs (PR 9: abstract interpretation) --

/// A small compiled direct fixture whose index programs the mutations
/// below corrupt: 2 ranks, 4 rows, one foreign row each way.
pub fn small_compiled_fixture() -> (Footprints, Ownership, CompiledPlans) {
    let (fp, own) = small_direct_fixture();
    let plan = DirectPlan::build(&fp, &own);
    let compiled = CompiledPlans::compile_direct(&fp, &own, &plan);
    (fp, own, compiled)
}

/// Rebuilds one level verbatim through `from_parts` (the corpus's
/// mutation seam — execution metadata defaults are irrelevant to the
/// static passes).
fn clone_level(l: &LevelProgram) -> LevelProgram {
    LevelProgram::from_parts(
        l.out_len(),
        l.sends().to_vec(),
        l.keeps().to_vec(),
        l.recvs().to_vec(),
        l.tag(),
    )
}

/// The mutable parts of one rank's compiled program.
struct RankParts {
    in_len: usize,
    owned_len: usize,
    levels: Vec<LevelProgram>,
    global: LevelProgram,
    scatter_global: LevelProgram,
    scatter_levels: Vec<LevelProgram>,
    restrict: Vec<u32>,
}

/// Rebuilds `plans` with rank `rank`'s program passed through `mutate`.
fn mutate_rank(
    plans: &CompiledPlans,
    rank: usize,
    mutate: impl FnOnce(&mut RankParts),
) -> CompiledPlans {
    let mut mutate = Some(mutate);
    let rebuilt = (0..plans.num_ranks())
        .map(|p| {
            let rp = plans.rank(p);
            let mut parts = RankParts {
                in_len: rp.in_len(),
                owned_len: rp.owned_len(),
                levels: rp.local_levels().iter().map(clone_level).collect(),
                global: clone_level(rp.global_level()),
                scatter_global: clone_level(rp.scatter_global_level()),
                scatter_levels: rp.scatter_local_levels().iter().map(clone_level).collect(),
                restrict: rp.restrict_idx().to_vec(),
            };
            if p == rank {
                // xct-allow(no-panic): corpus helper — the rank index is visited exactly once
                (mutate.take().expect("one mutation"))(&mut parts);
            }
            RankPlan::from_parts(
                parts.in_len,
                parts.owned_len,
                parts.levels,
                parts.global,
                parts.scatter_global,
                parts.scatter_levels,
                parts.restrict,
            )
        })
        .collect();
    CompiledPlans::from_ranks(rebuilt)
}

/// Bounds mutation: rank 0's global send gathers position 40 from its
/// 3-element footprint buffer — `IndexOutOfBounds` (send gather, 40, 3).
pub fn oob_gather_compiled() -> CompiledPlans {
    let (_, _, compiled) = small_compiled_fixture();
    mutate_rank(&compiled, 0, |r| {
        let mut sends = r.global.sends().to_vec();
        // xct-allow(no-panic): corpus fixture — the fixture's rank 0 always has one global send
        *sends[0].idx.last_mut().expect("send is non-empty") = 40;
        r.global = LevelProgram::from_parts(
            r.global.out_len(),
            sends,
            r.global.keeps().to_vec(),
            r.global.recvs().to_vec(),
            r.global.tag(),
        );
    })
}

/// Bounds mutation: rank 0's global recv lands a payload element at
/// position 9 of its 2-element owned buffer — `IndexOutOfBounds`
/// (recv landing, 9, 2).
pub fn oob_recv_compiled() -> CompiledPlans {
    let (_, _, compiled) = small_compiled_fixture();
    mutate_rank(&compiled, 0, |r| {
        let mut recvs = r.global.recvs().to_vec();
        // xct-allow(no-panic): corpus fixture — the fixture's rank 0 always receives from rank 1
        *recvs[0].idx.last_mut().expect("recv is non-empty") = 9;
        r.global = LevelProgram::from_parts(
            r.global.out_len(),
            r.global.sends().to_vec(),
            r.global.keeps().to_vec(),
            recvs,
            r.global.tag(),
        );
    })
}

/// Bounds mutation: rank 0's local carry writes output position 30 of a
/// 2-element buffer — `IndexOutOfBounds` (keep destination, 30, 2).
pub fn oob_keep_compiled() -> CompiledPlans {
    let (_, _, compiled) = small_compiled_fixture();
    mutate_rank(&compiled, 0, |r| {
        let mut keeps = r.global.keeps().to_vec();
        // xct-allow(no-panic): corpus fixture — rank 0 owns rows it also holds, so keeps exist
        keeps.last_mut().expect("keep present").1 = 30;
        r.global = LevelProgram::from_parts(
            r.global.out_len(),
            r.global.sends().to_vec(),
            keeps,
            r.global.recvs().to_vec(),
            r.global.tag(),
        );
    })
}

/// Bounds mutation: rank 0's footprint restriction reads position 77 of
/// the 3-element final scatter buffer — `IndexOutOfBounds`
/// (restriction, 77, 3).
pub fn oob_restrict_compiled() -> CompiledPlans {
    let (_, _, compiled) = small_compiled_fixture();
    mutate_rank(&compiled, 0, |r| {
        // xct-allow(no-panic): corpus fixture — the restriction is never empty
        *r.restrict.last_mut().expect("restrict present") = 77;
    })
}

/// Lifetime mutation: the two-slice overlap pipeline with slice 0's
/// accumulator read *before* its posted irecvs are drained —
/// `PendingWriteRead` (acc, slice 0).
pub fn read_before_finish_schedule() -> Vec<crate::lifetime::ScratchOp> {
    let mut ops = crate::lifetime::overlap_schedule(2, 3);
    let wait = ops
        .iter()
        .position(|op| matches!(op, crate::lifetime::ScratchOp::WaitWrites { slice: 0 }))
        // xct-allow(no-panic): corpus fixture — overlap_schedule always emits WaitWrites(0)
        .expect("schedule finishes slice 0");
    ops.swap(wait, wait + 1);
    ops
}

/// A hierarchical fixture for the work-stealing artifacts: 1 node ×
/// 2 sockets × 2 GPUs, heavily overlapping footprints so every pair of
/// ranks exchanges traffic at every level.
pub fn steal_fixture() -> (CompiledPlans, Topology) {
    let topo = Topology::new(1, 2, 2);
    let owner: Vec<u32> = (0..16u32).map(|r| r / 4).collect();
    let fp: Vec<Vec<u32>> = (0..4usize)
        .map(|p| {
            (0..16u32)
                .filter(|&r| (r as usize * 5 + p * 3) % 4 < 3)
                .collect()
        })
        .collect();
    let fp = Footprints::new(fp);
    let own = Ownership::new(owner, 4);
    let plan = xct_comm::HierarchicalPlan::build(&fp, &own, &topo);
    (CompiledPlans::compile_hierarchical(&fp, &own, &plan), topo)
}

/// Steal mutation: the thief lives on the other socket —
/// `CrossSocketSteal { from: 0, to: 2 }` (sockets 0 → 1).
pub fn cross_socket_steal() -> (CompiledPlans, Topology, RehomedSlice) {
    let (plans, topo) = steal_fixture();
    let steal = SliceSteal {
        slice: 0,
        from: 0,
        to: 2,
    };
    let rehomed = rehome_slice(&plans, steal);
    (plans, topo, rehomed)
}

/// Steal mutation: the re-homed transfers keep their *original* level
/// tags (the `TAG_STEAL` bit stripped), so the thief's own concurrent
/// traffic cross-matches them — `TagCollision`.
pub fn tag_colliding_steal() -> (CompiledPlans, Topology, RehomedSlice) {
    let (plans, topo) = steal_fixture();
    let mut rehomed = rehome_slice(
        &plans,
        SliceSteal {
            slice: 0,
            from: 0,
            to: 1,
        },
    );
    for t in &mut rehomed.transfers {
        t.tag &= !xct_comm::TAG_STEAL;
    }
    (plans, topo, rehomed)
}

/// Steal mutation: the rewrite covered the forward pipeline but forgot
/// the scatter direction — those payloads are still addressed at the
/// vacated rank, `RehomingGap`.
pub fn truncated_rehoming() -> (CompiledPlans, Topology, RehomedSlice) {
    let (plans, topo) = steal_fixture();
    let mut rehomed = rehome_slice(
        &plans,
        SliceSteal {
            slice: 0,
            from: 0,
            to: 1,
        },
    );
    use crate::diag::ExchangeLevel as L;
    rehomed
        .transfers
        .retain(|t| matches!(t.level, L::Socket | L::Node | L::Global));
    (plans, topo, rehomed)
}
