//! Interval-domain bounds proofs over compiled index programs.
//!
//! [`crate::compiled_check`] *executes* the index programs with tokens,
//! which proves routing but only touches the indices a matched
//! send/recv pair actually drives. This pass is the complementary
//! abstract interpretation: every index table of every level program is
//! abstracted to the interval `[min, max]` of its entries, and the
//! interval is checked against the declared length of the buffer the
//! table addresses — sends gather from the level's *input* buffer,
//! keeps read the input and write the output, recv landings and the
//! final restriction write the *output*. Buffer lengths are not assumed:
//! they are chained through the pipeline exactly as execution chains
//! them (`in_len → level.out_len → … → owned_len` forward, reversed for
//! the scatter), so a program whose levels disagree about buffer sizes
//! is caught as a chain break even when every table is internally
//! consistent.
//!
//! The abstraction is sound and complete for this property: an access
//! set is in bounds iff its maximum is, so `[min, max] ⊆ [0, len)`
//! neither misses a violation nor reports a spurious one. What the pass
//! does **not** prove is value routing (that is `compiled_check`'s
//! token simulation) or anything about message timing (the explorer's
//! job).
//!
//! The clean-verdict path allocates nothing: intervals are folded in
//! registers and a passing [`VerifyReport`] never pushes. `perf_suite`
//! asserts this with the counting allocator.

use crate::diag::{AccessKind, ExchangeLevel, VerifyReport, ViolationKind};
use xct_comm::{CompiledPlans, LevelProgram, RankPlan};

/// The interval abstraction of one index table: `None` for the empty
/// table (no access, trivially safe), else `Some((min, max))`.
fn interval(idx: &[u32]) -> Option<(u32, u32)> {
    idx.iter().fold(None, |acc, &i| match acc {
        None => Some((i, i)),
        Some((lo, hi)) => Some((lo.min(i), hi.max(i))),
    })
}

/// Checks one table's interval against the addressed buffer length.
fn check_table(
    rank: usize,
    level: ExchangeLevel,
    access: AccessKind,
    idx: &[u32],
    len: usize,
    report: &mut VerifyReport,
) {
    if let Some((_, hi)) = interval(idx) {
        if hi as usize >= len {
            report.push(
                rank,
                Some(level),
                ViolationKind::IndexOutOfBounds {
                    access,
                    index: hi,
                    len,
                },
            );
        }
    }
}

/// Checks every table of one level against its input length, returning
/// the output length for chaining.
fn check_level(
    rank: usize,
    name: ExchangeLevel,
    level: &LevelProgram,
    in_len: usize,
    report: &mut VerifyReport,
) -> usize {
    let out_len = level.out_len();
    for t in level.sends() {
        check_table(rank, name, AccessKind::SendGather, &t.idx, in_len, report);
    }
    for &(s, d) in level.keeps() {
        if s as usize >= in_len {
            report.push(
                rank,
                Some(name),
                ViolationKind::IndexOutOfBounds {
                    access: AccessKind::KeepSrc,
                    index: s,
                    len: in_len,
                },
            );
        }
        if d as usize >= out_len {
            report.push(
                rank,
                Some(name),
                ViolationKind::IndexOutOfBounds {
                    access: AccessKind::KeepDst,
                    index: d,
                    len: out_len,
                },
            );
        }
    }
    for t in level.recvs() {
        check_table(rank, name, AccessKind::RecvLanding, &t.idx, out_len, report);
    }
    out_len
}

/// Names the forward levels of one rank, mirroring execution order.
fn reduce_names(num_local: usize) -> impl Iterator<Item = ExchangeLevel> {
    (0..num_local)
        .map(move |i| match (num_local, i) {
            (2, 0) => ExchangeLevel::Socket,
            _ => ExchangeLevel::Node,
        })
        .chain(std::iter::once(ExchangeLevel::Global))
}

fn scatter_names(num_local: usize) -> impl Iterator<Item = ExchangeLevel> {
    std::iter::once(ExchangeLevel::ScatterGlobal).chain((0..num_local).map(move |i| {
        match (num_local, i) {
            (2, 0) => ExchangeLevel::ScatterNode,
            _ => ExchangeLevel::ScatterSocket,
        }
    }))
}

/// Proves every index of one rank's programs in bounds, chaining buffer
/// lengths through both pipelines.
fn check_rank(rank: usize, rp: &RankPlan, report: &mut VerifyReport) {
    // Forward: footprint → local levels → global → owned.
    let mut len = rp.in_len();
    let mut names = reduce_names(rp.local_levels().len());
    for level in rp.local_levels() {
        // xct-allow(no-panic): infallible — reduce_names yields one name per local level plus Global
        let name = names.next().expect("level name");
        len = check_level(rank, name, level, len, report);
    }
    // xct-allow(no-panic): infallible — the Global name is always the iterator's last element
    let gname = names.next().expect("global name");
    len = check_level(rank, gname, rp.global_level(), len, report);
    if len != rp.owned_len() {
        report.push(
            rank,
            Some(ExchangeLevel::Global),
            ViolationKind::Malformed {
                detail: format!(
                    "forward pipeline ends with buffer length {len}, owned length is {}",
                    rp.owned_len()
                ),
            },
        );
    }
    // Scatter: owned → global stage → fan-out levels → restriction.
    let mut len = rp.owned_len();
    let num_local = rp.scatter_local_levels().len();
    let mut names = scatter_names(num_local);
    // xct-allow(no-panic): infallible — scatter_names always starts with ScatterGlobal
    let sgname = names.next().expect("scatter-global name");
    len = check_level(rank, sgname, rp.scatter_global_level(), len, report);
    let mut last = sgname;
    for level in rp.scatter_local_levels() {
        // xct-allow(no-panic): infallible — scatter_names yields one name per fan-out level
        let name = names.next().expect("scatter level name");
        len = check_level(rank, name, level, len, report);
        last = name;
    }
    check_table(
        rank,
        last,
        AccessKind::Restrict,
        rp.restrict_idx(),
        len,
        report,
    );
    if rp.restrict_idx().len() != rp.in_len() {
        report.push(
            rank,
            Some(last),
            ViolationKind::Malformed {
                detail: format!(
                    "restriction covers {} positions for footprint length {}",
                    rp.restrict_idx().len(),
                    rp.in_len()
                ),
            },
        );
    }
}

/// Interval-domain bounds proof for every Transfer table, keep pair, and
/// restriction index of `plans`, on both pipelines of every rank.
pub fn verify_bounds(plans: &CompiledPlans) -> VerifyReport {
    let mut report = VerifyReport::new();
    for rank in 0..plans.num_ranks() {
        check_rank(rank, plans.rank(rank), &mut report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_comm::{Footprints, HierarchicalPlan, Ownership, Topology};

    fn fixture() -> (Footprints, Ownership, Topology) {
        let topo = Topology::new(2, 2, 2);
        let owner: Vec<u32> = (0..32u32).map(|r| r / 4).collect();
        let fp: Vec<Vec<u32>> = (0..8usize)
            .map(|p| {
                (0..32u32)
                    .filter(|&r| (r as usize * 7 + p * 3) % 5 < 3)
                    .collect()
            })
            .collect();
        (Footprints::new(fp), Ownership::new(owner, 8), topo)
    }

    #[test]
    fn compiled_hierarchical_plans_prove_in_bounds() {
        let (fp, own, topo) = fixture();
        let plan = HierarchicalPlan::build(&fp, &own, &topo);
        let plans = CompiledPlans::compile_hierarchical(&fp, &own, &plan);
        verify_bounds(&plans).assert_ok("hierarchical bounds");
    }

    #[test]
    fn interval_of_empty_table_is_none() {
        assert_eq!(interval(&[]), None);
        assert_eq!(interval(&[4]), Some((4, 4)));
        assert_eq!(interval(&[7, 2, 9, 3]), Some((2, 9)));
    }

    #[test]
    fn planner_topology_sweep_proves_in_bounds() {
        // "Arbitrary topologies produced by the planner": the seeded case
        // generator sweeps world sizes and footprint shapes.
        for seed in 0..16u64 {
            let case = crate::corpus::gen_case(seed);
            let plan = HierarchicalPlan::build(&case.footprints, &case.ownership, &case.topology);
            let plans =
                CompiledPlans::compile_hierarchical(&case.footprints, &case.ownership, &plan);
            let report = verify_bounds(&plans);
            assert!(report.ok(), "seed {seed}: {report}");
        }
    }
}
