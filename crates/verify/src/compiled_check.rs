//! Symbolic execution of compiled index programs.
//!
//! The compiled plans are position arithmetic: per level, gather these
//! input positions to that peer, carry these positions locally, land each
//! received payload element at these output positions. This checker
//! replays the whole pipeline with *tokens* instead of floats — a reduce
//! token is `(holder rank, row)`, a scatter token is the row id — which
//! turns every numerical property into an exact set property:
//!
//! * **conservation** — after the global level, the owner of row `r`
//!   holds exactly one token `(q, r)` for every rank `q` whose footprint
//!   contains `r`; keeps + recvs partition the owned set;
//! * **no mixing** — a position never accumulates tokens of two
//!   different rows (summing unrelated partials);
//! * **non-aliasing** — within a level, no two writes land on the same
//!   scratch position where the semantics are assignment (scatters), and
//!   no two local carries collide where the semantics are accumulation
//!   seeded by the carry (reduces);
//! * **structure** — all indices in bounds, every send matched by exactly
//!   one equal-length recv on the peer, nothing unmatched in flight.

// Witness positions/offsets are indices into u32-sized buffers; casting
// the enumerate index back to `u32` is lossless by construction.
#![allow(clippy::cast_possible_truncation)]
use crate::diag::{ExchangeLevel, VerifyReport, ViolationKind, WriteOrigin};
use std::collections::HashMap;
use xct_comm::{CompiledPlans, Footprints, LevelProgram, Ownership};

/// Names the forward levels: hierarchical plans have `[Socket, Node]`
/// local levels, direct plans none.
fn reduce_level_name(idx: usize, num_local: usize) -> ExchangeLevel {
    match (num_local, idx) {
        (_, i) if i == num_local => ExchangeLevel::Global,
        (2, 0) => ExchangeLevel::Socket,
        _ => ExchangeLevel::Node,
    }
}

fn scatter_level_name(idx: usize, num_local: usize) -> ExchangeLevel {
    match (num_local, idx) {
        (_, 0) => ExchangeLevel::ScatterGlobal,
        (2, 1) => ExchangeLevel::ScatterNode,
        _ => ExchangeLevel::ScatterSocket,
    }
}

/// The per-rank level programs of one pipeline stage, in execution order.
fn reduce_levels(plans: &CompiledPlans, rank: usize) -> Vec<&LevelProgram> {
    let rp = plans.rank(rank);
    let mut levels: Vec<&LevelProgram> = rp.local_levels().iter().collect();
    levels.push(rp.global_level());
    levels
}

fn scatter_levels(plans: &CompiledPlans, rank: usize) -> Vec<&LevelProgram> {
    let rp = plans.rank(rank);
    let mut levels: Vec<&LevelProgram> = vec![rp.scatter_global_level()];
    levels.extend(rp.scatter_local_levels().iter());
    levels
}

/// Pairs every send with its matching recv on the peer for `level` of
/// every rank, reporting unmatched traffic. Returns, per rank, the list
/// of `(sender, send transfer index, recv transfer index)` pairs driving
/// delivery.
fn match_level(
    levels: &[&LevelProgram],
    level_name: ExchangeLevel,
    report: &mut VerifyReport,
) -> Vec<Vec<(usize, usize, usize)>> {
    let n = levels.len();
    let mut matches: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
    for (p, level) in levels.iter().enumerate() {
        for (si, t) in level.sends().iter().enumerate() {
            if t.peer >= n {
                report.push(
                    p,
                    Some(level_name),
                    ViolationKind::UnconsumedSend {
                        peer: t.peer,
                        tag: level.tag(),
                    },
                );
                continue;
            }
            let peer_recvs = levels[t.peer].recvs();
            let hits: Vec<usize> = peer_recvs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.peer == p)
                .map(|(i, _)| i)
                .collect();
            match hits.as_slice() {
                [] => report.push(
                    p,
                    Some(level_name),
                    ViolationKind::UnconsumedSend {
                        peer: t.peer,
                        tag: level.tag(),
                    },
                ),
                [ri] => {
                    let recv = &peer_recvs[*ri];
                    if recv.idx.len() != t.idx.len() {
                        report.push(
                            t.peer,
                            Some(level_name),
                            ViolationKind::Malformed {
                                detail: format!(
                                    "send {p}→{} carries {} elements but the recv lands {}",
                                    t.peer,
                                    t.idx.len(),
                                    recv.idx.len()
                                ),
                            },
                        );
                    } else {
                        matches[t.peer].push((p, si, *ri));
                    }
                }
                _ => report.push(
                    t.peer,
                    Some(level_name),
                    ViolationKind::Malformed {
                        detail: format!(
                            "rank {} posts {} receives for rank {p} in one level (ambiguous match)",
                            t.peer,
                            hits.len()
                        ),
                    },
                ),
            }
        }
        // Receives with no corresponding send.
        for recv in level.recvs() {
            let sent = recv.peer < n && levels[recv.peer].sends().iter().any(|t| t.peer == p);
            if !sent {
                report.push(
                    p,
                    Some(level_name),
                    ViolationKind::UnmatchedRecv {
                        peer: recv.peer,
                        tag: level.tag(),
                    },
                );
            }
        }
    }
    matches
}

/// Verifies the forward (reduce) pipeline of `plans` by token
/// simulation, then the transpose (scatter) pipeline, against the
/// geometry they were compiled from.
pub fn verify_compiled(
    footprints: &Footprints,
    ownership: &Ownership,
    plans: &CompiledPlans,
) -> VerifyReport {
    let mut report = VerifyReport::new();
    verify_reduce_pipeline(footprints, ownership, plans, &mut report);
    verify_scatter_pipeline(footprints, ownership, plans, &mut report);
    report
}

fn verify_reduce_pipeline(
    footprints: &Footprints,
    ownership: &Ownership,
    plans: &CompiledPlans,
    report: &mut VerifyReport,
) {
    let n = plans.num_ranks();
    // Multiset of (holder, row) tokens per buffer position, per rank.
    let mut cur: Vec<Vec<Vec<(usize, u32)>>> = (0..n)
        .map(|p| {
            footprints.per_rank[p]
                .iter()
                .map(|&r| vec![(p, r)])
                .collect()
        })
        .collect();
    let num_local = plans.rank(0).local_levels().len();
    for li in 0..=num_local {
        let name = reduce_level_name(li, num_local);
        let levels: Vec<&LevelProgram> = (0..n).map(|p| reduce_levels(plans, p)[li]).collect();
        let matches = match_level(&levels, name, report);
        let mut next: Vec<Vec<Vec<(usize, u32)>>> = Vec::with_capacity(n);
        for p in 0..n {
            let level = levels[p];
            let mut out: Vec<Vec<(usize, u32)>> = vec![Vec::new(); level.out_len()];
            // Local carries seed the accumulator; two carries on one
            // position overwrite each other in the real executor.
            let mut carried: HashMap<u32, u32> = HashMap::new();
            for &(s, d) in level.keeps() {
                if (s as usize) >= cur[p].len() || (d as usize) >= out.len() {
                    report.push(
                        p,
                        Some(name),
                        ViolationKind::Malformed {
                            detail: format!("keep ({s}, {d}) out of bounds"),
                        },
                    );
                    continue;
                }
                if let Some(&prev) = carried.get(&d) {
                    report.push(
                        p,
                        Some(name),
                        ViolationKind::ScratchAliasing {
                            position: d,
                            first: WriteOrigin::Keep { src: prev },
                            second: WriteOrigin::Keep { src: s },
                        },
                    );
                    continue;
                }
                carried.insert(d, s);
                let tokens = cur[p][s as usize].clone();
                out[d as usize].extend(tokens);
            }
            // Deliveries from matched sends.
            for &(src, si, ri) in &matches[p] {
                let send = &levels[src].sends()[si];
                let recv = &levels[p].recvs()[ri];
                for (k, (&gi, &di)) in send.idx.iter().zip(&recv.idx).enumerate() {
                    if (gi as usize) >= cur[src].len() {
                        report.push(
                            src,
                            Some(name),
                            ViolationKind::Malformed {
                                detail: format!("send gather index {gi} out of bounds"),
                            },
                        );
                        continue;
                    }
                    if (di as usize) >= out.len() {
                        report.push(
                            p,
                            Some(name),
                            ViolationKind::Malformed {
                                detail: format!(
                                    "recv landing index {di} (payload offset {k}) out of bounds"
                                ),
                            },
                        );
                        continue;
                    }
                    let tokens = cur[src][gi as usize].clone();
                    out[di as usize].extend(tokens);
                }
            }
            // No position may mix rows.
            for (pos, tokens) in out.iter().enumerate() {
                if let Some(&(_, first_row)) = tokens.first() {
                    if let Some(&(_, other)) = tokens.iter().find(|&&(_, r)| r != first_row) {
                        report.push(
                            p,
                            Some(name),
                            ViolationKind::MixedRows {
                                position: pos as u32,
                                rows: (first_row, other),
                            },
                        );
                    }
                }
            }
            next.push(out);
        }
        cur = next;
        if !report.ok() {
            // Downstream findings would be echoes of the same defect.
            return;
        }
    }
    // Final conservation: the owner of each row holds exactly one token
    // per original holder.
    for (p, held) in cur.iter().enumerate() {
        let owned = ownership.rows_of(p);
        if held.len() != owned.len() {
            report.push(
                p,
                Some(ExchangeLevel::Global),
                ViolationKind::Malformed {
                    detail: format!(
                        "owned buffer holds {} positions for {} owned rows",
                        held.len(),
                        owned.len()
                    ),
                },
            );
            continue;
        }
        for (pos, &row) in owned.iter().enumerate() {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for &(holder, r) in &held[pos] {
                if r != row {
                    report.push(
                        p,
                        Some(ExchangeLevel::Global),
                        ViolationKind::MixedRows {
                            position: pos as u32,
                            rows: (row, r),
                        },
                    );
                }
                *counts.entry(holder).or_insert(0) += 1;
            }
            for q in 0..n {
                let expected = usize::from(footprints.per_rank[q].binary_search(&row).is_ok());
                let got = counts.get(&q).copied().unwrap_or(0);
                if got != expected {
                    report.push(
                        p,
                        Some(ExchangeLevel::Global),
                        ViolationKind::Conservation {
                            holder: q,
                            row,
                            delivered: got,
                        },
                    );
                }
            }
        }
    }
}

fn verify_scatter_pipeline(
    footprints: &Footprints,
    ownership: &Ownership,
    plans: &CompiledPlans,
    report: &mut VerifyReport,
) {
    let n = plans.num_ranks();
    // Scatter semantics are assignment: each position holds at most one
    // row token, plus the origin of the write for aliasing witnesses.
    let mut cur: Vec<Vec<Option<u32>>> = (0..n)
        .map(|p| ownership.rows_of(p).into_iter().map(Some).collect())
        .collect();
    let num_local = plans.rank(0).scatter_local_levels().len();
    for li in 0..=num_local {
        let name = scatter_level_name(li, num_local);
        let levels: Vec<&LevelProgram> = (0..n).map(|p| scatter_levels(plans, p)[li]).collect();
        let matches = match_level(&levels, name, report);
        let mut next: Vec<Vec<Option<u32>>> = Vec::with_capacity(n);
        for p in 0..n {
            let level = levels[p];
            let mut out: Vec<Option<u32>> = vec![None; level.out_len()];
            let mut origin: HashMap<u32, WriteOrigin> = HashMap::new();
            let mut write = |pos: u32,
                             val: Option<u32>,
                             from: WriteOrigin,
                             out: &mut Vec<Option<u32>>,
                             report: &mut VerifyReport| {
                if (pos as usize) >= out.len() {
                    report.push(
                        p,
                        Some(name),
                        ViolationKind::Malformed {
                            detail: format!("write index {pos} out of bounds"),
                        },
                    );
                    return;
                }
                if let Some(&first) = origin.get(&pos) {
                    report.push(
                        p,
                        Some(name),
                        ViolationKind::ScratchAliasing {
                            position: pos,
                            first,
                            second: from,
                        },
                    );
                    return;
                }
                origin.insert(pos, from);
                out[pos as usize] = val;
            };
            for &(s, d) in level.keeps() {
                if (s as usize) >= cur[p].len() {
                    report.push(
                        p,
                        Some(name),
                        ViolationKind::Malformed {
                            detail: format!("keep source {s} out of bounds"),
                        },
                    );
                    continue;
                }
                let val = cur[p][s as usize];
                write(d, val, WriteOrigin::Keep { src: s }, &mut out, report);
            }
            for &(src, si, ri) in &matches[p] {
                let send = &levels[src].sends()[si];
                let recv = &levels[p].recvs()[ri];
                for (k, (&gi, &di)) in send.idx.iter().zip(&recv.idx).enumerate() {
                    if (gi as usize) >= cur[src].len() {
                        report.push(
                            src,
                            Some(name),
                            ViolationKind::Malformed {
                                detail: format!("send gather index {gi} out of bounds"),
                            },
                        );
                        continue;
                    }
                    let val = cur[src][gi as usize];
                    if val.is_none() {
                        report.push(
                            src,
                            Some(name),
                            ViolationKind::Malformed {
                                detail: format!(
                                    "send gathers unwritten position {gi} (payload offset {k})"
                                ),
                            },
                        );
                    }
                    write(
                        di,
                        val,
                        WriteOrigin::Recv {
                            peer: src,
                            offset: k as u32,
                        },
                        &mut out,
                        report,
                    );
                }
            }
            next.push(out);
        }
        cur = next;
        if !report.ok() {
            return;
        }
    }
    // Restriction: each footprint row must come back as itself.
    for (p, held) in cur.iter().enumerate() {
        let restrict = plans.rank(p).restrict_idx();
        if restrict.len() != footprints.per_rank[p].len() {
            report.push(
                p,
                Some(scatter_level_name(num_local, num_local)),
                ViolationKind::Malformed {
                    detail: format!(
                        "restriction covers {} positions for {} footprint rows",
                        restrict.len(),
                        footprints.per_rank[p].len()
                    ),
                },
            );
            continue;
        }
        for (&pos, &row) in restrict.iter().zip(&footprints.per_rank[p]) {
            let level_name = Some(scatter_level_name(num_local, num_local));
            match held.get(pos as usize) {
                None => report.push(
                    p,
                    level_name,
                    ViolationKind::Malformed {
                        detail: format!("restriction index {pos} out of bounds"),
                    },
                ),
                Some(None) => report.push(
                    p,
                    level_name,
                    ViolationKind::Conservation {
                        holder: ownership.owner[row as usize] as usize,
                        row,
                        delivered: 0,
                    },
                ),
                Some(Some(got)) if *got != row => report.push(
                    p,
                    level_name,
                    ViolationKind::MixedRows {
                        position: pos,
                        rows: (row, *got),
                    },
                ),
                Some(Some(_)) => {}
            }
        }
    }
}
