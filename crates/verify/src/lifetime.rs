//! Scratch-buffer lifetime and aliasing analysis for the overlap
//! pipeline.
//!
//! The split `global_begin`/`global_finish` (and the scatter twins) on
//! [`xct_comm::RankPlan`] exists so a slice's global exchange drains
//! while the next slice computes. That overlap is exactly where a
//! lifetime bug hides: the in-flight handle owns an accumulator region
//! with *posted but undelivered* irecv writes, and any read of that
//! region before the matching `finish` observes partially-delivered
//! data. This module abstracts the executor's scratch usage into a small
//! op language ([`ScratchOp`]), derives the op sequence the real
//! pipeline performs ([`overlap_schedule`]), and checks any sequence —
//! real or mutated — for the two lifetime properties:
//!
//! * **no pending-write read** — a region acquired by `begin` is not
//!   read until its posted writes are waited
//!   ([`ViolationKind::PendingWriteRead`]);
//! * **no overwrite of a live region** — `cur` is not refilled for the
//!   next slice while the previous slice's `begin` has yet to gather it,
//!   and an accumulator is not re-acquired while still in flight.
//!
//! The analysis is a linear scan with fixed-size state (at most
//! [`MAX_TRACKED_SLICES`] concurrently tracked slices — the real
//! pipeline keeps two in flight); the clean verdict allocates nothing.

use crate::diag::{VerifyReport, ViolationKind};
use xct_comm::RankPlan;

/// Most slices the checker tracks concurrently. The overlap pipeline
/// keeps two in flight; the bound only caps *simultaneous* liveness,
/// not schedule length (slice ids wrap through the table by identity).
pub const MAX_TRACKED_SLICES: usize = 64;

/// One abstract scratch operation of the overlapped exchange pipeline,
/// in program order for a single rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScratchOp {
    /// `reduce_local` rewrites `cur` with slice `slice`'s post-node
    /// partials.
    FillCur {
        /// The slice whose values now occupy `cur`.
        slice: usize,
    },
    /// `global_begin` gathers `cur` into send payloads and carries —
    /// the last read of `cur` for this slice.
    ReadCur {
        /// The slice being posted.
        slice: usize,
    },
    /// `global_begin` takes an accumulator region for the slice.
    AcquireAcc {
        /// The slice owning the region.
        slice: usize,
    },
    /// `global_begin` posts `count` irecvs targeting the accumulator —
    /// writes that remain pending until [`ScratchOp::WaitWrites`].
    PostWrites {
        /// The slice owning the region.
        slice: usize,
        /// Number of posted in-flight writes.
        count: usize,
    },
    /// `global_finish` drains the posted irecvs (the `CommWait` span).
    WaitWrites {
        /// The slice being finished.
        slice: usize,
    },
    /// `global_finish` reads the accumulator to produce the owned
    /// totals.
    ReadAcc {
        /// The slice being finished.
        slice: usize,
    },
    /// `global_finish` returns the region to the pool.
    ReleaseAcc {
        /// The slice releasing its region.
        slice: usize,
    },
}

/// The op sequence one rank performs for `slices` fused slices under
/// the §III-E overlap pipeline (begin slice `s`, then finish slice
/// `s−1`), with `writes_per_slice` posted irecvs per global exchange.
/// This mirrors `DistributedOperator`'s pipeline driver exactly; the
/// corpus mutates copies of it to seed lifetime bugs.
pub fn overlap_schedule(slices: usize, writes_per_slice: usize) -> Vec<ScratchOp> {
    let mut ops = Vec::with_capacity(slices * 7);
    let mut pending: Option<usize> = None;
    for s in 0..slices {
        ops.push(ScratchOp::FillCur { slice: s });
        ops.push(ScratchOp::ReadCur { slice: s });
        ops.push(ScratchOp::AcquireAcc { slice: s });
        ops.push(ScratchOp::PostWrites {
            slice: s,
            count: writes_per_slice,
        });
        if let Some(p) = pending.take() {
            ops.push(ScratchOp::WaitWrites { slice: p });
            ops.push(ScratchOp::ReadAcc { slice: p });
            ops.push(ScratchOp::ReleaseAcc { slice: p });
        }
        pending = Some(s);
    }
    if let Some(p) = pending {
        ops.push(ScratchOp::WaitWrites { slice: p });
        ops.push(ScratchOp::ReadAcc { slice: p });
        ops.push(ScratchOp::ReleaseAcc { slice: p });
    }
    ops
}

/// [`overlap_schedule`] for a concrete compiled rank program: the
/// posted-write count is the rank's global-level recv transfer count.
pub fn schedule_for(rp: &RankPlan, slices: usize) -> Vec<ScratchOp> {
    overlap_schedule(slices, rp.global_level().recvs().len())
}

/// Checks an op sequence for pending-write reads and live-region
/// overwrites. `rank` only labels the witnesses.
pub fn verify_scratch_lifetime(rank: usize, ops: &[ScratchOp]) -> VerifyReport {
    let mut report = VerifyReport::new();
    // Fixed-size state: which slice's acc region is live and how many of
    // its posted writes are still pending.
    let mut live = [false; MAX_TRACKED_SLICES];
    let mut pending = [0usize; MAX_TRACKED_SLICES];
    // `cur` holds (slice, consumed-by-begin?) or nothing yet.
    let mut cur: Option<(usize, bool)> = None;
    let slot = |s: usize, report: &mut VerifyReport| -> Option<usize> {
        if s < MAX_TRACKED_SLICES {
            Some(s)
        } else {
            report.push(
                rank,
                None,
                ViolationKind::Malformed {
                    detail: format!("slice id {s} exceeds tracked bound {MAX_TRACKED_SLICES}"),
                },
            );
            None
        }
    };
    for op in ops {
        match *op {
            ScratchOp::FillCur { slice } => {
                if let Some((prev, consumed)) = cur {
                    if !consumed {
                        // Overwriting values slice `prev`'s begin never
                        // gathered: its exchange would send garbage.
                        report.push(
                            rank,
                            None,
                            ViolationKind::PendingWriteRead {
                                buffer: "cur",
                                slice: prev,
                                pending: 1,
                            },
                        );
                    }
                }
                cur = Some((slice, false));
            }
            ScratchOp::ReadCur { slice } => match cur {
                Some((held, _)) if held == slice => cur = Some((held, true)),
                other => report.push(
                    rank,
                    None,
                    ViolationKind::Malformed {
                        detail: format!("begin of slice {slice} reads cur holding {other:?}"),
                    },
                ),
            },
            ScratchOp::AcquireAcc { slice } => {
                if let Some(k) = slot(slice, &mut report) {
                    if live[k] {
                        report.push(
                            rank,
                            None,
                            ViolationKind::PendingWriteRead {
                                buffer: "acc",
                                slice,
                                pending: pending[k],
                            },
                        );
                    }
                    live[k] = true;
                    pending[k] = 0;
                }
            }
            ScratchOp::PostWrites { slice, count } => {
                if let Some(k) = slot(slice, &mut report) {
                    if !live[k] {
                        report.push(
                            rank,
                            None,
                            ViolationKind::Malformed {
                                detail: format!(
                                    "writes posted into unacquired acc of slice {slice}"
                                ),
                            },
                        );
                    }
                    pending[k] += count;
                }
            }
            ScratchOp::WaitWrites { slice } => {
                if let Some(k) = slot(slice, &mut report) {
                    pending[k] = 0;
                }
            }
            ScratchOp::ReadAcc { slice } => {
                if let Some(k) = slot(slice, &mut report) {
                    if pending[k] > 0 {
                        report.push(
                            rank,
                            None,
                            ViolationKind::PendingWriteRead {
                                buffer: "acc",
                                slice,
                                pending: pending[k],
                            },
                        );
                    }
                }
            }
            ScratchOp::ReleaseAcc { slice } => {
                if let Some(k) = slot(slice, &mut report) {
                    if pending[k] > 0 {
                        report.push(
                            rank,
                            None,
                            ViolationKind::PendingWriteRead {
                                buffer: "acc",
                                slice,
                                pending: pending[k],
                            },
                        );
                    }
                    live[k] = false;
                }
            }
        }
    }
    // Anything still in flight at pipeline end was never finished.
    for (k, &l) in live.iter().enumerate() {
        if l && pending[k] > 0 {
            report.push(
                rank,
                None,
                ViolationKind::PendingWriteRead {
                    buffer: "acc",
                    slice: k,
                    pending: pending[k],
                },
            );
        }
    }
    report
}

/// Verifies the real overlap pipeline's scratch usage for every rank of
/// `plans` across `slices` fused slices.
pub fn verify_lifetimes(plans: &xct_comm::CompiledPlans, slices: usize) -> VerifyReport {
    let mut report = VerifyReport::new();
    for rank in 0..plans.num_ranks() {
        let ops = schedule_for(plans.rank(rank), slices);
        report.merge(verify_scratch_lifetime(rank, &ops));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_overlap_schedule_is_clean() {
        for slices in [1, 2, 3, 8] {
            let ops = overlap_schedule(slices, 3);
            let report = verify_scratch_lifetime(0, &ops);
            assert!(report.ok(), "slices={slices}: {report}");
        }
    }

    #[test]
    fn read_before_wait_is_a_pending_write_read() {
        // Mutate the 2-slice schedule: finish reads the accumulator
        // before draining the posted irecvs.
        let mut ops = overlap_schedule(2, 3);
        let wait = ops
            .iter()
            .position(|op| matches!(op, ScratchOp::WaitWrites { slice: 0 }))
            .unwrap();
        ops.swap(wait, wait + 1); // ReadAcc(0) now precedes WaitWrites(0)
        let report = verify_scratch_lifetime(0, &ops);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::PendingWriteRead {
                buffer: "acc",
                slice: 0,
                pending: 3
            }
        )));
    }

    #[test]
    fn overwriting_unposted_cur_is_flagged() {
        // FillCur(1) lands before slice 0's begin gathered cur.
        let ops = [
            ScratchOp::FillCur { slice: 0 },
            ScratchOp::FillCur { slice: 1 },
            ScratchOp::ReadCur { slice: 1 },
        ];
        let report = verify_scratch_lifetime(0, &ops);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::PendingWriteRead {
                buffer: "cur",
                slice: 0,
                ..
            }
        )));
    }

    #[test]
    fn unfinished_pipeline_is_flagged() {
        let ops = [
            ScratchOp::FillCur { slice: 0 },
            ScratchOp::ReadCur { slice: 0 },
            ScratchOp::AcquireAcc { slice: 0 },
            ScratchOp::PostWrites { slice: 0, count: 2 },
        ];
        let report = verify_scratch_lifetime(0, &ops);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::PendingWriteRead {
                buffer: "acc",
                slice: 0,
                pending: 2
            }
        )));
    }
}
