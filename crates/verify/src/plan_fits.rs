//! Static verification of [`ReconPlan`]s before any data moves.
//!
//! A plan is a promise: *this* footprint on *this* budget, slabs that
//! cover the stack exactly once, a fusing factor whose per-slice tag
//! salts stay out of the collectives' reply namespace. The executor
//! trusts all of it — `reconstruct_planned` allocates to the plan's
//! slab widths and salts tags by slice index — so a broken plan turns
//! into an out-of-memory, a silently skipped slice run, or a
//! cross-matched message at runtime. [`plan_fits`] proves the promise
//! statically, the same way `verify_hierarchical` proves routing:
//! structured [`Violation`]s with witnesses, checked against a
//! known-bad corpus.

use crate::diag::{VerifyReport, ViolationKind};
use crate::tags::slice_salt;
use xct_plan::{ReconPlan, Residency, MAX_FUSING_TAGS};

/// Every static check against a reconstruction plan:
///
/// * **Budget** — the peak per-rank footprint (operator share + widest
///   slab × per-slice share) fits the budget the plan was made against.
/// * **Cover** — slabs are indexed in execution order, contiguous
///   (each starts where the previous ended), non-empty, no wider than
///   the fusing factor, and together cover `dims.slices` exactly.
/// * **Residency** — one slab runs resident; several slabs all stream
///   (the streaming executor pages *every* slab through I/O).
/// * **Tag discipline** — the fusing factor keeps the per-slice salts
///   (`(f + 1) << 44`) clear of the reserved reply bit.
/// * **Weights** — measured tile weights (`--weights-from`), when
///   present, cover the `ceil(n / tile_size)²` tile grid exactly, so
///   the weighted Hilbert partition neither panics on a short table
///   nor silently ignores trailing entries.
///
/// Plan-scoped findings carry rank 0 and no exchange level: a plan
/// defect is global, not attributable to a rank or exchange.
pub fn plan_fits(plan: &ReconPlan) -> VerifyReport {
    let mut report = VerifyReport::new();

    if let Some(budget) = plan.budget_bytes {
        let required = plan.per_rank_bytes();
        if required > budget {
            report.push(0, None, ViolationKind::PlanOverBudget { budget, required });
        }
    }

    if plan.fusing == 0 {
        report.push(
            0,
            None,
            ViolationKind::Malformed {
                detail: "plan has zero fusing factor".to_string(),
            },
        );
    }
    if plan.fusing > MAX_FUSING_TAGS {
        // The widest slab's last slice would salt its tags into the
        // reserved reply namespace (bit 63).
        report.push(
            0,
            None,
            ViolationKind::ReservedTagBit {
                tag: slice_salt(plan.fusing - 1),
                exchange: format!("fused slice {} of the plan", plan.fusing - 1),
            },
        );
    }

    if let Some(tw) = &plan.tile_weights {
        if tw.tile_size == 0 {
            report.push(
                0,
                None,
                ViolationKind::Malformed {
                    detail: "tile weights carry a zero tile size".to_string(),
                },
            );
        } else if tw.weights.len() != tw.expected_len(plan.dims.n) {
            report.push(
                0,
                None,
                ViolationKind::WeightGridMismatch {
                    weights: tw.weights.len(),
                    grid_side: tw.grid_side(plan.dims.n),
                },
            );
        }
    }

    let slabs = plan.slabs.len();
    let mut expected_start = 0usize;
    for (i, slab) in plan.slabs.iter().enumerate() {
        if slab.index != i {
            report.push(
                0,
                None,
                ViolationKind::Malformed {
                    detail: format!("slab at position {i} carries index {}", slab.index),
                },
            );
        }
        if slab.len == 0 {
            report.push(
                0,
                None,
                ViolationKind::Malformed {
                    detail: format!("slab {i} is empty"),
                },
            );
        }
        if slab.start != expected_start {
            report.push(
                0,
                None,
                ViolationKind::SlabCoverBreak {
                    index: i,
                    expected_start,
                    start: slab.start,
                },
            );
            // Re-anchor so one misplaced slab reports once, not
            // cascading into every successor.
            expected_start = slab.start;
        }
        if slab.len > plan.fusing {
            report.push(
                0,
                None,
                ViolationKind::SlabTooWide {
                    index: i,
                    len: slab.len,
                    fusing: plan.fusing,
                },
            );
        }
        let expected_residency = if slabs == 1 {
            Residency::Resident
        } else {
            Residency::Streamed
        };
        if slab.residency != expected_residency {
            report.push(
                0,
                None,
                ViolationKind::ResidencyConflict { index: i, slabs },
            );
        }
        expected_start += slab.len;
    }
    if expected_start != plan.dims.slices {
        if expected_start < plan.dims.slices {
            report.push(
                0,
                None,
                ViolationKind::SlabCoverShort {
                    covered: expected_start,
                    slices: plan.dims.slices,
                },
            );
        } else {
            report.push(
                0,
                None,
                ViolationKind::SlabCoverBreak {
                    index: slabs,
                    expected_start: plan.dims.slices,
                    start: expected_start,
                },
            );
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_comm::Topology;
    use xct_plan::{Planner, SlabPlan, VolumeDims};

    fn streamed_plan() -> ReconPlan {
        let planner = Planner::default();
        let dims = VolumeDims { n: 16, slices: 7 };
        let topo = Topology::new(1, 2, 2);
        let probe = planner.plan(dims, 16, None, topo).unwrap();
        let budget = probe.matrix_bytes_per_rank() + 3 * probe.slice_bytes_per_rank();
        planner.plan(dims, 16, Some(budget), topo).unwrap()
    }

    #[test]
    fn planner_output_passes() {
        let plan = streamed_plan();
        assert!(plan.streaming());
        plan_fits(&plan).assert_ok("planner-emitted plan");
        let resident = Planner::default()
            .plan(
                VolumeDims { n: 12, slices: 4 },
                12,
                None,
                Topology::new(1, 1, 2),
            )
            .unwrap();
        plan_fits(&resident).assert_ok("resident plan");
    }

    #[test]
    fn budget_exactly_at_the_floor_plans_and_verifies() {
        // The planner's documented floor is the operator share plus one
        // slice per rank; a budget of exactly that must produce a
        // streaming plan of single-slice slabs, and plan_fits must
        // accept it (the budget check is strict `>`).
        let planner = Planner::default();
        let dims = VolumeDims { n: 16, slices: 7 };
        let topo = Topology::new(1, 2, 2);
        let probe = planner.plan(dims, 16, None, topo).unwrap();
        let floor = probe.matrix_bytes_per_rank() + probe.slice_bytes_per_rank();
        let plan = planner
            .plan(dims, 16, Some(floor), topo)
            .expect("a budget at the floor must plan");
        assert!(plan.streaming());
        assert!(plan.slabs.iter().all(|s| s.len == 1), "{:?}", plan.slabs);
        plan_fits(&plan).assert_ok("floor-budget plan");

        // plan_fits' own boundary: a claimed budget exactly equal to
        // the peak footprint passes.
        let mut exact = plan.clone();
        exact.budget_bytes = Some(exact.per_rank_bytes());
        plan_fits(&exact).assert_ok("budget == peak footprint");
    }

    #[test]
    fn budget_one_below_the_floor_is_rejected_with_the_exact_witness() {
        let planner = Planner::default();
        let dims = VolumeDims { n: 16, slices: 7 };
        let topo = Topology::new(1, 2, 2);
        let probe = planner.plan(dims, 16, None, topo).unwrap();
        let floor = probe.matrix_bytes_per_rank() + probe.slice_bytes_per_rank();
        // The planner itself refuses, naming both sides of the gap...
        let err = planner.plan(dims, 16, Some(floor - 1), topo).unwrap_err();
        assert_eq!(
            err,
            xct_plan::PlanError::BudgetTooSmall {
                budget: floor - 1,
                required: floor,
            }
        );
        // ...and a plan whose claimed budget undercuts its peak by one
        // byte is rejected by plan_fits with the exact same shape.
        let mut plan = probe;
        let required = plan.per_rank_bytes();
        plan.budget_bytes = Some(required - 1);
        let report = plan_fits(&plan);
        assert_eq!(
            report.violations[0].kind,
            ViolationKind::PlanOverBudget {
                budget: required - 1,
                required,
            }
        );
    }

    #[test]
    fn over_budget_plan_is_rejected_with_the_exact_gap() {
        let mut plan = streamed_plan();
        // Shrink the claimed budget below the true peak footprint.
        let required = plan.per_rank_bytes();
        plan.budget_bytes = Some(required - 1);
        let report = plan_fits(&plan);
        assert_eq!(
            report.violations[0].kind,
            ViolationKind::PlanOverBudget {
                budget: required - 1,
                required,
            }
        );
    }

    #[test]
    fn cover_gap_is_pinned_to_the_breaking_slab() {
        let mut plan = streamed_plan();
        plan.slabs[1].start += 1; // slice 3 now covered by no slab
        let report = plan_fits(&plan);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::SlabCoverBreak {
                index: 1,
                expected_start: 3,
                start: 4,
            }
        )));
    }

    #[test]
    fn truncated_cover_reports_the_missing_tail() {
        let mut plan = streamed_plan();
        plan.slabs.pop();
        let report = plan_fits(&plan);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::SlabCoverShort {
                covered: 6,
                slices: 7,
            }
        )));
    }

    #[test]
    fn slab_wider_than_fusing_is_rejected() {
        let mut plan = streamed_plan();
        // Widen the tail slab past the fusing bound without breaking
        // the cover: steal the extra slice from the plan's tail.
        plan.fusing = 2;
        let report = plan_fits(&plan);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::SlabTooWide {
                index: 0,
                len: 3,
                fusing: 2,
            }
        )));
    }

    #[test]
    fn residency_must_match_slab_count() {
        let mut plan = streamed_plan();
        plan.slabs[1].residency = xct_plan::Residency::Resident;
        let report = plan_fits(&plan);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::ResidencyConflict { index: 1, .. })));
    }

    #[test]
    fn oversized_fusing_invades_the_reply_namespace() {
        let mut plan = Planner::default()
            .plan(
                VolumeDims { n: 8, slices: 2 },
                8,
                None,
                Topology::new(1, 1, 1),
            )
            .unwrap();
        plan.fusing = MAX_FUSING_TAGS + 1;
        let report = plan_fits(&plan);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::ReservedTagBit { tag, .. } if tag >> 63 == 1
        )));
    }

    #[test]
    fn measured_weights_covering_the_grid_pass() {
        let plan = streamed_plan();
        let tile = 4;
        let side = plan.dims.n.div_ceil(tile);
        let weighted = plan.with_tile_weights(xct_plan::TileWeights {
            tile_size: tile,
            weights: vec![1; side * side],
        });
        plan_fits(&weighted).assert_ok("weighted plan");
    }

    #[test]
    fn short_weight_table_is_rejected_with_the_grid_witness() {
        let plan = streamed_plan();
        // 16-cell side at tile 4 → 4x4 grid → 16 weights required.
        let weighted = plan.with_tile_weights(xct_plan::TileWeights {
            tile_size: 4,
            weights: vec![1; 15],
        });
        let report = plan_fits(&weighted);
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::WeightGridMismatch {
                weights: 15,
                grid_side: 4,
            }
        )));
    }

    #[test]
    fn zero_tile_size_weights_are_malformed() {
        let plan = streamed_plan();
        let weighted = plan.with_tile_weights(xct_plan::TileWeights {
            tile_size: 0,
            weights: vec![],
        });
        let report = plan_fits(&weighted);
        assert!(report.violations.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::Malformed { detail } if detail.contains("zero tile size")
        )));
    }

    #[test]
    fn empty_slab_is_malformed() {
        let mut plan = streamed_plan();
        plan.slabs.insert(
            1,
            SlabPlan {
                index: 1,
                start: 3,
                len: 0,
                residency: xct_plan::Residency::Streamed,
            },
        );
        for (i, slab) in plan.slabs.iter_mut().enumerate() {
            slab.index = i;
        }
        let report = plan_fits(&plan);
        assert!(report.violations.iter().any(
            |v| matches!(&v.kind, ViolationKind::Malformed { detail } if detail.contains("empty"))
        ));
    }
}
