//! Static tag-disjointness verification.
//!
//! The runtime matches messages by `(source, tag)` with per-key FIFO, so
//! two *different* exchanges that are ever in flight concurrently must
//! never emit messages with the same `(src, dst, tag)` triple — otherwise
//! one exchange's receive can drain the other's payload (exactly PR 3's
//! allreduce reply-tag bug). A [`TagClaimSet`] enumerates every triple a
//! set of concurrent exchanges can put in flight, each labelled with the
//! exchange that claims it, and [`TagClaimSet::check`] proves pairwise
//! disjointness across labels (same-label duplicates are legal: per-key
//! FIFO orders them).
//!
//! What counts as "concurrent" comes from the overlap pipeline's
//! concurrency contract (DESIGN.md §3c): under overlap, slice `s`'s
//! global exchange drains while slice `s+1` runs its *entire* pipeline,
//! and scalar collectives (allreduce, barrier) may interleave with any of
//! it. [`claims_for_compiled`] builds the corresponding claim set.

use crate::diag::{VerifyReport, ViolationKind};
use std::collections::HashMap;
use xct_comm::{CompiledPlans, LevelProgram, REPLY_TAG_SALT};

/// The per-slice tag salt of the overlap pipeline (mirrors the fused
/// slice salt in `xct-core`'s distributed operator: slice `s` XORs its
/// level tags with `(s + 1) << 44`).
pub fn slice_salt(slice: usize) -> u64 {
    ((slice as u64) + 1) << 44
}

/// One potential in-flight message: who sends it, who can match it, and
/// under which tag, attributed to a named exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagClaim {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// The wire tag.
    pub tag: u64,
    /// The exchange claiming the triple (for the collision witness).
    pub exchange: String,
    /// Whether this is internal reply traffic (allowed to use the
    /// reserved reply bit).
    pub reply: bool,
}

/// A set of claims from exchanges that may be in flight concurrently.
#[derive(Debug, Clone, Default)]
pub struct TagClaimSet {
    claims: Vec<TagClaim>,
}

impl TagClaimSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The claims recorded so far.
    pub fn claims(&self) -> &[TagClaim] {
        &self.claims
    }

    /// Records one application claim.
    pub fn claim(&mut self, src: usize, dst: usize, tag: u64, exchange: &str) {
        self.claims.push(TagClaim {
            src,
            dst,
            tag,
            exchange: exchange.to_string(),
            reply: false,
        });
    }

    /// Records one reply-namespace claim.
    pub fn claim_reply(&mut self, src: usize, dst: usize, tag: u64, exchange: &str) {
        self.claims.push(TagClaim {
            src,
            dst,
            tag,
            exchange: exchange.to_string(),
            reply: true,
        });
    }

    /// Records every message of one compiled level under `salt`.
    pub fn claim_level(&mut self, levels: &[&LevelProgram], salt: u64, exchange: &str) {
        for (src, level) in levels.iter().enumerate() {
            for t in level.sends() {
                self.claim(src, t.peer, level.tag() ^ salt, exchange);
            }
        }
    }

    /// Records the gather + reply legs of a scalar collective rooted at
    /// rank 0 (the runtime's `allreduce_max` / `allreduce_sum` shape)
    /// using the reserved reply namespace.
    pub fn claim_allreduce(&mut self, n: usize, tag: u64, exchange: &str) {
        for r in 1..n {
            self.claim(r, 0, tag, exchange);
            self.claim_reply(0, r, tag ^ REPLY_TAG_SALT, exchange);
        }
    }

    /// Records every round of the dissemination barrier at `tag`.
    pub fn claim_barrier(&mut self, n: usize, tag: u64, exchange: &str) {
        let mut dist = 1usize;
        while dist < n {
            for rank in 0..n {
                let to = (rank + dist) % n;
                self.claim(rank, to, tag ^ ((dist as u64) << 32), exchange);
            }
            dist *= 2;
        }
    }

    /// Proves pairwise disjointness: no `(src, dst, tag)` triple may be
    /// claimed by two different exchanges, and no application claim may
    /// set the reserved reply bit.
    pub fn check(&self) -> VerifyReport {
        let mut report = VerifyReport::new();
        let mut seen: HashMap<(usize, usize, u64), &TagClaim> = HashMap::new();
        for claim in &self.claims {
            if !claim.reply && claim.tag & REPLY_TAG_SALT != 0 {
                report.push(
                    claim.src,
                    None,
                    ViolationKind::ReservedTagBit {
                        tag: claim.tag,
                        exchange: claim.exchange.clone(),
                    },
                );
            }
            match seen.get(&(claim.src, claim.dst, claim.tag)) {
                Some(first) if first.exchange != claim.exchange => {
                    report.push(
                        claim.dst,
                        None,
                        ViolationKind::TagCollision {
                            src: claim.src,
                            dst: claim.dst,
                            tag: claim.tag,
                            first: first.exchange.clone(),
                            second: claim.exchange.clone(),
                        },
                    );
                }
                Some(_) => {}
                None => {
                    seen.insert((claim.src, claim.dst, claim.tag), claim);
                }
            }
        }
        report
    }
}

/// All levels of one slice of the compiled pipeline, as named claim
/// groups.
fn claim_slice(set: &mut TagClaimSet, plans: &CompiledPlans, slice: usize) {
    let n = plans.num_ranks();
    let salt = slice_salt(slice);
    let num_local = plans.rank(0).local_levels().len();
    for li in 0..num_local {
        let levels: Vec<&LevelProgram> =
            (0..n).map(|p| &plans.rank(p).local_levels()[li]).collect();
        set.claim_level(&levels, salt, &format!("slice {slice} local level {li}"));
    }
    let global: Vec<&LevelProgram> = (0..n).map(|p| plans.rank(p).global_level()).collect();
    set.claim_level(&global, salt, &format!("slice {slice} global"));
    let sg: Vec<&LevelProgram> = (0..n)
        .map(|p| plans.rank(p).scatter_global_level())
        .collect();
    set.claim_level(&sg, salt, &format!("slice {slice} scatter-global"));
    let num_scatter = plans.rank(0).scatter_local_levels().len();
    for li in 0..num_scatter {
        let levels: Vec<&LevelProgram> = (0..n)
            .map(|p| &plans.rank(p).scatter_local_levels()[li])
            .collect();
        set.claim_level(
            &levels,
            salt,
            &format!("slice {slice} scatter local level {li}"),
        );
    }
}

/// Builds the concurrent claim set for `plans`: with `overlap`, the
/// levels of two adjacent slices (both globals are briefly in flight when
/// slice `s+1` begins before slice `s` finishes) plus the solver's
/// control collectives; without, a single slice plus the collectives.
pub fn claims_for_compiled(plans: &CompiledPlans, overlap: bool) -> TagClaimSet {
    let n = plans.num_ranks();
    let mut set = TagClaimSet::new();
    claim_slice(&mut set, plans, 0);
    if overlap {
        claim_slice(&mut set, plans, 1);
    }
    // Control traffic that may interleave with the exchanges: the solver's
    // normalization allreduces and CG inner products.
    set.claim_allreduce(n, 0x7000, "allreduce 0x7000");
    set.claim_allreduce(n, 0x7100, "allreduce 0x7100");
    set.claim_allreduce(n, 0x9000, "cg inner product 0x9000");
    set.claim_allreduce(n, 0x9002, "cg inner product 0x9002");
    set
}

/// Verifies tag disjointness for a compiled plan under the given overlap
/// mode.
pub fn verify_tags(plans: &CompiledPlans, overlap: bool) -> VerifyReport {
    claims_for_compiled(plans, overlap).check()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_bit_boundary_is_exact() {
        // The highest application tag — every bit below the reply bit
        // set — is legal, and the reply namespace may use the bit from
        // its side. Only an *application* claim carrying bit 63 trips
        // the rule.
        let mut set = TagClaimSet::new();
        set.claim(0, 1, REPLY_TAG_SALT - 1, "app tag just below the bit");
        set.claim_reply(1, 0, REPLY_TAG_SALT, "reply tag at the bit");
        set.check().assert_ok("boundary tags from the right sides");

        let mut bad = TagClaimSet::new();
        bad.claim(0, 1, REPLY_TAG_SALT, "app tag at the bit");
        let report = bad.check();
        assert!(
            report.violations.iter().any(|v| matches!(
                &v.kind,
                ViolationKind::ReservedTagBit { tag, .. } if *tag == REPLY_TAG_SALT
            )),
            "expected the exact reserved-bit witness, got: {report}"
        );
    }

    #[test]
    fn largest_legal_fusing_salt_stays_clear_of_the_bit() {
        // slice_salt(MAX_FUSING_TAGS - 1) is the widest salt a legal
        // plan can emit; it must not reach bit 63, while one slice more
        // would (the plan_fits boundary test asserts the rejection).
        let top = slice_salt(xct_plan::MAX_FUSING_TAGS - 1);
        assert_eq!(top & REPLY_TAG_SALT, 0);
        assert_ne!(slice_salt(xct_plan::MAX_FUSING_TAGS) & REPLY_TAG_SALT, 0);
    }
}
