//! Property-based tests for the software half-precision type.

use proptest::prelude::*;
use xct_fp16::{max_abs, AdaptiveNormalizer, F16};

proptest! {
    /// f32 -> f16 -> f32 stays within half an f16 ulp for in-range values.
    #[test]
    fn conversion_is_correctly_rounded(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x).to_f32();
        // Relative error bound for normals, absolute bound for subnormals.
        let bound = (x.abs() * 4.8828125e-4).max(2.0f32.powi(-25));
        prop_assert!((h - x).abs() <= bound, "x={x} h={h}");
    }

    /// Conversion is monotone: a <= b implies f16(a) <= f16(b).
    #[test]
    fn conversion_is_monotone(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(a.is_finite() && b.is_finite());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo) <= F16::from_f32(hi));
    }

    /// from_f64 agrees with from_f32 whenever the f64 is exactly an f32.
    #[test]
    fn f64_path_agrees_on_exact_f32(x in any::<f32>()) {
        let via32 = F16::from_f32(x);
        let via64 = F16::from_f64(x as f64);
        if via32.is_nan() {
            prop_assert!(via64.is_nan());
        } else {
            prop_assert_eq!(via32.to_bits(), via64.to_bits());
        }
    }

    /// Negation is exact and an involution.
    #[test]
    fn negation_involution(x in any::<f32>()) {
        let h = F16::from_f32(x);
        prop_assert_eq!((-(-h)).to_bits(), h.to_bits());
        if h.is_finite() {
            prop_assert_eq!((-h).to_f32(), -(h.to_f32()));
        }
    }

    /// Addition commutes bit-exactly (it is f32 addition plus rounding).
    #[test]
    fn addition_commutes(a in -1e4f32..1e4, b in -1e4f32..1e4) {
        let (x, y) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
    }

    /// abs clears the sign and never changes magnitude.
    #[test]
    fn abs_is_magnitude(x in any::<f32>()) {
        let h = F16::from_f32(x).abs();
        prop_assert!(!h.is_sign_negative());
        if h.is_finite() {
            prop_assert_eq!(h.to_f32(), F16::from_f32(x).to_f32().abs());
        }
    }

    /// Normalize/denormalize roundtrip keeps relative error within one
    /// half-precision quantization step for well-scaled vectors.
    #[test]
    fn normalization_roundtrip(scale in -20i32..20, v in prop::collection::vec(-1.0f32..1.0, 1..64)) {
        let s = 2.0f32.powi(scale);
        let data: Vec<f32> = v.iter().map(|x| x * s).collect();
        let norm = AdaptiveNormalizer::default();
        let n = norm.normalize(&data);
        let back = norm.denormalize(&n);
        let m = max_abs(&data);
        for (orig, rec) in data.iter().zip(&back) {
            // Error is relative to the vector max-norm (the normalization
            // target), not to each element.
            prop_assert!((orig - rec).abs() <= m * 1.5 * 4.8828125e-4 + f32::MIN_POSITIVE,
                "orig={orig} rec={rec} max={m}");
        }
    }

    /// total_cmp is consistent with partial_cmp on non-NaN values.
    #[test]
    fn total_cmp_refines_partial_cmp(a in any::<f32>(), b in any::<f32>()) {
        let (x, y) = (F16::from_f32(a), F16::from_f32(b));
        prop_assume!(!x.is_nan() && !y.is_nan());
        if let Some(ord) = x.partial_cmp(&y) {
            if x.to_f32() != 0.0 || y.to_f32() != 0.0 {
                prop_assert_eq!(x.total_cmp(&y), ord);
            }
        }
    }
}
