//! The four precision modes evaluated throughout the paper's experiments
//! (Tables III–IV, Figs 9–13).

use core::fmt;
use core::str::FromStr;

/// Precision configuration for storage, communication, and arithmetic.
///
/// | Mode   | Storage/comm | Arithmetic | Paper role                      |
/// |--------|--------------|------------|---------------------------------|
/// | Double | f64          | f64        | baseline                        |
/// | Single | f32          | f32        | common GPU practice             |
/// | Half   | f16          | f16        | fastest, risky accumulation     |
/// | Mixed  | f16          | f32        | the paper's recommended mode    |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 64-bit storage and arithmetic.
    Double,
    /// 32-bit storage and arithmetic.
    Single,
    /// 16-bit storage *and* arithmetic (accumulation also rounds to half).
    Half,
    /// 16-bit storage and communication, 32-bit arithmetic (§III-C).
    Mixed,
}

impl Precision {
    /// All four modes, in the order the paper's figures sweep them.
    pub const ALL: [Precision; 4] = [
        Precision::Double,
        Precision::Single,
        Precision::Half,
        Precision::Mixed,
    ];

    /// Bytes per element as stored in memory and sent over the network.
    pub const fn storage_bytes(self) -> usize {
        match self {
            Precision::Double => 8,
            Precision::Single => 4,
            Precision::Half | Precision::Mixed => 2,
        }
    }

    /// Bytes per element inside the FMA datapath.
    pub const fn compute_bytes(self) -> usize {
        match self {
            Precision::Double => 8,
            Precision::Single | Precision::Mixed => 4,
            Precision::Half => 2,
        }
    }

    /// Bytes per packed sparse-matrix element.
    ///
    /// Half/mixed pack `(u16 index, f16 length)` into 4 bytes so each
    /// 32-thread warp reads a full 128-byte cache line (§III-C2). Single
    /// uses `(u16, f32)` padded to 8; double `(u16, f64)` padded to 16 —
    /// matching the footprint accounting in Table III.
    pub const fn matrix_element_bytes(self) -> usize {
        match self {
            Precision::Double => 16,
            Precision::Single => 8,
            Precision::Half | Precision::Mixed => 4,
        }
    }

    /// Whether values must pass through half-precision quantization
    /// (and therefore need adaptive normalization).
    pub const fn quantizes_to_half(self) -> bool {
        matches!(self, Precision::Half | Precision::Mixed)
    }

    /// The memory-footprint shrink factor relative to double precision;
    /// Table III uses this to trade data partitioning for batch parallelism
    /// (double 1×, single 2×, mixed 4× batch nodes).
    pub const fn footprint_shrink_vs_double(self) -> usize {
        8 / self.storage_bytes()
    }

    /// Short lowercase label used in harness output.
    pub const fn label(self) -> &'static str {
        match self {
            Precision::Double => "double",
            Precision::Single => "single",
            Precision::Half => "half",
            Precision::Mixed => "mixed",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown precision name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrecisionError(String);

impl fmt::Display for ParsePrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown precision {:?}; expected double|single|half|mixed",
            self.0
        )
    }
}

impl std::error::Error for ParsePrecisionError {}

impl FromStr for Precision {
    type Err = ParsePrecisionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "double" | "f64" | "fp64" => Ok(Precision::Double),
            "single" | "f32" | "fp32" => Ok(Precision::Single),
            "half" | "f16" | "fp16" => Ok(Precision::Half),
            "mixed" => Ok(Precision::Mixed),
            other => Err(ParsePrecisionError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_and_compute_bytes() {
        assert_eq!(Precision::Double.storage_bytes(), 8);
        assert_eq!(Precision::Single.storage_bytes(), 4);
        assert_eq!(Precision::Half.storage_bytes(), 2);
        assert_eq!(Precision::Mixed.storage_bytes(), 2);
        assert_eq!(Precision::Mixed.compute_bytes(), 4);
        assert_eq!(Precision::Half.compute_bytes(), 2);
    }

    #[test]
    fn footprint_shrink_drives_partitioning() {
        // Table III: double 1×(4×6), single 2×(2×6), mixed 4×(1×6).
        assert_eq!(Precision::Double.footprint_shrink_vs_double(), 1);
        assert_eq!(Precision::Single.footprint_shrink_vs_double(), 2);
        assert_eq!(Precision::Mixed.footprint_shrink_vs_double(), 4);
    }

    #[test]
    fn packed_element_fills_cache_line() {
        // 32 threads/warp × 4 bytes = 128-byte cache line (§III-C2).
        assert_eq!(32 * Precision::Mixed.matrix_element_bytes(), 128);
    }

    #[test]
    fn parse_roundtrip() {
        for p in Precision::ALL {
            assert_eq!(p.label().parse::<Precision>().unwrap(), p);
        }
        assert_eq!("FP16".parse::<Precision>().unwrap(), Precision::Half);
        assert!("quad".parse::<Precision>().is_err());
    }

    #[test]
    fn only_half_family_quantizes() {
        assert!(!Precision::Double.quantizes_to_half());
        assert!(!Precision::Single.quantizes_to_half());
        assert!(Precision::Half.quantizes_to_half());
        assert!(Precision::Mixed.quantizes_to_half());
    }
}
