//! The storage-scalar abstraction the SpMM kernels are generic over.

use crate::f16::F16;

/// A scalar type usable as *storage* in the reconstruction pipeline.
///
/// The paper's kernel (Listing 1) reads `half` from memory, converts to
/// `float` for the FMA, and converts back on store. Making the kernels
/// generic over `StorageScalar` lets one implementation serve all four
/// precision modes: the accumulator type is chosen separately by the
/// precision policy.
pub trait StorageScalar: Copy + Send + Sync + 'static {
    /// Bytes occupied in memory and on the wire.
    const BYTES: usize;
    /// Short name for diagnostics.
    const NAME: &'static str;

    /// Rounds an `f32` into this storage format (`__float2half` analog).
    fn from_f32(x: f32) -> Self;
    /// Widens to `f32` for arithmetic (`__half2float` analog).
    fn to_f32(self) -> f32;
    /// Rounds an `f64` into this storage format.
    fn from_f64(x: f64) -> Self;
    /// Widens to `f64`.
    fn to_f64(self) -> f64;
    /// The additive identity.
    fn zero() -> Self;
}

impl StorageScalar for f64 {
    const BYTES: usize = 8;
    const NAME: &'static str = "f64";

    #[inline]
    fn from_f32(x: f32) -> Self {
        x as f64
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn zero() -> Self {
        0.0
    }
}

impl StorageScalar for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    #[inline]
    fn from_f32(x: f32) -> Self {
        x
    }
    #[inline]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn zero() -> Self {
        0.0
    }
}

impl StorageScalar for F16 {
    const BYTES: usize = 2;
    const NAME: &'static str = "f16";

    #[inline]
    fn from_f32(x: f32) -> Self {
        F16::from_f32(x)
    }
    #[inline]
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline]
    fn zero() -> Self {
        F16::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error<S: StorageScalar>(x: f32) -> f32 {
        (S::from_f32(x).to_f32() - x).abs()
    }

    #[test]
    fn byte_sizes_match_declarations() {
        assert_eq!(std::mem::size_of::<f64>(), <f64 as StorageScalar>::BYTES);
        assert_eq!(std::mem::size_of::<f32>(), <f32 as StorageScalar>::BYTES);
        assert_eq!(std::mem::size_of::<F16>(), <F16 as StorageScalar>::BYTES);
    }

    #[test]
    fn wider_storage_is_at_least_as_accurate() {
        for &x in &[0.1f32, 0.77321, 1234.567, 1e-4] {
            assert!(roundtrip_error::<f64>(x) <= roundtrip_error::<f32>(x));
            assert!(roundtrip_error::<f32>(x) <= roundtrip_error::<F16>(x));
        }
    }

    #[test]
    fn zero_is_additive_identity() {
        assert_eq!(<F16 as StorageScalar>::zero().to_f32(), 0.0);
        assert_eq!(<f32 as StorageScalar>::zero(), 0.0);
        assert_eq!(<f64 as StorageScalar>::zero(), 0.0);
    }
}
