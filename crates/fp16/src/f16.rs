//! Bit-exact software IEEE 754 binary16.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An IEEE 754 binary16 ("half precision") floating-point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
/// Conversions use round-to-nearest-even, matching the CUDA `__float2half`
/// intrinsic used in the paper's kernels, so convergence results obtained
/// with this type are faithful to the GPU implementation.
///
/// Arithmetic operators convert to `f32`, operate, and round back — the
/// same semantics as promoting `__half` operands on pre-Volta hardware and
/// the exact behaviour of the paper's mixed-precision kernel, which performs
/// FMAs in `f32` and stores results in half (Listing 1, lines 25–36).
///
/// ```
/// use xct_fp16::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);              // exactly representable
/// assert_eq!(F16::from_f32(65519.0), F16::MAX); // rounds to max finite
/// assert!(F16::from_f32(1e6).is_infinite());    // overflow saturates
/// assert_eq!(F16::from_f32(1e-9).to_f32(), 0.0); // underflow flushes
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct F16(u16);

const EXP_MASK: u16 = 0x7c00;
const MANT_MASK: u16 = 0x03ff;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xbc00);
    /// Largest finite value: 65504.
    pub const MAX: F16 = F16(0x7bff);
    /// Most negative finite value: −65504.
    pub const MIN: F16 = F16(0xfbff);
    /// Smallest positive *normal* value: 2⁻¹⁴ ≈ 6.1035e-5.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value: 2⁻²⁴ ≈ 5.9605e-8.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon: 2⁻¹⁰.
    pub const EPSILON: F16 = F16(0x1400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7e00);

    /// Constructs a half from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to half precision with round-to-nearest-even.
    #[inline]
    pub const fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x.to_bits()))
    }

    /// Converts an `f64` to half precision with round-to-nearest-even.
    ///
    /// This is a *single* rounding step directly from the f64 mantissa —
    /// not a double rounding through `f32` — so results are correctly
    /// rounded for all inputs.
    #[inline]
    pub const fn from_f64(x: f64) -> Self {
        F16(f64_to_f16_bits(x.to_bits()))
    }

    /// Widens to `f32`. Exact: every half value is representable in `f32`.
    #[inline]
    pub const fn to_f32(self) -> f32 {
        f32::from_bits(f16_to_f32_bits(self.0))
    }

    /// Widens to `f64`. Exact.
    #[inline]
    pub const fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` if this value is NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & MANT_MASK != 0
    }

    /// `true` if this value is +∞ or −∞.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 & EXP_MASK == EXP_MASK && self.0 & MANT_MASK == 0
    }

    /// `true` if this value is neither NaN nor infinite.
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.0 & EXP_MASK != EXP_MASK
    }

    /// `true` for subnormal values (nonzero, exponent field zero).
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        self.0 & EXP_MASK == 0 && self.0 & MANT_MASK != 0
    }

    /// `true` if the sign bit is set (including −0.0 and NaNs with sign).
    #[inline]
    pub const fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Returns the minimum of two values, propagating non-NaN operands
    /// like `f32::min`.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        F16::from_f32(self.to_f32().min(other.to_f32()))
    }

    /// Returns the maximum of two values, propagating non-NaN operands
    /// like `f32::max`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        F16::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// IEEE 754 totalOrder predicate, mirroring `f32::total_cmp`.
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        let mut l = self.0 as i16;
        let mut r = other.0 as i16;
        // Flip the ordering of negative values (sign-magnitude to
        // two's-complement trick, same as std's f32::total_cmp).
        l ^= (((l >> 15) as u16) >> 1) as i16;
        r ^= (((r >> 15) as u16) >> 1) as i16;
        l.cmp(&r)
    }
}

/// Converts raw `f32` bits to raw half bits, round-to-nearest-even.
const fn f32_to_f16_bits(x: u32) -> u16 {
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp = ((x >> 23) & 0xff) as i32;
    let mant = x & 0x007f_ffff;

    if exp == 0xff {
        if mant == 0 {
            return sign | 0x7c00; // infinity
        }
        // NaN: keep top payload bits, force quiet bit so payload-less
        // signaling NaNs stay NaN.
        return sign | 0x7e00 | ((mant >> 13) as u16);
    }

    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow to infinity
    }
    if unbiased >= -14 {
        // Normal half-precision result (modulo rounding carry).
        let exp16 = (unbiased + 15) as u16;
        let mant16 = (mant >> 13) as u16;
        let round = mant & 0x1fff;
        let bits = sign | (exp16 << 10) | mant16;
        // Round to nearest even; a carry out of the mantissa correctly
        // increments the exponent because the encoding is monotone.
        if round > 0x1000 || (round == 0x1000 && (mant16 & 1) == 1) {
            return bits.wrapping_add(1);
        }
        return bits;
    }
    if unbiased >= -25 {
        // Subnormal half (or rounds up into the smallest normal/zero).
        let full = mant | 0x0080_0000; // restore implicit leading one
        let shift = (13 - 14 - unbiased) as u32; // in 14..=24
        let mant16 = (full >> shift) as u16;
        let halfway = 1u32 << (shift - 1);
        let round = full & ((1u32 << shift) - 1);
        let bits = sign | mant16;
        if round > halfway || (round == halfway && (mant16 & 1) == 1) {
            return bits.wrapping_add(1);
        }
        return bits;
    }
    sign // underflow to signed zero
}

/// Converts raw `f64` bits to raw half bits, round-to-nearest-even,
/// in a single rounding step.
const fn f64_to_f16_bits(x: u64) -> u16 {
    let sign = ((x >> 48) & 0x8000) as u16;
    let exp = ((x >> 52) & 0x7ff) as i32;
    let mant = x & 0x000f_ffff_ffff_ffff;

    if exp == 0x7ff {
        if mant == 0 {
            return sign | 0x7c00;
        }
        return sign | 0x7e00 | ((mant >> 42) as u16);
    }

    let unbiased = exp - 1023;
    if unbiased > 15 {
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        let exp16 = (unbiased + 15) as u16;
        let mant16 = (mant >> 42) as u16;
        let halfway = 1u64 << 41;
        let round = mant & ((1u64 << 42) - 1);
        let bits = sign | (exp16 << 10) | mant16;
        if round > halfway || (round == halfway && (mant16 & 1) == 1) {
            return bits.wrapping_add(1);
        }
        return bits;
    }
    if unbiased >= -25 {
        let full = mant | (1u64 << 52);
        let shift = (42 - 14 - unbiased) as u32; // in 43..=53
        let mant16 = (full >> shift) as u16;
        let halfway = 1u64 << (shift - 1);
        let round = full & ((1u64 << shift) - 1);
        let bits = sign | mant16;
        if round > halfway || (round == halfway && (mant16 & 1) == 1) {
            return bits.wrapping_add(1);
        }
        return bits;
    }
    // Anything below the halfway point of the smallest subnormal is zero,
    // but exactly 2^-25 ties to even (zero); handled above for
    // unbiased == -25. Smaller magnitudes always truncate to zero.
    sign
}

/// Converts raw half bits to raw `f32` bits (exact widening).
const fn f16_to_f32_bits(h: u16) -> u32 {
    let sign = ((h & SIGN_MASK) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & MANT_MASK) as u32;

    if exp == 0 {
        if mant == 0 {
            return sign; // signed zero
        }
        // Subnormal: renormalize into f32's larger exponent range.
        let mut e = 1i32;
        let mut m = mant;
        while m & 0x0400 == 0 {
            m <<= 1;
            e -= 1;
        }
        let exp32 = (e - 15 + 127) as u32;
        return sign | (exp32 << 23) | ((m & MANT_MASK as u32) << 13);
    }
    if exp == 0x1f {
        // Inf / NaN: widen payload.
        return sign | 0x7f80_0000 | (mant << 13);
    }
    sign | ((exp + 127 - 15) << 23) | (mant << 13)
}

impl From<f32> for F16 {
    #[inline]
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<f64> for F16 {
    #[inline]
    fn from(x: f64) -> Self {
        F16::from_f64(x)
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    #[inline]
    fn from(x: F16) -> Self {
        x.to_f64()
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            #[inline]
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, +);
impl_binop!(Sub, sub, SubAssign, sub_assign, -);
impl_binop!(Mul, mul, MulAssign, mul_assign, *);
impl_binop!(Div, div, DivAssign, div_assign, /);

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl PartialOrd for F16 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NAN.is_nan());
    }

    #[test]
    fn roundtrip_exact_values() {
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
                assert_eq!(
                    F16::from_f64(h.to_f64()).to_bits(),
                    bits,
                    "bits {bits:#06x}"
                );
            }
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(!F16::from_f32(1e6).is_sign_negative());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_sign_negative());
        assert!(F16::from_f32(f32::INFINITY).is_infinite());
        // 65520 is the rounding boundary: ties-to-even sends it to inf.
        assert!(F16::from_f32(65520.0).is_infinite());
        assert_eq!(F16::from_f32(65519.0).to_f32(), 65504.0);
    }

    #[test]
    fn underflow_flushes_to_zero() {
        assert_eq!(F16::from_f32(1e-9).to_bits(), 0);
        assert_eq!(F16::from_f32(-1e-9).to_bits(), SIGN_MASK);
        // Half of the smallest subnormal ties to even (zero)...
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_bits(), 0);
        // ...but anything above it rounds up to the smallest subnormal.
        let just_above = f32::from_bits(2.0f32.powi(-25).to_bits() + 1);
        assert_eq!(F16::from_f32(just_above), F16::MIN_POSITIVE_SUBNORMAL);
    }

    #[test]
    fn round_to_nearest_even_at_mantissa_boundary() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: rounds to 1 (even).
        assert_eq!(F16::from_f32(1.0 + 2.0f32.powi(-11)), F16::ONE);
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds up (even).
        let expected = F16::from_bits(F16::ONE.to_bits() + 2);
        assert_eq!(F16::from_f32(1.0 + 3.0 * 2.0f32.powi(-11)), expected);
        // Slightly above halfway always rounds up.
        let up = F16::from_bits(F16::ONE.to_bits() + 1);
        assert_eq!(F16::from_f32(1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20)), up);
    }

    #[test]
    fn f64_conversion_is_single_rounding() {
        // This value double-rounds incorrectly if converted via f32:
        // x = 1 + 2^-11 + 2^-40 rounds f64→f32 to exactly 1 + 2^-11
        // (a tie), which then ties-to-even down to 1.0 in half. Direct
        // conversion sees the 2^-40 bit and must round *up*.
        let x = 1.0f64 + 2.0f64.powi(-11) + 2.0f64.powi(-40);
        let direct = F16::from_f64(x);
        assert_eq!(direct.to_bits(), F16::ONE.to_bits() + 1);
    }

    #[test]
    fn nan_propagates_through_conversion() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f64(f64::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
    }

    #[test]
    fn subnormals_roundtrip_and_compare() {
        let tiny = F16::MIN_POSITIVE_SUBNORMAL;
        assert!(tiny.is_subnormal());
        assert!(tiny > F16::ZERO);
        assert!(tiny < F16::MIN_POSITIVE);
        let almost_normal = F16::from_bits(0x03ff);
        assert!(almost_normal.is_subnormal());
        assert!(almost_normal < F16::MIN_POSITIVE);
    }

    #[test]
    fn arithmetic_matches_f32_then_round() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((b / a).to_f32(), 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.to_f32(), 3.75);
    }

    #[test]
    fn neg_flips_sign_bit_only() {
        assert_eq!((-F16::ONE).to_f32(), -1.0);
        assert_eq!((-F16::ZERO).to_bits(), SIGN_MASK);
        assert!((-F16::NAN).is_nan());
    }

    #[test]
    fn total_cmp_orders_all_values() {
        let vals = [
            F16::NEG_INFINITY,
            F16::MIN,
            F16::NEG_ONE,
            F16::NEG_ZERO,
            F16::ZERO,
            F16::MIN_POSITIVE_SUBNORMAL,
            F16::ONE,
            F16::MAX,
            F16::INFINITY,
        ];
        for w in vals.windows(2) {
            assert_eq!(
                w[0].total_cmp(&w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
        assert_eq!(F16::NAN.total_cmp(&F16::NAN), Ordering::Equal);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", F16::from_f32(0.5)), "0.5");
        assert_eq!(format!("{:?}", F16::from_f32(0.5)), "0.5f16");
    }

    #[test]
    fn quantization_step_matches_paper_expectation() {
        // Around 1000 the half-precision ULP is 0.5: values quantize to
        // multiples of 0.5 — the "lower quantization" issue §III-C handles
        // by normalizing into a better range.
        let x = F16::from_f32(1000.3);
        assert_eq!(x.to_f32(), 1000.5);
        let y = F16::from_f32(1000.2);
        assert_eq!(y.to_f32(), 1000.0);
    }
}
