//! Software IEEE 754 binary16 ("half") arithmetic and the adaptive
//! normalization scheme of Petascale XCT (Hidayetoglu et al., SC20, §III-C).
//!
//! The paper stores and communicates data in half precision while performing
//! all fused multiply-adds in single precision (`__half2float` /
//! `__float2half` in CUDA). This crate provides:
//!
//! * [`F16`] — a bit-exact software half-precision type with
//!   round-to-nearest-even conversions from/to `f32` and `f64`,
//! * [`StorageScalar`] — the abstraction the SpMM kernels are generic over,
//!   so the same kernel code runs in double, single, or half storage,
//! * [`Precision`] — the four precision modes evaluated in the paper
//!   (double, single, half, mixed),
//! * [`AdaptiveNormalizer`] — per-iteration max-norm renormalization that
//!   prevents half-precision overflow while minimizing underflow (§III-C1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod f16;
mod normalize;
mod precision;
mod storage;

pub use f16::F16;
pub use normalize::{max_abs, AdaptiveNormalizer, Normalized, HALF_RELATIVE_EPS};
pub use precision::Precision;
pub use storage::StorageScalar;
