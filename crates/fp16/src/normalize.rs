//! Adaptive normalization (paper §III-C1).
//!
//! Half precision has a narrow dynamic range (max 65504, smallest normal
//! 6.1e-5). The paper avoids overflow and minimizes underflow by scaling the
//! evolving iterate by a factor derived from its max-norm before each
//! half-precision type cast, and undoing the scaling after the kernel:
//!
//! > "The (de)normalization factor is adaptively changed in each iteration
//! > with respect to the max-norm of the evolving input vector to prevent
//! > overflows while minimizing underflows."

use crate::f16::F16;

/// Returns the max-norm (largest absolute value) of a slice, ignoring NaNs.
///
/// NaNs are skipped rather than propagated because a single corrupted
/// detector pixel must not disable normalization for the whole iterate.
pub fn max_abs(data: &[f32]) -> f32 {
    data.iter().fold(0.0f32, |acc, &x| {
        let a = x.abs();
        if a > acc {
            a
        } else {
            acc
        }
    })
}

/// A vector that has been scaled into half-precision-safe range together
/// with the factor needed to undo the scaling.
#[derive(Debug, Clone)]
pub struct Normalized {
    /// The scale that was *applied*; multiply by `1.0 / factor` to undo.
    pub factor: f32,
    /// The scaled values, quantized to half precision.
    pub data: Vec<F16>,
}

/// Computes per-iteration normalization factors from the max-norm of the
/// evolving iterate (paper §III-C1).
///
/// The target is chosen so the largest magnitude maps to `headroom_target`,
/// leaving multiplicative headroom below 65504 for the partial-sum
/// reductions performed after communication. The default headroom target of
/// `256.0` tolerates ≈256-way growth during reduction before overflow.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveNormalizer {
    headroom_target: f32,
}

impl Default for AdaptiveNormalizer {
    fn default() -> Self {
        AdaptiveNormalizer {
            headroom_target: 256.0,
        }
    }
}

impl AdaptiveNormalizer {
    /// Creates a normalizer mapping the max-norm to `headroom_target`.
    ///
    /// # Panics
    /// Panics if the target is not a finite positive number within the
    /// half-precision normal range.
    pub fn new(headroom_target: f32) -> Self {
        assert!(
            headroom_target.is_finite()
                && headroom_target >= F16::MIN_POSITIVE.to_f32()
                && headroom_target <= F16::MAX.to_f32(),
            "headroom target {headroom_target} outside half-precision normal range"
        );
        AdaptiveNormalizer { headroom_target }
    }

    /// Returns the scale factor for a vector with the given max-norm.
    ///
    /// A zero (or denormal-small) max-norm yields factor 1.0: the vector is
    /// all zeros (or effectively so) and needs no scaling.
    pub fn factor_for(&self, max_norm: f32) -> f32 {
        if !max_norm.is_finite() || max_norm < f32::MIN_POSITIVE {
            1.0
        } else {
            self.headroom_target / max_norm
        }
    }

    /// Scales `data` into half-precision range and quantizes.
    pub fn normalize(&self, data: &[f32]) -> Normalized {
        let factor = self.factor_for(max_abs(data));
        let quantized = data.iter().map(|&x| F16::from_f32(x * factor)).collect();
        Normalized {
            factor,
            data: quantized,
        }
    }

    /// [`normalize`](Self::normalize) into a caller-owned buffer, for hot
    /// paths that quantize every iteration and must not allocate. Returns
    /// the applied factor.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn normalize_into(&self, data: &[f32], out: &mut [F16]) -> f32 {
        assert_eq!(data.len(), out.len(), "normalize length mismatch");
        let factor = self.factor_for(max_abs(data));
        for (q, &x) in out.iter_mut().zip(data) {
            *q = F16::from_f32(x * factor);
        }
        factor
    }

    /// Undoes a previous [`normalize`](Self::normalize), widening to `f32`.
    pub fn denormalize(&self, normalized: &Normalized) -> Vec<f32> {
        let inv = 1.0 / normalized.factor;
        normalized.data.iter().map(|h| h.to_f32() * inv).collect()
    }

    /// [`denormalize`](Self::denormalize) into a caller-owned buffer — the
    /// allocation-free counterpart of [`normalize_into`](Self::normalize_into).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn denormalize_into(&self, data: &[F16], factor: f32, out: &mut [f32]) {
        assert_eq!(data.len(), out.len(), "denormalize length mismatch");
        let inv = 1.0 / factor;
        for (o, h) in out.iter_mut().zip(data) {
            *o = h.to_f32() * inv;
        }
    }
}

/// Relative quantization error bound for one half-precision roundtrip of a
/// *normalized* value: half an ulp at 10 mantissa bits.
pub const HALF_RELATIVE_EPS: f32 = 4.8828125e-4; // 2^-11

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_basic() {
        assert_eq!(max_abs(&[]), 0.0);
        assert_eq!(max_abs(&[1.0, -3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[0.0, -0.0]), 0.0);
    }

    #[test]
    fn max_abs_ignores_nan() {
        assert_eq!(max_abs(&[1.0, f32::NAN, -2.0]), 2.0);
    }

    #[test]
    fn normalize_roundtrip_within_half_eps() {
        let norm = AdaptiveNormalizer::default();
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 1e-7).collect();
        let n = norm.normalize(&data);
        let back = norm.denormalize(&n);
        for (orig, rec) in data.iter().zip(&back) {
            let tol = orig.abs().max(1e-12) * 2.0 * HALF_RELATIVE_EPS;
            assert!((orig - rec).abs() <= tol, "orig {orig} rec {rec} tol {tol}");
        }
    }

    #[test]
    fn tiny_values_survive_normalization() {
        // Without normalization these underflow half precision entirely.
        let data = [1e-9f32, -2e-9, 3e-9];
        assert_eq!(F16::from_f32(data[0]).to_f32(), 0.0);
        let norm = AdaptiveNormalizer::default();
        let n = norm.normalize(&data);
        let back = norm.denormalize(&n);
        for (orig, rec) in data.iter().zip(&back) {
            assert!((orig - rec).abs() <= orig.abs() * 2.0 * HALF_RELATIVE_EPS);
        }
    }

    #[test]
    fn huge_values_survive_normalization() {
        // Without normalization these overflow to infinity.
        let data = [1e9f32, -2e9, 0.5e9];
        assert!(F16::from_f32(data[0]).is_infinite());
        let norm = AdaptiveNormalizer::default();
        let n = norm.normalize(&data);
        assert!(n.data.iter().all(|h| h.is_finite()));
        let back = norm.denormalize(&n);
        for (orig, rec) in data.iter().zip(&back) {
            assert!((orig - rec).abs() <= orig.abs() * 2.0 * HALF_RELATIVE_EPS);
        }
    }

    #[test]
    fn zero_vector_gets_identity_factor() {
        let norm = AdaptiveNormalizer::default();
        assert_eq!(norm.factor_for(0.0), 1.0);
        let n = norm.normalize(&[0.0, 0.0]);
        assert_eq!(n.factor, 1.0);
        assert!(n.data.iter().all(|h| h.to_f32() == 0.0));
    }

    #[test]
    fn factor_tracks_evolving_max_norm() {
        // As the residual shrinks over CG iterations the factor must grow so
        // the data keeps occupying the half-precision sweet spot.
        let norm = AdaptiveNormalizer::default();
        let f1 = norm.factor_for(100.0);
        let f2 = norm.factor_for(1.0);
        let f3 = norm.factor_for(0.01);
        assert!(f1 < f2 && f2 < f3);
        assert_eq!(f2, 256.0);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let norm = AdaptiveNormalizer::default();
        let data: Vec<f32> = (0..257).map(|i| (i as f32 - 128.0) * 3e-6).collect();
        let n = norm.normalize(&data);
        let mut q = vec![F16::ZERO; data.len()];
        let factor = norm.normalize_into(&data, &mut q);
        assert_eq!(factor, n.factor);
        assert_eq!(q, n.data);
        let back = norm.denormalize(&n);
        let mut out = vec![0.0f32; data.len()];
        norm.denormalize_into(&q, factor, &mut out);
        assert_eq!(out, back);
    }

    #[test]
    #[should_panic(expected = "outside half-precision normal range")]
    fn rejects_unrepresentable_target() {
        AdaptiveNormalizer::new(1e6);
    }

    #[test]
    fn headroom_prevents_reduction_overflow() {
        // Simulate a 64-way reduction of same-signed partials: with the
        // default headroom of 256 the normalized sum stays finite.
        let norm = AdaptiveNormalizer::default();
        let partials = vec![7.5f32; 64];
        let n = norm.normalize(&partials);
        let sum: f32 = n.data.iter().map(|h| h.to_f32()).sum();
        assert!(F16::from_f32(sum).is_finite());
    }
}
