//! Roofline kernel-time model with the fusing/register-pressure behaviour
//! of Fig 9.

use crate::machine::{GpuSpec, LinkSpec};
use xct_fp16::Precision;
use xct_spmm::KernelMetrics;

/// Where a kernel configuration lands on the roofline (one point of
/// Fig 9b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// FLOPs per byte of memory traffic.
    pub arithmetic_intensity: f64,
    /// Achieved FLOP/s.
    pub achieved_flops: f64,
    /// Memory-bandwidth-bound ceiling at this intensity.
    pub bandwidth_bound: f64,
    /// Kernel execution time, seconds.
    pub time: f64,
}

/// Register-pressure penalty as a function of the fusing factor
/// (minibatch size), per precision — the empirical cliff of Fig 9a:
///
/// * double and half spill beyond minibatch 18 (8-byte accumulators /
///   inefficient half packing): gradual degradation,
/// * single collapses at 28, mixed at 20 (the paper attributes the sharp
///   drop to an nvcc strategy change under high pressure): hard cliff.
///
/// Returns a multiplicative slowdown ≥ 1.
pub fn spill_penalty(precision: Precision, fusing: usize) -> f64 {
    let (soft_limit, cliff_limit, cliff_factor) = match precision {
        // (gradual spill start, hard cliff, cliff slowdown)
        Precision::Double => (18, usize::MAX, 1.0),
        Precision::Half => (18, usize::MAX, 1.0),
        Precision::Single => (50, 28, 2.2),
        Precision::Mixed => (50, 20, 2.2),
    };
    let mut penalty = 1.0;
    if fusing > soft_limit {
        // Each extra fused slice past the limit spills more registers.
        penalty *= 1.0 + 0.08 * (fusing - soft_limit) as f64;
    }
    if fusing > cliff_limit {
        penalty *= cliff_factor;
    }
    penalty
}

/// Kernel time for the work in `metrics`, staged over `total_stages`
/// shared-memory stages (summed over all blocks), at the given fusing
/// factor and precision.
///
/// `time = max(compute, memory) · spill + ⌈stages/SMs⌉ · sync_overhead` —
/// the classic roofline plus the two overheads §III-B calls out
/// (multi-stage synchronization, register spilling). Blocks execute
/// `sms`-wide, so their stage barriers overlap.
pub fn kernel_time(
    gpu: &GpuSpec,
    metrics: &KernelMetrics,
    total_stages: usize,
    fusing: usize,
    precision: Precision,
) -> f64 {
    let compute = metrics.flops as f64 / gpu.peak_flops(precision);
    let memory = metrics.bytes() as f64 / gpu.mem_bandwidth;
    let sync_rounds = total_stages.div_ceil(gpu.sms.max(1));
    compute.max(memory) * spill_penalty(precision, fusing)
        + sync_rounds as f64 * gpu.stage_sync_overhead
}

/// The full roofline point for plotting Fig 9b.
pub fn roofline_point(
    gpu: &GpuSpec,
    metrics: &KernelMetrics,
    total_stages: usize,
    fusing: usize,
    precision: Precision,
) -> RooflinePoint {
    let time = kernel_time(gpu, metrics, total_stages, fusing, precision);
    let ai = metrics.arithmetic_intensity();
    RooflinePoint {
        arithmetic_intensity: ai,
        achieved_flops: metrics.flops as f64 / time,
        bandwidth_bound: ai * gpu.mem_bandwidth,
        time,
    }
}

/// Transfer time of `bytes` over a link as `messages` messages.
pub fn link_time(link: &LinkSpec, bytes: u64, messages: u64) -> f64 {
    if bytes == 0 && messages == 0 {
        return 0.0;
    }
    messages as f64 * link.latency + bytes as f64 / link.bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(flops: u64, bytes: u64) -> KernelMetrics {
        KernelMetrics {
            flops,
            padded_flops: flops,
            bytes_read: bytes,
            bytes_written: 0,
        }
    }

    #[test]
    fn low_intensity_is_bandwidth_bound() {
        let gpu = GpuSpec::v100();
        // AI = 0.25: far below the f32 ridge (~17).
        let m = metrics(1_000_000, 4_000_000);
        let p = roofline_point(&gpu, &m, 0, 1, Precision::Single);
        assert!(
            (p.achieved_flops - p.bandwidth_bound).abs() / p.bandwidth_bound < 1e-9,
            "should sit on the bandwidth roof"
        );
    }

    #[test]
    fn high_intensity_is_compute_bound() {
        let gpu = GpuSpec::v100();
        let m = metrics(10_000_000_000, 1_000_000);
        let p = roofline_point(&gpu, &m, 0, 1, Precision::Single);
        assert!(p.achieved_flops <= gpu.peak_flops_f32 * 1.0001);
        assert!(p.achieved_flops > 0.99 * gpu.peak_flops_f32);
    }

    #[test]
    fn fig9_shape_rise_peak_drop() {
        // Model a kernel whose AI grows linearly with fusing (register
        // reuse) and verify the throughput curve rises then falls —
        // qualitatively Fig 9a.
        let gpu = GpuSpec::v100();
        let per_slice_flops = 2_000_000u64;
        let matrix_bytes = 8_000_000u64;
        let perf = |fusing: usize| {
            let m = KernelMetrics {
                flops: per_slice_flops * fusing as u64,
                padded_flops: per_slice_flops * fusing as u64,
                bytes_read: matrix_bytes + 100_000 * fusing as u64,
                bytes_written: 50_000 * fusing as u64,
            };
            // Stage count grows with fusing (shared memory pressure).
            let stages = 1 + fusing / 4;
            let t = kernel_time(&gpu, &m, stages, fusing, Precision::Mixed);
            m.flops as f64 / t
        };
        let p1 = perf(1);
        let p16 = perf(16);
        let p40 = perf(40);
        assert!(p16 > 3.0 * p1, "fusing should speed up: {p1} -> {p16}");
        assert!(p40 < p16, "past the cliff perf must drop: {p16} -> {p40}");
    }

    #[test]
    fn spill_penalties_match_paper_thresholds() {
        for p in [Precision::Double, Precision::Half] {
            assert_eq!(spill_penalty(p, 18), 1.0);
            assert!(spill_penalty(p, 24) > 1.0);
            // Gradual, no cliff.
            let g = spill_penalty(p, 30) / spill_penalty(p, 29);
            assert!(g < 1.2);
        }
        assert_eq!(spill_penalty(Precision::Single, 28), 1.0);
        assert!(spill_penalty(Precision::Single, 29) > 2.0);
        assert_eq!(spill_penalty(Precision::Mixed, 20), 1.0);
        assert!(spill_penalty(Precision::Mixed, 21) > 2.0);
    }

    #[test]
    fn stage_sync_overhead_amortizes_across_sms() {
        let gpu = GpuSpec::v100();
        let m = metrics(1000, 1000);
        let t1 = kernel_time(&gpu, &m, 1, 1, Precision::Single);
        // 80 blocks' single stages run concurrently: same cost as one.
        let t80 = kernel_time(&gpu, &m, 80, 1, Precision::Single);
        assert!((t80 - t1).abs() < 1e-15);
        // 800 stages = 10 sequential sync rounds.
        let t800 = kernel_time(&gpu, &m, 800, 1, Precision::Single);
        assert!((t800 - t1 - 9.0 * gpu.stage_sync_overhead).abs() < 1e-12);
    }

    #[test]
    fn link_time_zero_for_no_traffic() {
        let l = LinkSpec {
            bandwidth: 1e9,
            latency: 1e-6,
        };
        assert_eq!(link_time(&l, 0, 0), 0.0);
        assert!(
            link_time(&l, 0, 5) > 0.0,
            "latency still counts per message"
        );
    }
}
