//! Machine model and pipeline timing for paper-scale experiments.
//!
//! The paper's evaluation platform is Summit: 4,608 nodes × 2 sockets ×
//! 3 V100 GPUs, NVLink within sockets, X-bus between sockets, InfiniBand
//! between nodes. None of that hardware is available here, so this crate
//! provides the *machine model* substitute (see DESIGN.md §2): a roofline
//! kernel-time model with the fusing/register-pressure behaviour of
//! Fig 9, an α–β link model with the ~100 : 15 : 1 effective-bandwidth
//! hierarchy of Table IV, and a discrete-event simulation of the
//! minibatch pipeline of Fig 8 (synchronized or overlapped).
//!
//! Inputs are *measured* quantities from the real kernels
//! ([`xct_spmm::KernelMetrics`]) and *exact* communication volumes from
//! the real plans ([`xct_comm`]); only the mapping from work to seconds
//! is modeled. Scaling-law shapes (Figs 10–12) follow from the model;
//! numerical results never do — those come from executing the real code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod pipeline;
mod roofline;

pub use machine::{GpuSpec, LinkSpec, MachineSpec};
pub use pipeline::{simulate_pipeline, MinibatchWork, PipelineMode, TimeBreakdown};
pub use roofline::{kernel_time, link_time, roofline_point, spill_penalty, RooflinePoint};
