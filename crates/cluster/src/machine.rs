//! Hardware specification: GPU and interconnect parameters.

use xct_fp16::Precision;

/// One GPU's performance envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Peak FMA throughput, FLOP/s, double precision.
    pub peak_flops_f64: f64,
    /// Peak FLOP/s, single precision.
    pub peak_flops_f32: f64,
    /// Peak FLOP/s, half precision (non-tensor-core).
    pub peak_flops_f16: f64,
    /// Memory (HBM) bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Shared memory per SM, bytes (stage size of §III-B4).
    pub shared_mem_bytes: usize,
    /// Device memory capacity, bytes (drives the partitioning rule of
    /// §III-A3: partition in x–z only until this fits).
    pub mem_capacity: u64,
    /// Streaming multiprocessors; thread blocks execute `sms`-wide, so
    /// per-stage synchronization overhead amortizes across them.
    pub sms: usize,
    /// Kernel-launch plus per-stage `__syncthreads` overhead, seconds.
    pub stage_sync_overhead: f64,
}

impl GpuSpec {
    /// NVIDIA V100-SXM2-16GB as in Summit nodes (§IV-A1).
    pub fn v100() -> Self {
        GpuSpec {
            peak_flops_f64: 7.8e12,
            peak_flops_f32: 15.7e12,
            peak_flops_f16: 31.4e12,
            mem_bandwidth: 900e9,
            shared_mem_bytes: 96 * 1024,
            mem_capacity: 16 * (1 << 30),
            sms: 80,
            stage_sync_overhead: 2.0e-6,
        }
    }

    /// Peak FLOP/s at the *compute* precision of a mode (mixed computes
    /// in f32, so it gets single-precision peak — exactly why the paper's
    /// mixed mode wins over half only via bandwidth, not ALU rate).
    pub fn peak_flops(&self, precision: Precision) -> f64 {
        match precision.compute_bytes() {
            8 => self.peak_flops_f64,
            4 => self.peak_flops_f32,
            _ => self.peak_flops_f16,
        }
    }
}

/// One interconnect level: α–β model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Per-GPU effective bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Transfer time for `bytes` as one message.
    pub fn time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.latency + bytes as f64 / self.bandwidth
        }
    }
}

/// A full machine: node structure plus per-level links.
///
/// Effective (not theoretical) bandwidths are used, calibrated to the
/// ~100 : 15 : 1 socket : node : global ratio measured in Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Nodes in the allocation.
    pub nodes: usize,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// GPUs per socket.
    pub gpus_per_socket: usize,
    /// The GPU.
    pub gpu: GpuSpec,
    /// Intra-socket link (NVLink; CUDA IPC path).
    pub socket_link: LinkSpec,
    /// Inter-socket link within a node (X-bus; CUDA IPC path).
    pub node_link: LinkSpec,
    /// Inter-node link (InfiniBand; MPI with CPU staging).
    pub global_link: LinkSpec,
    /// Host staging copy bandwidth per GPU (the Memcpy column of
    /// Table IV: global messages stage through pinned CPU buffers).
    pub memcpy_bandwidth: f64,
    /// Parallel-filesystem read bandwidth per node, bytes/s.
    pub io_bandwidth_per_node: f64,
    /// Filesystem saturation cap, bytes/s (I/O stops scaling past this —
    /// the contention visible at ≥1024 nodes in Fig 12b).
    pub io_saturation: f64,
}

impl MachineSpec {
    /// Summit-like machine with `nodes` nodes (§IV-A1, Table IV).
    ///
    /// Effective per-GPU bandwidths derive from Table IV aggregates for
    /// 768 GPUs: socket ≈ 174 TB/s, node ≈ 22 TB/s, global ≈ 1.55 TB/s,
    /// memcpy ≈ 34.9 TB/s.
    pub fn summit(nodes: usize) -> Self {
        assert!(nodes > 0, "machine needs at least one node");
        MachineSpec {
            nodes,
            sockets_per_node: 2,
            gpus_per_socket: 3,
            gpu: GpuSpec::v100(),
            socket_link: LinkSpec {
                bandwidth: 174e12 / 768.0, // ≈ 226 GB/s per GPU
                latency: 5e-6,
            },
            node_link: LinkSpec {
                bandwidth: 22e12 / 768.0, // ≈ 28.6 GB/s per GPU
                latency: 8e-6,
            },
            global_link: LinkSpec {
                bandwidth: 1.55e12 / 768.0, // ≈ 2.0 GB/s per GPU
                latency: 3e-5,
            },
            memcpy_bandwidth: 34.9e12 / 768.0, // ≈ 45 GB/s per GPU
            io_bandwidth_per_node: 2.5e9,
            io_saturation: 2.4e12, // ~2.4 TB/s GPFS ceiling
        }
    }

    /// Total GPUs.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.sockets_per_node * self.gpus_per_socket
    }

    /// Aggregate machine peak at a precision (the denominator of the
    /// paper's "34% of Summit's peak": 4,608 nodes × 6 × 7.8 TF ≈
    /// 215 PF double).
    pub fn aggregate_peak_flops(&self, precision: xct_fp16::Precision) -> f64 {
        self.total_gpus() as f64 * self.gpu.peak_flops(precision)
    }

    /// Time to read `bytes` from the parallel filesystem across all
    /// nodes, including the saturation ceiling.
    pub fn io_time(&self, bytes: u64) -> f64 {
        let bw = (self.io_bandwidth_per_node * self.nodes as f64).min(self.io_saturation);
        bytes as f64 / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_fp16::Precision;

    #[test]
    fn v100_peaks_are_ordered() {
        let g = GpuSpec::v100();
        assert!(g.peak_flops_f16 > g.peak_flops_f32);
        assert!(g.peak_flops_f32 > g.peak_flops_f64);
        assert_eq!(g.peak_flops(Precision::Mixed), g.peak_flops_f32);
        assert_eq!(g.peak_flops(Precision::Half), g.peak_flops_f16);
        assert_eq!(g.peak_flops(Precision::Double), g.peak_flops_f64);
    }

    #[test]
    fn summit_4608_peak_matches_paper_denominator() {
        let m = MachineSpec::summit(4608);
        assert_eq!(m.total_gpus(), 27_648);
        let peak_pf = m.aggregate_peak_flops(Precision::Double) / 1e15;
        // Paper: 65.4 PFLOPS = 34% of peak → peak ≈ 192 PF on the 4,096
        // nodes used; full machine ≈ 215 PF double.
        assert!((210.0..=220.0).contains(&peak_pf), "peak {peak_pf} PF");
    }

    #[test]
    fn bandwidth_hierarchy_ratios_match_table4() {
        let m = MachineSpec::summit(128);
        let socket_over_global = m.socket_link.bandwidth / m.global_link.bandwidth;
        let node_over_global = m.node_link.bandwidth / m.global_link.bandwidth;
        // "the effective bandwidth within each socket is about 100× faster
        // than that among nodes ... among sockets is 15× faster".
        assert!(
            (90.0..=130.0).contains(&socket_over_global),
            "{socket_over_global}"
        );
        assert!(
            (12.0..=18.0).contains(&node_over_global),
            "{node_over_global}"
        );
    }

    #[test]
    fn link_time_is_alpha_beta() {
        let l = LinkSpec {
            bandwidth: 1e9,
            latency: 1e-6,
        };
        assert_eq!(l.time(0), 0.0);
        let t = l.time(1_000_000);
        assert!((t - 1.001e-3).abs() < 1e-9);
    }

    #[test]
    fn io_saturates_at_scale() {
        let small = MachineSpec::summit(128);
        let large = MachineSpec::summit(4096);
        let bytes = 1 << 40; // 1 TiB
        let t_small = small.io_time(bytes);
        let t_large = large.io_time(bytes);
        // More nodes help, but not 32×: the filesystem ceiling binds.
        assert!(t_large < t_small);
        assert!(t_small / t_large < 32.0 / 4.0);
    }
}
