//! Discrete-event simulation of the minibatch pipeline (paper Fig 8,
//! §III-E).
//!
//! Two resources exist per process: the **GPU** (optimized SpMM, local
//! socket/node communication via CUDA IPC, reductions, unpack) and the
//! **NIC** (global MPI communication, with CPU staging memcpys). The
//! paper's overlap strategy runs minibatch *i*'s global communication
//! concurrently with minibatch *i+1*'s local work; projection orders
//! local→global, backprojection global→local.

/// One minibatch's work, in seconds per activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MinibatchWork {
    /// Optimized SpMM kernel time.
    pub kernel: f64,
    /// Socket-level communication (CUDA IPC over NVLink).
    pub socket_comm: f64,
    /// Node-level communication (CUDA IPC over X-bus).
    pub node_comm: f64,
    /// Local reduction kernels.
    pub reduction: f64,
    /// Global MPI communication (InfiniBand).
    pub global_comm: f64,
    /// Host-staging copies bracketing the global communication.
    pub memcpy: f64,
}

impl MinibatchWork {
    /// GPU-resource time (everything except the wire time of global MPI).
    pub fn local(&self) -> f64 {
        self.kernel + self.socket_comm + self.node_comm + self.reduction + self.memcpy
    }

    /// NIC-resource time.
    pub fn global(&self) -> f64 {
        self.global_comm
    }
}

/// Whether minibatches overlap global communication with local work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Every activity strictly sequential (the "*Synchronized" bars of
    /// Fig 10, used to attribute time to activities).
    Synchronized,
    /// Projection order: local work first, then global comm, pipelined
    /// across minibatches.
    OverlappedProjection,
    /// Backprojection order: global comm first, then local work.
    OverlappedBackprojection,
}

/// Per-activity totals plus makespan of one (back)projection pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// SpMM kernel total.
    pub kernel: f64,
    /// Socket-level communication total.
    pub socket_comm: f64,
    /// Node-level communication total.
    pub node_comm: f64,
    /// Local reduction total.
    pub reduction: f64,
    /// Global communication total.
    pub global_comm: f64,
    /// Host staging total.
    pub memcpy: f64,
    /// Time a resource waited on the other (zero when synchronized).
    pub idle: f64,
    /// Wall-clock makespan.
    pub total: f64,
}

impl TimeBreakdown {
    /// Sum of the communication activities (the "Comm." bar of Fig 10).
    pub fn comm_total(&self) -> f64 {
        self.socket_comm + self.node_comm + self.global_comm
    }

    /// Elementwise sum (for accumulating projection + backprojection
    /// passes over CG iterations).
    pub fn accumulate(&mut self, other: &TimeBreakdown) {
        self.kernel += other.kernel;
        self.socket_comm += other.socket_comm;
        self.node_comm += other.node_comm;
        self.reduction += other.reduction;
        self.global_comm += other.global_comm;
        self.memcpy += other.memcpy;
        self.idle += other.idle;
        self.total += other.total;
    }
}

/// Simulates one pass over `minibatches` in the given mode.
pub fn simulate_pipeline(minibatches: &[MinibatchWork], mode: PipelineMode) -> TimeBreakdown {
    let mut out = TimeBreakdown::default();
    for mb in minibatches {
        out.kernel += mb.kernel;
        out.socket_comm += mb.socket_comm;
        out.node_comm += mb.node_comm;
        out.reduction += mb.reduction;
        out.global_comm += mb.global_comm;
        out.memcpy += mb.memcpy;
    }
    let busy_gpu: f64 = minibatches.iter().map(MinibatchWork::local).sum();
    let busy_nic: f64 = minibatches.iter().map(MinibatchWork::global).sum();

    match mode {
        PipelineMode::Synchronized => {
            out.total = busy_gpu + busy_nic;
            out.idle = 0.0;
        }
        PipelineMode::OverlappedProjection => {
            // GPU produces minibatch i (local), NIC ships it (global).
            let mut gpu_t = 0.0f64;
            let mut nic_t = 0.0f64;
            for mb in minibatches {
                gpu_t += mb.local();
                nic_t = gpu_t.max(nic_t) + mb.global();
            }
            out.total = gpu_t.max(nic_t);
            out.idle = 2.0 * out.total - busy_gpu - busy_nic; // summed over both resources
        }
        PipelineMode::OverlappedBackprojection => {
            // NIC delivers minibatch i (global), GPU consumes it (local).
            let mut gpu_t = 0.0f64;
            let mut nic_t = 0.0f64;
            for mb in minibatches {
                nic_t += mb.global();
                gpu_t = nic_t.max(gpu_t) + mb.local();
            }
            out.total = gpu_t.max(nic_t);
            out.idle = 2.0 * out.total - busy_gpu - busy_nic;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(local: f64, global: f64) -> MinibatchWork {
        MinibatchWork {
            kernel: local,
            global_comm: global,
            ..Default::default()
        }
    }

    #[test]
    fn synchronized_is_plain_sum() {
        let mbs = vec![mb(1.0, 2.0), mb(3.0, 4.0)];
        let t = simulate_pipeline(&mbs, PipelineMode::Synchronized);
        assert_eq!(t.total, 10.0);
        assert_eq!(t.idle, 0.0);
        assert_eq!(t.kernel, 4.0);
        assert_eq!(t.global_comm, 6.0);
    }

    #[test]
    fn overlap_hides_the_smaller_resource() {
        // 4 minibatches, local 1s, global 1s: perfect pipeline ≈ n+1
        // instead of 2n.
        let mbs = vec![mb(1.0, 1.0); 4];
        let sync = simulate_pipeline(&mbs, PipelineMode::Synchronized);
        let over = simulate_pipeline(&mbs, PipelineMode::OverlappedProjection);
        assert_eq!(sync.total, 8.0);
        assert_eq!(over.total, 5.0);
        assert!(over.idle > 0.0);
    }

    #[test]
    fn overlap_cannot_beat_the_dominant_resource() {
        // Global dominates (the Charcoal case of §IV-D): overlap saves
        // only the first local block.
        let mbs = vec![mb(0.1, 1.0); 8];
        let over = simulate_pipeline(&mbs, PipelineMode::OverlappedProjection);
        assert!((over.total - (0.1 + 8.0)).abs() < 1e-12);
        // "21% to 29%" style bound: savings ≤ local total.
        let sync = simulate_pipeline(&mbs, PipelineMode::Synchronized);
        assert!(sync.total - over.total <= 0.1 * 8.0 + 1e-12);
    }

    #[test]
    fn backprojection_mirrors_projection() {
        let mbs = vec![mb(1.0, 0.5), mb(0.5, 1.0), mb(0.7, 0.7)];
        let p = simulate_pipeline(&mbs, PipelineMode::OverlappedProjection);
        // Reversing the minibatch order and the direction gives the same
        // makespan (the two pipelines are transposes).
        let rev: Vec<_> = mbs.iter().rev().copied().collect();
        let b = simulate_pipeline(&rev, PipelineMode::OverlappedBackprojection);
        assert!((p.total - b.total).abs() < 1e-12);
    }

    #[test]
    fn single_minibatch_cannot_overlap() {
        let mbs = vec![mb(2.0, 3.0)];
        let sync = simulate_pipeline(&mbs, PipelineMode::Synchronized);
        let over = simulate_pipeline(&mbs, PipelineMode::OverlappedProjection);
        assert_eq!(sync.total, over.total);
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let mut a = simulate_pipeline(&[mb(1.0, 2.0)], PipelineMode::Synchronized);
        let b = simulate_pipeline(&[mb(3.0, 4.0)], PipelineMode::Synchronized);
        a.accumulate(&b);
        assert_eq!(a.total, 10.0);
        assert_eq!(a.kernel, 4.0);
    }

    #[test]
    fn comm_total_includes_all_levels() {
        let w = MinibatchWork {
            kernel: 1.0,
            socket_comm: 0.1,
            node_comm: 0.2,
            reduction: 0.05,
            global_comm: 0.4,
            memcpy: 0.03,
        };
        let t = simulate_pipeline(&[w], PipelineMode::Synchronized);
        assert!((t.comm_total() - 0.7).abs() < 1e-12);
        assert!((t.total - 1.78).abs() < 1e-12);
    }
}
