//! Property tests for the machine model and pipeline simulation.

use proptest::prelude::*;
use xct_cluster::{
    kernel_time, link_time, simulate_pipeline, spill_penalty, GpuSpec, LinkSpec, MinibatchWork,
    PipelineMode,
};
use xct_fp16::Precision;
use xct_spmm::KernelMetrics;

fn work_strategy() -> impl Strategy<Value = MinibatchWork> {
    (
        0.0f64..10.0,
        0.0f64..2.0,
        0.0f64..2.0,
        0.0f64..1.0,
        0.0f64..10.0,
        0.0f64..1.0,
    )
        .prop_map(
            |(kernel, socket, node, red, global, memcpy)| MinibatchWork {
                kernel,
                socket_comm: socket,
                node_comm: node,
                reduction: red,
                global_comm: global,
                memcpy,
            },
        )
}

proptest! {
    /// Overlap never loses to synchronized execution and never beats the
    /// dominant resource — for any minibatch sequence, both directions.
    #[test]
    fn overlap_is_bounded(works in prop::collection::vec(work_strategy(), 1..20)) {
        let sync = simulate_pipeline(&works, PipelineMode::Synchronized);
        for mode in [PipelineMode::OverlappedProjection, PipelineMode::OverlappedBackprojection] {
            let over = simulate_pipeline(&works, mode);
            prop_assert!(over.total <= sync.total + 1e-9,
                "overlap ({}) must not exceed synchronized ({})", over.total, sync.total);
            let busy_gpu: f64 = works.iter().map(MinibatchWork::local).sum();
            let busy_nic: f64 = works.iter().map(MinibatchWork::global).sum();
            prop_assert!(over.total >= busy_gpu.max(busy_nic) - 1e-9,
                "makespan below the dominant resource");
            // Activity totals are mode-independent.
            prop_assert!((over.kernel - sync.kernel).abs() < 1e-9);
            prop_assert!((over.global_comm - sync.global_comm).abs() < 1e-9);
        }
    }

    /// Spill penalty is ≥ 1 and non-decreasing in the fusing factor.
    #[test]
    fn spill_penalty_monotone(fusing in 1usize..64) {
        for p in Precision::ALL {
            let a = spill_penalty(p, fusing);
            let b = spill_penalty(p, fusing + 1);
            prop_assert!(a >= 1.0);
            prop_assert!(b >= a - 1e-12, "{p}: penalty must not decrease ({a} -> {b})");
        }
    }

    /// Kernel time is monotone in both flops and bytes.
    #[test]
    fn kernel_time_monotone(
        flops in 1u64..1_000_000_000_000,
        bytes in 1u64..1_000_000_000_000,
        extra in 1u64..1_000_000_000,
    ) {
        let gpu = GpuSpec::v100();
        let base = KernelMetrics { flops, padded_flops: flops, bytes_read: bytes, bytes_written: 0 };
        let more_flops = KernelMetrics { flops: flops + extra, ..base };
        let more_bytes = KernelMetrics { bytes_read: bytes + extra, ..base };
        let t0 = kernel_time(&gpu, &base, 0, 1, Precision::Single);
        prop_assert!(kernel_time(&gpu, &more_flops, 0, 1, Precision::Single) >= t0);
        prop_assert!(kernel_time(&gpu, &more_bytes, 0, 1, Precision::Single) >= t0);
    }

    /// α–β link time: superadditive message splitting (one message is
    /// never slower than two carrying the same bytes).
    #[test]
    fn message_splitting_costs_latency(bytes in 2u64..1_000_000_000, split in 1u64..100) {
        let link = LinkSpec { bandwidth: 12.5e9, latency: 1.5e-6 };
        let one = link_time(&link, bytes, 1);
        let many = link_time(&link, bytes, 1 + split);
        prop_assert!(many >= one);
        prop_assert!((many - one - split as f64 * link.latency).abs() < 1e-12);
    }

    /// Precision ordering of per-element cost: half storage never moves
    /// more bytes than single, which never moves more than double —
    /// therefore bandwidth-bound kernel time orders the same way.
    #[test]
    fn precision_orders_bandwidth_bound_time(elements in 1u64..1_000_000_000) {
        let gpu = GpuSpec::v100();
        let time_for = |bytes_per: u64| {
            let m = KernelMetrics {
                flops: 2 * elements,
                padded_flops: 2 * elements,
                bytes_read: elements * bytes_per,
                bytes_written: 0,
            };
            // Bandwidth-bound regime for all three (AI << ridge).
            kernel_time(&gpu, &m, 0, 1, Precision::Single)
        };
        prop_assert!(time_for(2) <= time_for(4));
        prop_assert!(time_for(4) <= time_for(8));
    }
}
