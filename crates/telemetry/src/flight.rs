//! The flight recorder: a fixed-capacity per-track ring of recent
//! spans, events, and metric updates, dumped as `petaxct-flightrec-v1`
//! JSON when a run dies.
//!
//! Post-hoc telemetry needs the run to finish; the flight recorder
//! exists for runs that do not. Every enabled track keeps the last
//! [`FLIGHT_CAPACITY`] records in a preallocated ring — recording is a
//! short uncontended lock plus a fixed-size store, never an allocation —
//! and a panic hook or error path can serialize the merged rings into a
//! post-mortem that shows what each rank was doing in its final
//! moments. Disabled telemetry records nothing and dumps nothing.

use crate::{Json, Telemetry};
use std::path::PathBuf;

/// Records retained per track. Sized so a dump spans several solver
/// iterations of comm/solver activity per rank while the whole recorder
/// stays a few tens of kilobytes per track.
pub const FLIGHT_CAPACITY: usize = 256;

/// What a flight record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlightKind {
    /// A span opened; `code` is the phase name.
    SpanBegin,
    /// A span closed; `code` is the phase name, `a` its duration in ns.
    SpanEnd,
    /// A scalar event; `code` is the event name, `a` the value's f64
    /// bits.
    Event,
    /// A gauge write; `code` is the metric name, `a` the value's f64
    /// bits.
    Gauge,
    /// A counter increment; `code` is the metric name, `a` the delta.
    Counter,
    /// A send→recv match observed by the receiver; `a` is the sender's
    /// track, `b` the payload bytes.
    Match,
    /// A free-form marker from an instrumentation site; `a`/`b` are
    /// site-defined.
    Point,
}

impl FlightKind {
    /// Stable name used in the dump schema.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::SpanBegin => "span_begin",
            FlightKind::SpanEnd => "span_end",
            FlightKind::Event => "event",
            FlightKind::Gauge => "gauge",
            FlightKind::Counter => "counter",
            FlightKind::Match => "match",
            FlightKind::Point => "point",
        }
    }
}

/// One fixed-size flight record. `&'static str` codes keep recording
/// allocation-free; the interpretation of `a`/`b` depends on `kind`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightEvent {
    /// Collector clock time of the record.
    pub at_ns: u64,
    /// Track (rank) that recorded it.
    pub track: u32,
    /// Record type.
    pub kind: FlightKind,
    /// Phase, metric, or site name.
    pub code: &'static str,
    /// First payload word (see [`FlightKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// A preallocated overwrite-oldest ring of [`FlightEvent`]s.
#[derive(Debug)]
pub(crate) struct FlightRing {
    buf: Vec<FlightEvent>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    /// Records ever pushed (so dumps can report how many were dropped).
    total: u64,
}

impl FlightRing {
    pub(crate) fn new() -> Self {
        FlightRing {
            buf: Vec::with_capacity(FLIGHT_CAPACITY),
            next: 0,
            total: 0,
        }
    }

    /// Pushes a record, overwriting the oldest once full. Never
    /// allocates: capacity is reserved up front.
    pub(crate) fn push(&mut self, event: FlightEvent) {
        if self.buf.len() < FLIGHT_CAPACITY {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % FLIGHT_CAPACITY;
        }
        self.total += 1;
    }

    /// Records ever pushed, including overwritten ones.
    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    /// Retained records, oldest first.
    pub(crate) fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

/// Serializes merged flight events into the `petaxct-flightrec-v1`
/// document. `dropped` is the number of records lost to ring overwrite
/// across all tracks, so readers know whether the window is complete.
/// Gauge and event records carry an f64 as raw bits in `a`; the dump
/// decodes them to a `value` field so JSON numbers stay exact.
pub fn flight_json(reason: &str, at_ns: u64, dropped: u64, events: &[FlightEvent]) -> Json {
    Json::object(vec![
        ("schema", Json::from("petaxct-flightrec-v1")),
        ("reason", Json::from(reason)),
        ("dumped_at_ns", Json::from(at_ns)),
        ("dropped", Json::from(dropped)),
        (
            "events",
            Json::Arr(
                events
                    .iter()
                    .map(|e| {
                        let mut fields = vec![
                            ("at_ns", Json::from(e.at_ns)),
                            ("track", Json::from(u64::from(e.track))),
                            ("kind", Json::from(e.kind.as_str())),
                            ("code", Json::from(e.code)),
                        ];
                        match e.kind {
                            FlightKind::Gauge | FlightKind::Event => {
                                fields.push(("value", Json::from(f64::from_bits(e.a))));
                            }
                            _ => {
                                fields.push(("a", Json::from(e.a)));
                                fields.push(("b", Json::from(e.b)));
                            }
                        }
                        Json::object(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Chains a panic hook that writes this handle's flight dump to `path`
/// before the previous hook runs. No-op for a disabled handle. The hook
/// is process-global; install it once, from the top of a run.
pub fn install_flight_panic_hook(telemetry: &Telemetry, path: PathBuf) {
    if !telemetry.is_enabled() {
        return;
    }
    let tele = telemetry.clone();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(json) = tele.flight_dump_json(&format!("panic: {info}")) {
            let _ = std::fs::write(&path, json);
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64) -> FlightEvent {
        FlightEvent {
            at_ns,
            track: 0,
            kind: FlightKind::Point,
            code: "test",
            a: at_ns,
            b: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_total() {
        let mut ring = FlightRing::new();
        let n = FLIGHT_CAPACITY as u64 + 10;
        for i in 0..n {
            ring.push(ev(i));
        }
        assert_eq!(ring.total(), n);
        let events = ring.events();
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        assert_eq!(events.first().unwrap().at_ns, 10, "oldest 10 overwritten");
        assert_eq!(events.last().unwrap().at_ns, n - 1);
        // Strictly ordered: the rotation restored push order.
        assert!(events.windows(2).all(|w| w[0].at_ns < w[1].at_ns));
    }

    #[test]
    fn dump_schema_round_trips() {
        let events = [ev(1), ev(2)];
        let json = flight_json("test reason", 99, 0, &events);
        let text = json.to_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("petaxct-flightrec-v1")
        );
        assert_eq!(
            parsed.get("reason").and_then(Json::as_str),
            Some("test reason")
        );
        assert_eq!(
            parsed.get("dumped_at_ns").and_then(Json::as_f64),
            Some(99.0)
        );
        let arr = parsed
            .get("events")
            .and_then(Json::as_array)
            .expect("events");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("kind").and_then(Json::as_str), Some("point"));
        assert_eq!(arr[1].get("at_ns").and_then(Json::as_f64), Some(2.0));
    }
}
