//! The span/event recording layer.
//!
//! A [`Telemetry`] handle is either *disabled* (the default — every call
//! is a branch on `None`, no locking, no allocation) or *enabled*, in
//! which case it records into a shared, thread-safe [`Collector`]. Each
//! handle carries a *track* id (rank, in distributed runs) and its own
//! nesting stack, so spans opened by different rank threads interleave in
//! the collector without corrupting each other's parent links.
//!
//! [`Collector`]: struct@self::Telemetry

use crate::flight::{flight_json, FlightEvent, FlightKind, FlightRing};
use crate::metrics::{MetricId, MetricsSnapshot, TrackMetrics, TrackMetricsSnapshot};
use crate::profile::{CostComponent, ProfileDims, ProfileSlabs, ProfileSnapshot};
use crate::{Clock, MonotonicClock, Phase};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel end time for a span that has not been closed yet.
const OPEN: u64 = u64::MAX;

/// One timed span, closed by the time it appears in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase label.
    pub phase: Phase,
    /// Track (rank) the span was recorded on.
    pub track: u32,
    /// Start time in clock nanoseconds.
    pub start_ns: u64,
    /// End time in clock nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Index into the snapshot's span list of the enclosing span on the
    /// same track, if any.
    pub parent: Option<usize>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One scalar event (e.g. a residual norm) pinned to a point in time.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Event name (e.g. `"cgls.residual"`).
    pub name: &'static str,
    /// Scalar payload.
    pub value: f64,
    /// Track (rank) the event was recorded on.
    pub track: u32,
    /// Timestamp in clock nanoseconds.
    pub at_ns: u64,
}

/// One send→recv match edge between two tracks.
///
/// Recorded by the *receiver* at the instant the runtime matches a
/// message to a posted receive. Together with the per-track span lists
/// these edges define the happens-before DAG consumed by
/// [`crate::CausalAnalysis`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// Track (rank) of the sender.
    pub src_track: u32,
    /// Track (rank) of the receiver that matched the message.
    pub dst_track: u32,
    /// Message tag (the runtime's match key, minus the source rank).
    pub tag: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Sender's clock at send time, in collector nanoseconds.
    pub sent_ns: u64,
    /// Receiver's clock at match time, in collector nanoseconds.
    pub matched_ns: u64,
    /// Simulated wire cost of the message in nanoseconds (0 when no
    /// wire model applies, e.g. intra-node traffic).
    pub wire_ns: u64,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    edges: Vec<EdgeRecord>,
}

/// One handle's always-on storage registered with the collector so
/// snapshots can reach every track's metrics and flight ring.
struct TrackSlab {
    track: u32,
    metrics: Arc<TrackMetrics>,
    flight: Arc<Mutex<FlightRing>>,
}

struct Collector {
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
    /// One entry per handle created via `with_clock`/`fork`, in creation
    /// order. Only touched at fork and snapshot time, never on the
    /// metric hot path.
    slabs: Mutex<Vec<TrackSlab>>,
    /// Cost-profile storage, installed at most once by
    /// [`Telemetry::enable_profile`]. `OnceLock::get` is one atomic
    /// load, so an unprofiled span close costs a single `None` check.
    profile: OnceLock<Arc<ProfileSlabs>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").finish_non_exhaustive()
    }
}

struct TrackHandle {
    collector: Arc<Collector>,
    track: u32,
    /// Currently-open spans on this track, innermost last: the span's
    /// index in the collector plus the nanoseconds its *children* have
    /// accumulated so far, so a closing span can report self time.
    stack: Mutex<Vec<(usize, u64)>>,
    /// This track's metric slab (shared with the collector registry).
    metrics: Arc<TrackMetrics>,
    /// This track's flight-recorder ring (shared with the registry).
    flight: Arc<Mutex<FlightRing>>,
    /// Current fused-slice index for cost-profile attribution. Per
    /// track because pipelined ranks work different slices at once.
    slice_ctx: AtomicU32,
}

impl std::fmt::Debug for TrackHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackHandle")
            .field("track", &self.track)
            .finish_non_exhaustive()
    }
}

/// Locks a collector mutex. Poisoning means another telemetry thread
/// already panicked mid-write; the recording is unrecoverable, so the
/// panic is propagated rather than papered over.
fn locked<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // xct-allow(no-panic): lock poisoning propagates a panic already in flight
    m.lock().unwrap()
}

impl TrackHandle {
    /// Creates a handle for `track` and registers its slab with the
    /// collector. Runs at enable/fork time only.
    fn register(collector: Arc<Collector>, track: u32) -> TrackHandle {
        let metrics = Arc::new(TrackMetrics::new());
        let flight = Arc::new(Mutex::new(FlightRing::new()));
        locked(&collector.slabs).push(TrackSlab {
            track,
            metrics: Arc::clone(&metrics),
            flight: Arc::clone(&flight),
        });
        TrackHandle {
            collector,
            track,
            stack: Mutex::new(Vec::new()),
            metrics,
            flight,
            slice_ctx: AtomicU32::new(0),
        }
    }

    /// Pushes one flight record. Uncontended in practice (one thread per
    /// track) and never allocates: the ring is preallocated.
    fn flight_push(&self, kind: FlightKind, code: &'static str, a: u64, b: u64) {
        let at_ns = self.collector.clock.now_ns();
        locked(&self.flight).push(FlightEvent {
            at_ns,
            track: self.track,
            kind,
            code,
            a,
            b,
        });
    }
}

/// A consistent copy of everything recorded so far.
///
/// Open spans are closed at snapshot time, so `end_ns` is always valid.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// All spans, in the order they were opened.
    pub spans: Vec<SpanRecord>,
    /// All events, in the order they were recorded.
    pub events: Vec<EventRecord>,
    /// All send→recv match edges, in the order they were matched.
    pub edges: Vec<EdgeRecord>,
}

/// A cloneable tracing handle.
///
/// `Telemetry::default()` / [`Telemetry::disabled`] is a no-op handle:
/// [`Telemetry::span`] and [`Telemetry::event`] cost one `None` check and
/// touch no locks and no heap. [`Telemetry::enabled`] records into a
/// collector shared by all clones and forks of the handle.
///
/// *Clones* share the collector **and** the nesting stack (use within one
/// thread of control); [`Telemetry::fork`] shares the collector but starts
/// a fresh stack under a new track id (use one fork per rank thread).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<TrackHandle>>,
}

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A recording handle on track 0, timed by a [`MonotonicClock`].
    pub fn enabled() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A recording handle on track 0 with an injected clock (see
    /// [`crate::ManualClock`] for deterministic tests).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let collector = Arc::new(Collector {
            clock,
            state: Mutex::new(State::default()),
            slabs: Mutex::new(Vec::new()),
            profile: OnceLock::new(),
        });
        Telemetry {
            inner: Some(Arc::new(TrackHandle::register(collector, 0))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This handle's track id (0 when disabled).
    pub fn track(&self) -> u32 {
        self.inner.as_ref().map_or(0, |h| h.track)
    }

    /// A handle on a new track sharing this handle's collector.
    ///
    /// Spans recorded through the fork nest among themselves but never
    /// under spans of the parent handle — exactly what per-rank threads
    /// need. Forking a disabled handle yields a disabled handle.
    pub fn fork(&self, track: u32) -> Telemetry {
        Telemetry {
            inner: self
                .inner
                .as_ref()
                .map(|h| Arc::new(TrackHandle::register(Arc::clone(&h.collector), track))),
        }
    }

    /// Opens a span; it closes (and records its duration) when the
    /// returned guard drops. Guards must drop in LIFO order per handle.
    pub fn span(&self, phase: Phase) -> SpanGuard {
        let Some(handle) = &self.inner else {
            return SpanGuard { inner: None };
        };
        let start_ns = handle.collector.clock.now_ns();
        // Lock order is stack → state everywhere (see SpanGuard::drop).
        let mut stack = locked(&handle.stack);
        let parent = stack.last().map(|&(index, _)| index);
        let index = {
            let mut state = locked(&handle.collector.state);
            let index = state.spans.len();
            state.spans.push(SpanRecord {
                phase,
                track: handle.track,
                start_ns,
                end_ns: OPEN,
                parent,
            });
            index
        };
        stack.push((index, 0));
        drop(stack);
        handle.flight_push(FlightKind::SpanBegin, phase.as_str(), 0, 0);
        SpanGuard {
            inner: Some((Arc::clone(handle), index, phase)),
        }
    }

    /// The collector clock's current time in nanoseconds, or `None`
    /// when this handle is disabled.
    ///
    /// Senders use this to stamp outgoing messages so the receiver can
    /// record a complete [`EdgeRecord`]; all forks of one handle share
    /// a single clock, so stamps from different tracks are comparable.
    pub fn now_ns(&self) -> Option<u64> {
        self.inner.as_ref().map(|h| h.collector.clock.now_ns())
    }

    /// Records a send→recv match edge observed by this handle's track
    /// (the receiver) at the current clock time.
    ///
    /// `src_track` is the sender's track, `sent_ns` the sender's
    /// [`Telemetry::now_ns`] stamp at send time, and `wire_ns` the
    /// simulated wire cost of the message. No-op when disabled.
    pub fn edge(&self, src_track: u32, tag: u64, bytes: u64, sent_ns: u64, wire_ns: u64) {
        let Some(handle) = &self.inner else { return };
        let matched_ns = handle.collector.clock.now_ns();
        {
            let mut state = locked(&handle.collector.state);
            state.edges.push(EdgeRecord {
                src_track,
                dst_track: handle.track,
                tag,
                bytes,
                sent_ns,
                matched_ns,
                wire_ns,
            });
        }
        handle.flight_push(FlightKind::Match, "comm.match", u64::from(src_track), bytes);
    }

    /// Records a scalar event at the current time.
    pub fn event(&self, name: &'static str, value: f64) {
        let Some(handle) = &self.inner else { return };
        let at_ns = handle.collector.clock.now_ns();
        {
            let mut state = locked(&handle.collector.state);
            state.events.push(EventRecord {
                name,
                value,
                track: handle.track,
                at_ns,
            });
        }
        handle.flight_push(FlightKind::Event, name, value.to_bits(), 0);
    }

    /// Adds `delta` to a counter on this track. One `None` check when
    /// disabled; a relaxed atomic add (plus, for coarse-grained
    /// counters, a flight record) when enabled.
    pub fn metric_add(&self, id: MetricId, delta: u64) {
        let Some(handle) = &self.inner else { return };
        handle.metrics.add(id, delta);
        if id.flight_worthy() {
            handle.flight_push(FlightKind::Counter, id.as_str(), delta, 0);
        }
    }

    /// Adds 1 to a counter on this track.
    pub fn metric_inc(&self, id: MetricId) {
        self.metric_add(id, 1);
    }

    /// Sets a gauge on this track.
    pub fn gauge_set(&self, id: MetricId, value: f64) {
        let Some(handle) = &self.inner else { return };
        handle.metrics.gauge_set(id, value);
        handle.flight_push(FlightKind::Gauge, id.as_str(), value.to_bits(), 0);
    }

    /// Records a duration into a histogram metric on this track.
    pub fn observe_ns(&self, id: MetricId, ns: u64) {
        let Some(handle) = &self.inner else { return };
        handle.metrics.observe_ns(id, ns);
    }

    /// Records a free-form flight-recorder marker (no metric storage).
    pub fn flight_point(&self, code: &'static str, a: u64, b: u64) {
        let Some(handle) = &self.inner else { return };
        handle.flight_push(FlightKind::Point, code, a, b);
    }

    /// Installs preallocated cost-profile storage sized for `dims`.
    ///
    /// Call once, before forking rank handles and before the profiled
    /// region runs. Returns `true` if profiling is now enabled (idempo-
    /// tent: a second call keeps the first slab and returns `true`);
    /// `false` on a disabled handle. After this, every closing span
    /// whose phase maps to a [`CostComponent`] charges its *self* time
    /// to the `(track, slab, slice)` context.
    pub fn enable_profile(&self, dims: ProfileDims) -> bool {
        let Some(handle) = &self.inner else {
            return false;
        };
        let _ = handle
            .collector
            .profile
            .set(Arc::new(ProfileSlabs::new(dims)));
        true
    }

    /// Whether cost-profile storage is installed on this collector.
    pub fn profile_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|h| h.collector.profile.get().is_some())
    }

    /// Sets the collector-global streamed-slab context for subsequent
    /// cost attribution. No-op when disabled or unprofiled.
    pub fn profile_slab_set(&self, slab: u32) {
        let Some(handle) = &self.inner else { return };
        if let Some(profile) = handle.collector.profile.get() {
            profile.set_slab(slab);
        }
    }

    /// Sets this track's fused-slice context for subsequent cost
    /// attribution. A relaxed atomic store; no-op when disabled.
    pub fn profile_slice_set(&self, slice: u32) {
        let Some(handle) = &self.inner else { return };
        handle.slice_ctx.store(slice, Ordering::Relaxed);
    }

    /// A point-in-time copy of the cost profile, or `None` when this
    /// handle is disabled or profiling was never enabled.
    pub fn profile_snapshot(&self) -> Option<ProfileSnapshot> {
        let handle = self.inner.as_ref()?;
        Some(handle.collector.profile.get()?.snapshot())
    }

    /// A point-in-time copy of every track's touched metrics (empty
    /// when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let Some(handle) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let at_ns = handle.collector.clock.now_ns();
        let slabs: Vec<TrackMetricsSnapshot> = locked(&handle.collector.slabs)
            .iter()
            .map(|slab| slab.metrics.snapshot(slab.track))
            .collect();
        MetricsSnapshot::assemble(at_ns, slabs)
    }

    /// The retained flight records of every track, merged and ordered
    /// by time (empty when disabled).
    pub fn flight_snapshot(&self) -> Vec<FlightEvent> {
        let Some(handle) = &self.inner else {
            return Vec::new();
        };
        let slabs = locked(&handle.collector.slabs);
        let mut events: Vec<FlightEvent> = Vec::new();
        for slab in slabs.iter() {
            events.extend(locked(&slab.flight).events());
        }
        drop(slabs);
        events.sort_by_key(|e| e.at_ns);
        events
    }

    /// Serializes the flight recorder into a `petaxct-flightrec-v1`
    /// post-mortem document, or `None` when disabled.
    pub fn flight_dump_json(&self, reason: &str) -> Option<String> {
        let handle = self.inner.as_ref()?;
        let at_ns = handle.collector.clock.now_ns();
        let events = self.flight_snapshot();
        let dropped = {
            let slabs = locked(&handle.collector.slabs);
            let total: u64 = slabs.iter().map(|slab| locked(&slab.flight).total()).sum();
            total - events.len() as u64
        };
        Some(flight_json(reason, at_ns, dropped, &events).to_string())
    }

    /// Copies out everything recorded so far, closing still-open spans at
    /// the current time. Returns an empty snapshot when disabled.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(handle) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let now = handle.collector.clock.now_ns();
        let state = locked(&handle.collector.state);
        let spans = state
            .spans
            .iter()
            .map(|s| {
                let mut s = s.clone();
                if s.end_ns == OPEN {
                    s.end_ns = now.max(s.start_ns);
                }
                s
            })
            .collect();
        TelemetrySnapshot {
            spans,
            events: state.events.clone(),
            edges: state.edges.clone(),
        }
    }
}

/// RAII guard returned by [`Telemetry::span`]; records the span's end
/// time on drop. A guard from a disabled handle is inert.
#[derive(Debug)]
#[must_use = "a span guard times the scope it lives in; dropping it immediately records a zero-length span"]
pub struct SpanGuard {
    inner: Option<(Arc<TrackHandle>, usize, Phase)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((handle, index, phase)) = self.inner.take() else {
            return;
        };
        let end_ns = handle.collector.clock.now_ns();
        // Same lock order as Telemetry::span: stack → state.
        let mut stack = locked(&handle.stack);
        let mut child_ns = 0;
        if let Some(pos) = stack.iter().rposition(|&(i, _)| i == index) {
            child_ns = stack.remove(pos).1;
        }
        let mut duration_ns = 0;
        {
            let mut state = locked(&handle.collector.state);
            if let Some(span) = state.spans.get_mut(index) {
                span.end_ns = end_ns.max(span.start_ns);
                duration_ns = span.duration_ns();
            }
        }
        // The enclosing span's self time excludes this whole span.
        if let Some(top) = stack.last_mut() {
            top.1 = top.1.saturating_add(duration_ns);
        }
        drop(stack);
        // Charge this span's *self* time (duration minus children) to
        // the cost profile, if one is installed. One atomic load + one
        // fetch_add; nothing allocates.
        if let Some(profile) = handle.collector.profile.get() {
            if let Some(component) = CostComponent::from_phase(phase) {
                let self_ns = duration_ns.saturating_sub(child_ns);
                let slice = handle.slice_ctx.load(Ordering::Relaxed);
                profile.record(handle.track, slice, component, self_ns);
            }
        }
        // comm.wait spans feed the live histogram metric as they close,
        // so the sampler sees the wait distribution mid-run instead of
        // only in the post-hoc span analysis.
        if phase == Phase::CommWait {
            handle.metrics.observe_ns(MetricId::CommWaitNs, duration_ns);
        }
        handle.flight_push(FlightKind::SpanEnd, phase.as_str(), duration_ns, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManualClock;

    #[test]
    fn disabled_handle_records_nothing() {
        let tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        {
            let _g = tele.span(Phase::SolverIteration);
            tele.event("residual", 1.0);
        }
        let snap = tele.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn manual_clock_gives_exact_durations() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        {
            let _outer = tele.span(Phase::SolverIteration);
            clock.advance(100);
            {
                let _inner = tele.span(Phase::SpmmForward);
                clock.advance(40);
            }
            clock.advance(10);
        }
        let snap = tele.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.phase, Phase::SolverIteration);
        assert_eq!(outer.duration_ns(), 150);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.phase, Phase::SpmmForward);
        assert_eq!(inner.duration_ns(), 40);
        assert_eq!(inner.parent, Some(0));
    }

    #[test]
    fn events_carry_time_and_track() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        clock.advance(5);
        tele.event("cgls.residual", 0.25);
        let snap = tele.snapshot();
        assert_eq!(
            snap.events,
            vec![EventRecord {
                name: "cgls.residual",
                value: 0.25,
                track: 0,
                at_ns: 5,
            }]
        );
    }

    #[test]
    fn forks_nest_independently_but_share_the_collector() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let _root = tele.span(Phase::Total);
        let fork = tele.fork(3);
        assert_eq!(fork.track(), 3);
        {
            let _g = fork.span(Phase::ReduceSocket);
            clock.advance(7);
        }
        let snap = tele.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let forked = &snap.spans[1];
        assert_eq!(forked.track, 3);
        // Fork spans are roots on their own track, not children of the
        // parent handle's open span.
        assert_eq!(forked.parent, None);
        assert_eq!(forked.duration_ns(), 7);
    }

    #[test]
    fn edges_are_recorded_at_match_time_on_the_receiving_track() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let receiver = tele.fork(2);
        clock.set(40);
        let sent_ns = tele.now_ns().expect("enabled handle has a clock");
        clock.set(100);
        receiver.edge(0, 7, 64, sent_ns, 55);
        let snap = tele.snapshot();
        assert_eq!(
            snap.edges,
            vec![EdgeRecord {
                src_track: 0,
                dst_track: 2,
                tag: 7,
                bytes: 64,
                sent_ns: 40,
                matched_ns: 100,
                wire_ns: 55,
            }]
        );
        // Disabled handles record no edges and report no time.
        let off = Telemetry::disabled();
        assert_eq!(off.now_ns(), None);
        off.edge(0, 7, 64, 0, 0);
        assert!(off.snapshot().edges.is_empty());
    }

    #[test]
    fn snapshot_closes_open_spans_at_now() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let _g = tele.span(Phase::Io);
        clock.advance(12);
        let snap = tele.snapshot();
        assert_eq!(snap.spans[0].duration_ns(), 12);
    }

    #[test]
    fn clones_share_one_nesting_stack() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let alias = tele.clone();
        let _outer = tele.span(Phase::SolverIteration);
        {
            let _inner = alias.span(Phase::SpmmForward);
            clock.advance(1);
        }
        let snap = tele.snapshot();
        assert_eq!(snap.spans[1].parent, Some(0));
    }

    #[test]
    fn profile_charges_exact_self_time_per_component() {
        use crate::profile::{CostComponent, ProfileDims};
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        assert!(!tele.profile_enabled());
        assert!(tele.enable_profile(ProfileDims {
            tracks: 2,
            slabs: 2,
            slices: 2,
        }));
        assert!(tele.profile_enabled());
        let rank = tele.fork(1);
        rank.profile_slice_set(1);
        {
            // solver.iteration is orchestration (unattributed); the
            // nested spmm.forward gets 40ns of self time, and the
            // iteration's own 110ns of self time is dropped.
            let _outer = rank.span(Phase::SolverIteration);
            clock.advance(100);
            {
                let _inner = rank.span(Phase::SpmmForward);
                clock.advance(40);
            }
            clock.advance(10);
        }
        tele.profile_slab_set(1);
        {
            let _w = rank.span(Phase::CommWait);
            clock.advance(7);
        }
        let snap = tele.profile_snapshot().expect("profile enabled");
        assert_eq!(snap.get(1, 0, 1, CostComponent::SpmmCompute), 40);
        assert_eq!(snap.get(1, 1, 1, CostComponent::CommWait), 7);
        assert_eq!(snap.total_ns(), 47);
        // Disabled handles report no profile.
        assert_eq!(Telemetry::disabled().profile_snapshot(), None);
        assert!(!Telemetry::disabled().enable_profile(ProfileDims {
            tracks: 1,
            slabs: 1,
            slices: 1,
        }));
    }

    #[test]
    fn nested_same_phase_spans_do_not_double_charge() {
        use crate::profile::{CostComponent, ProfileDims};
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        tele.enable_profile(ProfileDims {
            tracks: 1,
            slabs: 1,
            slices: 1,
        });
        {
            let _outer = tele.span(Phase::ReduceGlobal);
            clock.advance(5);
            {
                let _inner = tele.span(Phase::ReduceGlobal);
                clock.advance(3);
            }
            clock.advance(2);
        }
        let snap = tele.profile_snapshot().expect("profile enabled");
        // 3 (inner) + 7 (outer self) = total 10, not 13.
        assert_eq!(snap.get(0, 0, 0, CostComponent::ReduceGlobal), 10);
    }

    #[test]
    fn concurrent_rank_tracks_do_not_corrupt_each_other() {
        let tele = Telemetry::enabled();
        std::thread::scope(|scope| {
            for rank in 0..4u32 {
                let fork = tele.fork(rank);
                scope.spawn(move || {
                    for _ in 0..50 {
                        let _outer = fork.span(Phase::SolverIteration);
                        let _inner = fork.span(Phase::SpmmForward);
                        fork.event("tick", f64::from(rank));
                    }
                });
            }
        });
        let snap = tele.snapshot();
        assert_eq!(snap.spans.len(), 4 * 50 * 2);
        assert_eq!(snap.events.len(), 4 * 50);
        for span in &snap.spans {
            if let Some(parent) = span.parent {
                assert_eq!(
                    snap.spans[parent].track, span.track,
                    "parent links must stay within a track"
                );
            }
        }
    }
}
