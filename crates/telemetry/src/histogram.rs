//! Log-bucketed duration histograms per [`Phase`].
//!
//! Span durations within one phase routinely spread over several
//! decades (a cold first iteration, warm steady-state ones, a
//! straggler blocked on the wire), so a mean hides exactly what the
//! Fig-10 analysis needs. [`DurationHistogram`] buckets durations by
//! power of two — bucket *i* holds durations in `[2^(i-1), 2^i)` ns —
//! which is cheap (a `leading_zeros`), allocation-free, and never
//! needs rescaling.

use crate::{fmt_ns, Json, Phase, TelemetrySnapshot};

/// Number of log2 buckets: one for 0 ns plus one per bit of `u64`.
const BUCKETS: usize = 65;

/// A fixed-size power-of-two duration histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurationHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    min_ns: u64,
    max_ns: u64,
    sum_ns: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            counts: [0; BUCKETS],
            count: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            sum_ns: 0,
        }
    }
}

/// Bucket index for a duration: 0 holds exactly 0 ns, bucket `i >= 1`
/// holds `[2^(i-1), 2^i)`. Shared with the atomic histograms in
/// [`crate::metrics`] so both layers bucket identically.
pub(crate) fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        64 - ns.leading_zeros() as usize
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a histogram from raw fields captured elsewhere (the
    /// atomic metric slabs snapshot through this so rendering and JSON
    /// export are shared with span-derived histograms).
    pub(crate) fn from_raw(
        counts: [u64; BUCKETS],
        count: u64,
        min_ns: u64,
        max_ns: u64,
        sum_ns: u64,
    ) -> Self {
        DurationHistogram {
            counts,
            count,
            min_ns,
            max_ns,
            sum_ns,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded duration (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded duration.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Sum of all recorded durations.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Non-empty buckets as `(lo_ns, hi_ns, count)` ranges, low first.
    /// `hi_ns` is exclusive; the 0-bucket reports `(0, 1, n)`.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                if i == 0 {
                    (0, 1, c)
                } else {
                    (1u64 << (i - 1), (1u64 << (i - 1)).saturating_mul(2), c)
                }
            })
            .collect()
    }
}

/// One histogram per [`Phase`] present in a snapshot, ordered by total
/// time descending (the phases that matter first).
#[derive(Clone, Debug, Default)]
pub struct PhaseHistograms {
    /// `(phase, histogram)` pairs, largest total time first.
    pub phases: Vec<(Phase, DurationHistogram)>,
}

impl PhaseHistograms {
    /// Buckets every span duration in the snapshot under its phase.
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> PhaseHistograms {
        let mut phases: Vec<(Phase, DurationHistogram)> = Vec::new();
        for span in &snap.spans {
            match phases.iter_mut().find(|(p, _)| *p == span.phase) {
                Some((_, hist)) => hist.record(span.duration_ns()),
                None => {
                    let mut hist = DurationHistogram::new();
                    hist.record(span.duration_ns());
                    phases.push((span.phase, hist));
                }
            }
        }
        phases.sort_by_key(|(_, h)| std::cmp::Reverse(h.sum_ns()));
        PhaseHistograms { phases }
    }

    /// A compact per-phase table with one hash-bar line per non-empty
    /// log2 bucket.
    pub fn render_table(&self) -> String {
        const BAR: usize = 32;
        let mut out = String::from("phase duration histograms (log2 buckets)\n");
        for (phase, hist) in &self.phases {
            out.push_str(&format!(
                "{:<22} n={:<6} min {} · max {}\n",
                phase.as_str(),
                hist.count(),
                fmt_ns(hist.min_ns()).trim_start(),
                fmt_ns(hist.max_ns()).trim_start()
            ));
            let peak = hist.buckets().iter().map(|&(_, _, c)| c).max().unwrap_or(1);
            for (lo, hi, count) in hist.buckets() {
                let bar = (count as usize * BAR).div_ceil(peak as usize);
                out.push_str(&format!(
                    "  [{}, {}) {:>6} {}\n",
                    fmt_ns(lo),
                    fmt_ns(hi),
                    count,
                    "#".repeat(bar.min(BAR))
                ));
            }
        }
        out
    }

    /// JSON fragment for the telemetry report and benchmark artifacts.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.phases
                .iter()
                .map(|(phase, hist)| {
                    Json::object(vec![
                        ("phase", Json::from(phase.as_str())),
                        ("count", Json::from(hist.count())),
                        ("min_ns", Json::from(hist.min_ns())),
                        ("max_ns", Json::from(hist.max_ns())),
                        ("sum_ns", Json::from(hist.sum_ns())),
                        (
                            "buckets",
                            Json::Arr(
                                hist.buckets()
                                    .into_iter()
                                    .map(|(lo, hi, count)| {
                                        Json::object(vec![
                                            ("lo_ns", Json::from(lo)),
                                            ("hi_ns", Json::from(hi)),
                                            ("count", Json::from(count)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, ManualClock, Telemetry};
    use std::sync::Arc;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut hist = DurationHistogram::new();
        for ns in [0, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            hist.record(ns);
        }
        assert_eq!(hist.count(), 8);
        assert_eq!(hist.min_ns(), 0);
        assert_eq!(hist.max_ns(), u64::MAX);
        let buckets = hist.buckets();
        // 0 → [0,1); 1 → [1,2); 2,3 → [2,4); 4 → [4,8);
        // 1023 → [512,1024); 1024 → [1024,2048); u64::MAX → top bucket.
        assert_eq!(buckets[0], (0, 1, 1));
        assert_eq!(buckets[1], (1, 2, 1));
        assert_eq!(buckets[2], (2, 4, 2));
        assert_eq!(buckets[3], (4, 8, 1));
        assert_eq!(buckets[4], (512, 1024, 1));
        assert_eq!(buckets[5], (1024, 2048, 1));
        assert_eq!(buckets[6].2, 1);
        assert_eq!(buckets[6].0, 1u64 << 63);
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let hist = DurationHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.min_ns(), 0);
        assert_eq!(hist.max_ns(), 0);
        assert!(hist.buckets().is_empty());
    }

    #[test]
    fn phase_histograms_split_by_phase_and_sort_by_total() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        for dur in [10u64, 12, 1000] {
            let start = clock.now_ns();
            let g = tele.span(Phase::SpmmForward);
            clock.set(start + dur);
            drop(g);
        }
        {
            let g = tele.span(Phase::Io);
            clock.advance(5);
            drop(g);
        }
        let hists = PhaseHistograms::from_snapshot(&tele.snapshot());
        assert_eq!(hists.phases.len(), 2);
        assert_eq!(hists.phases[0].0, Phase::SpmmForward);
        assert_eq!(hists.phases[0].1.count(), 3);
        assert_eq!(hists.phases[0].1.sum_ns(), 1022);
        assert_eq!(hists.phases[1].0, Phase::Io);
        let table = hists.render_table();
        assert!(table.contains("spmm.forward"), "{table}");
        assert!(table.contains('#'), "{table}");
        let json = hists.to_json();
        let arr = json.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("count").and_then(Json::as_f64), Some(3.0));
    }
}
