//! Injectable time sources.
//!
//! Span durations are differences of `u64` nanosecond readings taken from
//! a [`Clock`]. Production code uses [`MonotonicClock`] (anchored
//! `std::time::Instant`); tests inject a [`ManualClock`] and advance it by
//! hand so duration assertions are exact rather than sleep-based.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond counter.
///
/// Implementations must be cheap (called twice per span) and monotonic
/// per clock instance; absolute origin is arbitrary.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since this clock's (arbitrary) origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock monotonic time, anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // Saturates far beyond any plausible session length (2^64 ns ≈ 584
        // years), so the cast is lossless in practice.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests.
///
/// Clones share the same underlying counter, so a test can keep one handle
/// and hand another to [`crate::Telemetry::with_clock`].
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta_ns` nanoseconds.
    pub fn advance(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading.
    pub fn set(&self, now_ns: u64) {
        self.ns.store(now_ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_exactly() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(250);
        assert_eq!(clock.now_ns(), 250);
        let alias = clock.clone();
        alias.advance(750);
        assert_eq!(clock.now_ns(), 1_000);
        clock.set(42);
        assert_eq!(alias.now_ns(), 42);
    }
}
