//! Happens-before analysis over a [`TelemetrySnapshot`].
//!
//! Fuses the per-rank span tracks with the send→recv match edges the
//! comm runtime records ([`EdgeRecord`]) into a happens-before DAG and
//! computes the **critical path** — the longest weighted chain of busy
//! span time plus wire edges — along with per-rank **slack** (how much
//! a rank could slow down before it moves onto the critical path).
//! See DESIGN.md §3e for the model.
//!
//! The DAG is built over *segments*, not whole spans: each track's
//! timeline is cut at every communication instant it participates in
//! (the `sent_ns` of its outgoing edges, the `matched_ns` of its
//! incoming edges). A match edge then runs from the segment that *ends*
//! at the send instant to the segment that *starts* at the match
//! instant, so every edge points forward in time and the graph is
//! acyclic by construction (edges with `matched_ns < sent_ns`, which
//! only a rewound manual clock can produce, are dropped).
//!
//! A segment's weight is the *busy* time inside it: the overlap of the
//! track's merged root spans with the segment. Blocking waits inside an
//! instrumented span count as busy — like a sampling profiler, the
//! analysis attributes wall time to whichever phase held the rank —
//! while the wire edges bound how early a receive *could* have matched.

use crate::{fmt_ns, EdgeRecord, Json, TelemetrySnapshot};

/// One node of the segment DAG: a slice of one track's timeline.
#[derive(Clone, Debug)]
struct Node {
    track_idx: usize,
    start_ns: u64,
    end_ns: u64,
    busy_ns: u64,
}

/// Per-rank critical-path attribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankPath {
    /// Track (rank) id.
    pub track: u32,
    /// Total busy time on this track (union of its root spans).
    pub busy_ns: u64,
    /// Busy time this track contributes to the critical path.
    pub on_path_ns: u64,
    /// How much this track's longest chain falls short of the critical
    /// path: 0 means the rank is a straggler bounding end-to-end time.
    pub slack_ns: u64,
}

/// One hop of the critical path (maximal run on a single track).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// Track (rank) the step runs on.
    pub track: u32,
    /// Step start in collector nanoseconds.
    pub start_ns: u64,
    /// Step end in collector nanoseconds.
    pub end_ns: u64,
    /// Busy time inside the step.
    pub busy_ns: u64,
    /// Wire cost of the match edge that entered this step (0 for the
    /// first step or same-track continuation).
    pub wire_in_ns: u64,
}

/// Critical path and slack over one snapshot's happens-before DAG.
#[derive(Clone, Debug, Default)]
pub struct CausalAnalysis {
    /// Length of the critical path: busy time plus wire edges along the
    /// longest chain. Lower-bounds end-to-end wall time.
    pub critical_path_ns: u64,
    /// Portion of the critical path spent on simulated wire edges.
    pub wire_on_path_ns: u64,
    /// Per-rank busy/on-path/slack attribution, sorted by track.
    pub per_rank: Vec<RankPath>,
    /// The critical path itself, earliest step first.
    pub steps: Vec<PathStep>,
}

/// Total busy overlap of sorted disjoint `intervals` with `[s, e)`.
fn overlap_ns(intervals: &[(u64, u64)], s: u64, e: u64) -> u64 {
    intervals
        .iter()
        .map(|&(is, ie)| ie.min(e).saturating_sub(is.max(s)))
        .sum()
}

impl CausalAnalysis {
    /// Builds the segment DAG from a snapshot and extracts the critical
    /// path. Cost is `O(spans + edges · log)` — cheap next to the run
    /// that produced the snapshot.
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> CausalAnalysis {
        // -- tracks ----------------------------------------------------
        let mut tracks: Vec<u32> = snap
            .spans
            .iter()
            .map(|s| s.track)
            .chain(snap.edges.iter().flat_map(|e| [e.src_track, e.dst_track]))
            .collect();
        tracks.sort_unstable();
        tracks.dedup();
        let nt = tracks.len();
        // xct-allow(no-panic): infallible — tracks was built from these same records
        let t_idx = |t: u32| tracks.binary_search(&t).expect("track collected above");
        // Edges a rewound manual clock made non-causal are dropped.
        let edges: Vec<&EdgeRecord> = snap
            .edges
            .iter()
            .filter(|e| e.matched_ns >= e.sent_ns)
            .collect();

        // -- per-track busy intervals (merged root spans) --------------
        let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nt];
        for s in snap.spans.iter().filter(|s| s.parent.is_none()) {
            busy[t_idx(s.track)].push((s.start_ns, s.end_ns));
        }
        for b in &mut busy {
            b.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(b.len());
            for &(s, e) in b.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *b = merged;
        }

        // -- cut points and segment nodes ------------------------------
        let mut cuts: Vec<Vec<u64>> = vec![Vec::new(); nt];
        for e in &edges {
            cuts[t_idx(e.src_track)].push(e.sent_ns);
            cuts[t_idx(e.dst_track)].push(e.matched_ns);
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut bounds: Vec<Vec<u64>> = Vec::with_capacity(nt);
        let mut offset: Vec<usize> = Vec::with_capacity(nt);
        let mut count: Vec<usize> = Vec::with_capacity(nt);
        for i in 0..nt {
            let mut b = std::mem::take(&mut cuts[i]);
            if let Some(&(s, _)) = busy[i].first() {
                b.push(s);
            }
            if let Some(&(_, e)) = busy[i].last() {
                b.push(e);
            }
            b.sort_unstable();
            b.dedup();
            offset.push(nodes.len());
            match b.len() {
                0 => count.push(0),
                1 => {
                    // A track that only exists at one instant (e.g. a
                    // zero-length span or a lone edge endpoint).
                    count.push(1);
                    nodes.push(Node {
                        track_idx: i,
                        start_ns: b[0],
                        end_ns: b[0],
                        busy_ns: 0,
                    });
                }
                _ => {
                    count.push(b.len() - 1);
                    for w in b.windows(2) {
                        nodes.push(Node {
                            track_idx: i,
                            start_ns: w[0],
                            end_ns: w[1],
                            busy_ns: overlap_ns(&busy[i], w[0], w[1]),
                        });
                    }
                }
            }
            bounds.push(b);
        }
        let n = nodes.len();

        // -- lower match edges onto segment nodes ----------------------
        // src: the segment ending at sent_ns (None when nothing on the
        // sender's timeline precedes the send — the edge then starts the
        // chain with its wire cost). dst: the segment starting at
        // matched_ns (None when nothing follows the match — the edge
        // then extends the chain past its source node).
        let mut in_match: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut free_in: Vec<u64> = vec![0; n];
        let mut tail_out: Vec<u64> = vec![0; n];
        for e in &edges {
            let (si, di) = (t_idx(e.src_track), t_idx(e.dst_track));
            let src = bounds[si].binary_search(&e.sent_ns).ok().and_then(|pos| {
                if count[si] == 0 {
                    None
                } else if bounds[si].len() == 1 {
                    Some(offset[si])
                } else if pos == 0 {
                    None
                } else {
                    Some(offset[si] + pos - 1)
                }
            });
            let dst = bounds[di]
                .binary_search(&e.matched_ns)
                .ok()
                .and_then(|pos| {
                    if count[di] == 0 {
                        None
                    } else if bounds[di].len() == 1 {
                        Some(offset[di])
                    } else if pos == count[di] {
                        None
                    } else {
                        Some(offset[di] + pos)
                    }
                });
            match (src, dst) {
                (Some(s), Some(d)) if s != d => in_match[d].push((s, e.wire_ns)),
                (None, Some(d)) => free_in[d] = free_in[d].max(e.wire_ns),
                (Some(s), None) => tail_out[s] = tail_out[s].max(e.wire_ns),
                _ => {}
            }
        }

        // -- longest-path sweeps ---------------------------------------
        // Every edge (program-order or match) runs from a node ending at
        // time t to a node starting at >= t, so processing nodes in
        // (start, end) order visits all predecessors first; no explicit
        // toposort is needed. (Two zero-length nodes at the same instant
        // with edges both ways would be a degenerate zero-weight cycle;
        // the sort breaks it arbitrarily, costing nothing.)
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&v| (nodes[v].start_ns, nodes[v].end_ns, v));
        let mut fdist = vec![0u64; n];
        for &v in &order {
            let node = &nodes[v];
            let mut best = free_in[v];
            if v > offset[node.track_idx] {
                best = best.max(fdist[v - 1]);
            }
            for &(s, w) in &in_match[v] {
                best = best.max(fdist[s].saturating_add(w));
            }
            fdist[v] = best.saturating_add(node.busy_ns);
        }
        // Backward pass mirrors the forward one for slack attribution.
        let mut out_match: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for (d, ins) in in_match.iter().enumerate() {
            for &(s, w) in ins {
                out_match[s].push((d, w));
            }
        }
        let mut bdist = vec![0u64; n];
        for &v in order.iter().rev() {
            let node = &nodes[v];
            let mut best = tail_out[v];
            if v + 1 < offset[node.track_idx] + count[node.track_idx] {
                best = best.max(bdist[v + 1]);
            }
            for &(d, w) in &out_match[v] {
                best = best.max(bdist[d].saturating_add(w));
            }
            bdist[v] = best.saturating_add(node.busy_ns);
        }

        // -- critical path ---------------------------------------------
        let mut cp = 0u64;
        let mut cp_end: Option<usize> = None;
        for v in 0..n {
            let total = fdist[v].saturating_add(tail_out[v]);
            if cp_end.is_none() || total > cp {
                cp = total;
                cp_end = Some(v);
            }
        }
        let tail_wire = cp_end.map_or(0, |v| cp - fdist[v]);

        // Walk backwards from the end node, always taking an in-edge
        // that realises fdist, recording the wire cost used to enter
        // each node.
        let mut rev: Vec<(usize, u64)> = Vec::new();
        if let Some(end) = cp_end {
            let mut v = end;
            loop {
                let need = fdist[v].saturating_sub(nodes[v].busy_ns);
                let ti = nodes[v].track_idx;
                let mut pred: Option<(usize, u64)> = None;
                if need > 0 {
                    if v > offset[ti] && fdist[v - 1] == need {
                        pred = Some((v - 1, 0));
                    } else {
                        pred = in_match[v]
                            .iter()
                            .find(|&&(s, w)| fdist[s].saturating_add(w) == need)
                            .copied();
                    }
                }
                match pred {
                    Some((p, w)) => {
                        rev.push((v, w));
                        v = p;
                    }
                    None => {
                        // `need` (if any) came from a free_in wire edge.
                        rev.push((v, need));
                        break;
                    }
                }
            }
        }
        let mut on_path = vec![0u64; nt];
        let mut wire_on_path = tail_wire;
        let mut steps: Vec<PathStep> = Vec::new();
        for &(v, w) in rev.iter().rev() {
            let node = &nodes[v];
            on_path[node.track_idx] += node.busy_ns;
            wire_on_path += w;
            match steps.last_mut() {
                Some(last) if last.track == tracks[node.track_idx] && w == 0 => {
                    last.end_ns = node.end_ns;
                    last.busy_ns += node.busy_ns;
                }
                _ => steps.push(PathStep {
                    track: tracks[node.track_idx],
                    start_ns: node.start_ns,
                    end_ns: node.end_ns,
                    busy_ns: node.busy_ns,
                    wire_in_ns: w,
                }),
            }
        }

        // -- per-rank slack --------------------------------------------
        let per_rank = (0..nt)
            .map(|i| {
                let through = (offset[i]..offset[i] + count[i])
                    .map(|v| {
                        fdist[v]
                            .saturating_add(bdist[v])
                            .saturating_sub(nodes[v].busy_ns)
                    })
                    .max()
                    .unwrap_or(0);
                RankPath {
                    track: tracks[i],
                    busy_ns: busy[i].iter().map(|&(s, e)| e - s).sum(),
                    on_path_ns: on_path[i],
                    slack_ns: cp.saturating_sub(through),
                }
            })
            .collect();

        CausalAnalysis {
            critical_path_ns: cp,
            wire_on_path_ns: wire_on_path,
            per_rank,
            steps,
        }
    }

    /// The Fig-10-style per-rank critical-path/slack table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path {} · wire on path {} · {} step(s)\n",
            fmt_ns(self.critical_path_ns).trim_start(),
            fmt_ns(self.wire_on_path_ns).trim_start(),
            self.steps.len()
        ));
        out.push_str(&format!(
            "{:<6} {:>10} {:>10} {:>10} {:>7}\n",
            "rank", "busy", "on path", "slack", "% path"
        ));
        for r in &self.per_rank {
            let pct = if self.critical_path_ns == 0 {
                0.0
            } else {
                100.0 * r.on_path_ns as f64 / self.critical_path_ns as f64
            };
            let marker = if r.slack_ns == 0 { " *" } else { "" };
            out.push_str(&format!(
                "{:<6} {} {} {} {:>6.1}%{}\n",
                r.track,
                fmt_ns(r.busy_ns),
                fmt_ns(r.on_path_ns),
                fmt_ns(r.slack_ns),
                pct,
                marker
            ));
        }
        out.push_str("(* = zero slack: the rank bounds end-to-end time)\n");
        out
    }

    /// JSON fragment embedded in the `petaxct-telemetry-v1` report and
    /// in `BENCH_*.json` benchmark artifacts.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("critical_path_ns", Json::from(self.critical_path_ns)),
            ("wire_on_path_ns", Json::from(self.wire_on_path_ns)),
            (
                "per_rank",
                Json::Arr(
                    self.per_rank
                        .iter()
                        .map(|r| {
                            Json::object(vec![
                                ("rank", Json::from(u64::from(r.track))),
                                ("busy_ns", Json::from(r.busy_ns)),
                                ("on_path_ns", Json::from(r.on_path_ns)),
                                ("slack_ns", Json::from(r.slack_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "steps",
                Json::Arr(
                    self.steps
                        .iter()
                        .map(|s| {
                            Json::object(vec![
                                ("rank", Json::from(u64::from(s.track))),
                                ("start_ns", Json::from(s.start_ns)),
                                ("end_ns", Json::from(s.end_ns)),
                                ("busy_ns", Json::from(s.busy_ns)),
                                ("wire_in_ns", Json::from(s.wire_in_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManualClock, Phase, Telemetry};
    use std::sync::Arc;

    /// Records a root span [start, end] on `tele`'s track.
    fn span_at(tele: &Telemetry, clock: &ManualClock, phase: Phase, start: u64, end: u64) {
        clock.set(start);
        let g = tele.span(phase);
        clock.set(end);
        drop(g);
    }

    /// The deterministic 3-rank fixture from DESIGN.md §3e:
    ///
    /// - rank 0 busy [0, 100], sends at 100 (wire 50)
    /// - rank 1 matches at 150, busy [150, 250]
    /// - rank 2 busy [0, 120], no communication
    ///
    /// Critical path = 100 + 50 + 100 = 250 through ranks 0 → 1;
    /// rank 2's longest chain is its own 120, so slack = 130.
    fn three_rank_fixture() -> TelemetrySnapshot {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let r0 = tele.fork(0);
        let r1 = tele.fork(1);
        let r2 = tele.fork(2);
        span_at(&r0, &clock, Phase::SpmmForward, 0, 100);
        span_at(&r2, &clock, Phase::SolverIteration, 0, 120);
        span_at(&r1, &clock, Phase::SolverIteration, 150, 250);
        clock.set(150);
        r1.edge(0, 7, 1024, 100, 50);
        tele.snapshot()
    }

    #[test]
    fn exact_critical_path_and_slack_on_the_three_rank_fixture() {
        let causal = CausalAnalysis::from_snapshot(&three_rank_fixture());
        assert_eq!(causal.critical_path_ns, 250);
        assert_eq!(causal.wire_on_path_ns, 50);
        assert_eq!(
            causal.per_rank,
            vec![
                RankPath {
                    track: 0,
                    busy_ns: 100,
                    on_path_ns: 100,
                    slack_ns: 0
                },
                RankPath {
                    track: 1,
                    busy_ns: 100,
                    on_path_ns: 100,
                    slack_ns: 0
                },
                RankPath {
                    track: 2,
                    busy_ns: 120,
                    on_path_ns: 0,
                    slack_ns: 130
                },
            ]
        );
        // The path itself: rank 0's span, then the wire edge into rank 1.
        assert_eq!(
            causal.steps,
            vec![
                PathStep {
                    track: 0,
                    start_ns: 0,
                    end_ns: 100,
                    busy_ns: 100,
                    wire_in_ns: 0
                },
                PathStep {
                    track: 1,
                    start_ns: 150,
                    end_ns: 250,
                    busy_ns: 100,
                    wire_in_ns: 50
                },
            ]
        );
        // Path accounting closes: busy on path + wire == critical path.
        let busy_on_path: u64 = causal.steps.iter().map(|s| s.busy_ns).sum();
        assert_eq!(
            busy_on_path + causal.wire_on_path_ns,
            causal.critical_path_ns
        );
    }

    #[test]
    fn a_send_mid_span_splits_the_segment_and_keeps_the_local_chain() {
        // rank 0 busy [0, 100] but sends at 40 (wire 20); rank 1 matches
        // at 60 and is busy [60, 90]. rank 0's own chain (100) still
        // dominates the cross-rank chain 40 + 20 + 30 = 90.
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let r0 = tele.fork(0);
        let r1 = tele.fork(1);
        span_at(&r0, &clock, Phase::SpmmForward, 0, 100);
        span_at(&r1, &clock, Phase::SolverIteration, 60, 90);
        clock.set(60);
        r1.edge(0, 3, 8, 40, 20);
        let causal = CausalAnalysis::from_snapshot(&tele.snapshot());
        assert_eq!(causal.critical_path_ns, 100);
        assert_eq!(causal.wire_on_path_ns, 0);
        let r0_path = &causal.per_rank[0];
        let r1_path = &causal.per_rank[1];
        assert_eq!(r0_path.slack_ns, 0);
        assert_eq!(r0_path.on_path_ns, 100);
        // rank 1's best chain is 40 (pre-send on rank 0) + 20 + 30 = 90.
        assert_eq!(r1_path.slack_ns, 10);
        assert_eq!(r1_path.on_path_ns, 0);
    }

    #[test]
    fn wire_edges_extend_past_a_trailing_match() {
        // rank 0 busy [0, 100], sends at 100 with wire 40; rank 1's only
        // presence is the match instant at 140 (no spans). The chain
        // still counts the wire: cp = 140.
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let r0 = tele.fork(0);
        let r1 = tele.fork(1);
        span_at(&r0, &clock, Phase::SpmmForward, 0, 100);
        clock.set(140);
        r1.edge(0, 9, 8, 100, 40);
        let causal = CausalAnalysis::from_snapshot(&tele.snapshot());
        assert_eq!(causal.critical_path_ns, 140);
        assert_eq!(causal.wire_on_path_ns, 40);
    }

    #[test]
    fn empty_snapshot_yields_an_empty_analysis() {
        let causal = CausalAnalysis::from_snapshot(&TelemetrySnapshot::default());
        assert_eq!(causal.critical_path_ns, 0);
        assert!(causal.per_rank.is_empty());
        assert!(causal.steps.is_empty());
    }

    #[test]
    fn non_causal_edges_from_a_rewound_clock_are_ignored() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let r0 = tele.fork(0);
        let r1 = tele.fork(1);
        span_at(&r0, &clock, Phase::SpmmForward, 0, 50);
        span_at(&r1, &clock, Phase::SpmmForward, 0, 60);
        clock.set(10);
        r1.edge(0, 1, 8, 99, 5); // matched 10 < sent 99: dropped
        let causal = CausalAnalysis::from_snapshot(&tele.snapshot());
        assert_eq!(causal.critical_path_ns, 60);
        assert_eq!(causal.wire_on_path_ns, 0);
    }

    #[test]
    fn table_and_json_carry_the_key_fields() {
        let causal = CausalAnalysis::from_snapshot(&three_rank_fixture());
        let table = causal.render_table();
        assert!(table.contains("critical path"), "{table}");
        assert!(table.contains("slack"), "{table}");
        assert!(table.contains('*'), "straggler marker missing: {table}");
        let json = causal.to_json();
        assert_eq!(
            json.get("critical_path_ns").and_then(Json::as_f64),
            Some(250.0)
        );
        assert_eq!(
            json.get("per_rank")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            json.get("steps")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }
}
