//! The stable phase taxonomy.
//!
//! Every span is labelled with a [`Phase`]; the names returned by
//! [`Phase::as_str`] are a public contract — they appear in the JSON
//! report, the Chrome trace, and the `--telemetry-summary` table, and the
//! integration tests key on them. Add variants rather than renaming.

/// Where time goes in a reconstruction, at the granularity of the paper's
/// Fig. 10 breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Forward projection SpMM (`A x`).
    SpmmForward,
    /// Back projection SpMM (`Aᵀ y`).
    SpmmTranspose,
    /// Precision conversion: widen/narrow or quantize/dequantize staging.
    PrecisionConvert,
    /// Intra-socket stage of a hierarchical partial-sum reduction.
    ReduceSocket,
    /// Intra-node (cross-socket) stage of a hierarchical reduction.
    ReduceNode,
    /// Global (inter-node) reduction stage, or a direct all-to-all
    /// reduction when no hierarchy is used.
    ReduceGlobal,
    /// Halo / boundary exchange scattering owned slabs back out.
    HaloExchange,
    /// Small control-plane collectives: allreduce, barrier.
    Allreduce,
    /// Blocking completion of a previously posted exchange: the time a
    /// rank spends waiting on in-flight irecvs when the overlap window
    /// closes. Kept separate from the exchange phases so pipeline stall
    /// time never inflates the enclosing compute span's self time.
    CommWait,
    /// One solver iteration (CGLS/SIRT/TV outer step).
    SolverIteration,
    /// Solver bookkeeping outside the iteration loop: probes, initial
    /// residuals, workspace priming.
    SolverSetup,
    /// Sinogram reads and slice writes.
    Io,
    /// Root span covering an entire run; the summary's coverage figure is
    /// measured against spans like this one.
    Total,
    /// An ad-hoc phase named at the call site.
    Custom(&'static str),
}

impl Phase {
    /// The stable dotted name used across all sinks.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::SpmmForward => "spmm.forward",
            Phase::SpmmTranspose => "spmm.transpose",
            Phase::PrecisionConvert => "precision.convert",
            Phase::ReduceSocket => "comm.reduce.socket",
            Phase::ReduceNode => "comm.reduce.node",
            Phase::ReduceGlobal => "comm.reduce.global",
            Phase::HaloExchange => "comm.halo",
            Phase::Allreduce => "comm.allreduce",
            Phase::CommWait => "comm.wait",
            Phase::SolverIteration => "solver.iteration",
            Phase::SolverSetup => "solver.setup",
            Phase::Io => "io",
            Phase::Total => "total",
            Phase::Custom(name) => name,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let all = [
            Phase::SpmmForward,
            Phase::SpmmTranspose,
            Phase::PrecisionConvert,
            Phase::ReduceSocket,
            Phase::ReduceNode,
            Phase::ReduceGlobal,
            Phase::HaloExchange,
            Phase::Allreduce,
            Phase::CommWait,
            Phase::SolverIteration,
            Phase::SolverSetup,
            Phase::Io,
            Phase::Total,
        ];
        let mut names: Vec<&str> = all.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "phase names must be unique");
        assert_eq!(Phase::SpmmForward.to_string(), "spmm.forward");
        assert_eq!(Phase::Custom("bench.warmup").as_str(), "bench.warmup");
    }
}
