//! Time-series sampling of the metrics registry plus its exporters:
//! `petaxct-metrics-v1` JSON, Prometheus text exposition, CSV, and the
//! human progress line.
//!
//! A [`Sampler`] owns nothing but a telemetry handle and an interval;
//! each [`tick`](Sampler::tick) that lands on or past the next deadline
//! appends one [`MetricsSnapshot`] of *cumulative* values (counters are
//! running totals — consumers diff adjacent samples for rates, exactly
//! like Prometheus counters). Timing comes from the handle's injected
//! [`crate::Clock`], so tests drive the series deterministically with a
//! [`crate::ManualClock`] while the CLI drives it from a wall-clock
//! thread.

use crate::metrics::{MetricId, MetricsSnapshot};
use crate::{fmt_ns, Json, Telemetry};

/// Collects a time series of metric snapshots on a fixed interval.
#[derive(Debug)]
pub struct Sampler {
    telemetry: Telemetry,
    interval_ns: u64,
    /// Clock time at or after which the next tick samples. Starts at 0
    /// so the first tick always samples.
    next_ns: u64,
    samples: Vec<MetricsSnapshot>,
}

impl Sampler {
    /// A sampler over `telemetry`'s collector clock. `interval_ns` is
    /// the minimum spacing between samples taken via [`tick`][Self::tick].
    pub fn new(telemetry: Telemetry, interval_ns: u64) -> Self {
        Sampler {
            telemetry,
            interval_ns: interval_ns.max(1),
            next_ns: 0,
            samples: Vec::new(),
        }
    }

    /// Samples if the clock has reached the next deadline; returns
    /// whether a sample was taken. No-op (false) on disabled telemetry.
    pub fn tick(&mut self) -> bool {
        let Some(now) = self.telemetry.now_ns() else {
            return false;
        };
        if now < self.next_ns {
            return false;
        }
        self.force();
        true
    }

    /// Samples unconditionally (used for the final sample of a run).
    pub fn force(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let snap = self.telemetry.metrics_snapshot();
        // Deadlines advance from the sample time, so a series driven
        // past its deadline stays exactly periodic under a manual clock.
        self.next_ns = snap.at_ns + self.interval_ns;
        self.samples.push(snap);
    }

    /// The samples taken so far.
    pub fn samples(&self) -> &[MetricsSnapshot] {
        &self.samples
    }

    /// Consumes the sampler, returning its series.
    pub fn into_samples(self) -> Vec<MetricsSnapshot> {
        self.samples
    }
}

/// Serializes a sample series as the `petaxct-metrics-v1` document.
pub fn metrics_series_json(samples: &[MetricsSnapshot]) -> Json {
    Json::object(vec![
        ("schema", Json::from("petaxct-metrics-v1")),
        (
            "samples",
            Json::Arr(samples.iter().map(sample_json).collect()),
        ),
    ])
}

fn sample_json(snap: &MetricsSnapshot) -> Json {
    Json::object(vec![
        ("at_ns", Json::from(snap.at_ns)),
        (
            "tracks",
            Json::Arr(
                snap.tracks
                    .iter()
                    .map(|t| {
                        Json::object(vec![
                            ("track", Json::from(u64::from(t.track))),
                            (
                                "counters",
                                Json::object(
                                    t.counters
                                        .iter()
                                        .map(|&(id, v)| (id.as_str(), Json::from(v)))
                                        .collect(),
                                ),
                            ),
                            (
                                "gauges",
                                Json::object(
                                    t.gauges
                                        .iter()
                                        .map(|&(id, v)| (id.as_str(), Json::from(v)))
                                        .collect(),
                                ),
                            ),
                            (
                                "histograms",
                                Json::Arr(
                                    t.histograms
                                        .iter()
                                        .map(|(id, h)| {
                                            Json::object(vec![
                                                ("metric", Json::from(id.as_str())),
                                                ("count", Json::from(h.count())),
                                                ("min_ns", Json::from(h.min_ns())),
                                                ("max_ns", Json::from(h.max_ns())),
                                                ("sum_ns", Json::from(h.sum_ns())),
                                                (
                                                    "buckets",
                                                    Json::Arr(
                                                        h.buckets()
                                                            .into_iter()
                                                            .map(|(lo, hi, count)| {
                                                                Json::object(vec![
                                                                    ("lo_ns", Json::from(lo)),
                                                                    ("hi_ns", Json::from(hi)),
                                                                    ("count", Json::from(count)),
                                                                ])
                                                            })
                                                            .collect(),
                                                    ),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Dotted metric name → Prometheus metric name.
fn prom_name(id: MetricId) -> String {
    format!("petaxct_{}", id.as_str().replace('.', "_"))
}

/// Renders the latest snapshot in the Prometheus text exposition
/// format, one time series per `(metric, track)` pair. Counters and
/// gauges map directly; log2 histograms map to cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut seen_help: Vec<MetricId> = Vec::new();
    let mut help = |out: &mut String, id: MetricId, prom_kind: &str| {
        if !seen_help.contains(&id) {
            seen_help.push(id);
            let name = prom_name(id);
            out.push_str(&format!("# HELP {name} PetaXCT metric {}\n", id.as_str()));
            out.push_str(&format!("# TYPE {name} {prom_kind}\n"));
        }
    };
    for track in &snap.tracks {
        for &(id, v) in &track.counters {
            help(&mut out, id, "counter");
            out.push_str(&format!(
                "{}{{track=\"{}\"}} {v}\n",
                prom_name(id),
                track.track
            ));
        }
        for &(id, v) in &track.gauges {
            help(&mut out, id, "gauge");
            out.push_str(&format!(
                "{}{{track=\"{}\"}} {v}\n",
                prom_name(id),
                track.track
            ));
        }
        for &(id, ref hist) in &track.histograms {
            help(&mut out, id, "histogram");
            let name = prom_name(id);
            let mut cumulative = 0u64;
            for (_, hi, count) in hist.buckets() {
                cumulative += count;
                out.push_str(&format!(
                    "{name}_bucket{{track=\"{}\",le=\"{hi}\"}} {cumulative}\n",
                    track.track
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{track=\"{}\",le=\"+Inf\"}} {}\n",
                track.track,
                hist.count()
            ));
            out.push_str(&format!(
                "{name}_sum{{track=\"{}\"}} {}\n",
                track.track,
                hist.sum_ns()
            ));
            out.push_str(&format!(
                "{name}_count{{track=\"{}\"}} {}\n",
                track.track,
                hist.count()
            ));
        }
    }
    out
}

/// Renders a sample series as CSV with one row per `(sample, track,
/// metric)` value. Histograms contribute `<name>.count` and
/// `<name>.sum_ns` rows.
pub fn metrics_csv(samples: &[MetricsSnapshot]) -> String {
    let mut out = String::from("at_ns,track,metric,value\n");
    for snap in samples {
        for track in &snap.tracks {
            let mut row = |metric: String, value: String| {
                out.push_str(&format!(
                    "{},{},{metric},{value}\n",
                    snap.at_ns, track.track
                ));
            };
            for &(id, v) in &track.counters {
                row(id.as_str().to_string(), v.to_string());
            }
            for &(id, v) in &track.gauges {
                row(id.as_str().to_string(), v.to_string());
            }
            for (id, hist) in &track.histograms {
                row(format!("{}.count", id.as_str()), hist.count().to_string());
                row(format!("{}.sum_ns", id.as_str()), hist.sum_ns().to_string());
            }
        }
    }
    out
}

/// Renders the one-line human progress report: slab and iteration
/// progress, the latest residual, and an ETA extrapolated from the
/// fraction of total work done over `elapsed_ns`.
///
/// Work is measured in solver iterations: the plan's slab count (the
/// `progress.slabs.total` gauge) times iterations per slab
/// (`progress.iters_per_slab`), against the busiest rank's completed
/// iterations. Returns a placeholder until the totals gauges are set.
pub fn render_progress(snap: &MetricsSnapshot, elapsed_ns: u64) -> String {
    let slabs_total = snap.gauge(MetricId::ProgressSlabsTotal).unwrap_or(0.0);
    let iters_per_slab = snap.gauge(MetricId::ProgressItersPerSlab).unwrap_or(0.0);
    if slabs_total < 1.0 || iters_per_slab < 1.0 {
        return "starting…".to_string();
    }
    let slabs_done = snap.counter_total(MetricId::StreamSlabsDone) as f64;
    let iters_done = snap.counter_max(MetricId::SolverIterations) as f64;
    // Iterations inside the current slab (the busiest rank's count is
    // cumulative across finished slabs).
    let cur_iter = (iters_done - slabs_done * iters_per_slab).clamp(0.0, iters_per_slab);
    let done_units = slabs_done * iters_per_slab + cur_iter;
    let total_units = slabs_total * iters_per_slab;
    let fraction = (done_units / total_units).clamp(0.0, 1.0);
    let mut line = format!(
        "slab {}/{} · iter {}/{}",
        (slabs_done as u64 + u64::from(slabs_done < slabs_total)).min(slabs_total as u64),
        slabs_total as u64,
        cur_iter as u64,
        iters_per_slab as u64,
    );
    if let Some(residual) = snap.gauge(MetricId::SolverResidual) {
        line.push_str(&format!(" · residual {residual:.3e}"));
    }
    line.push_str(&format!(" · {:.1}%", fraction * 100.0));
    if fraction > 0.0 && fraction < 1.0 {
        let eta_ns = (elapsed_ns as f64 * (1.0 - fraction) / fraction) as u64;
        line.push_str(&format!(" · eta {}", fmt_ns(eta_ns).trim_start()));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManualClock, Telemetry};
    use std::sync::Arc;

    #[test]
    fn sampler_is_deadline_driven_and_periodic() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let mut sampler = Sampler::new(tele.clone(), 100);
        assert!(sampler.tick(), "first tick samples at t=0");
        assert!(!sampler.tick(), "deadline not reached");
        clock.set(99);
        assert!(!sampler.tick());
        clock.set(100);
        tele.metric_add(MetricId::CommSendBytes, 7);
        assert!(sampler.tick());
        clock.set(250);
        assert!(sampler.tick(), "late tick still samples");
        let at: Vec<u64> = sampler.samples().iter().map(|s| s.at_ns).collect();
        assert_eq!(at, vec![0, 100, 250]);
        assert_eq!(
            sampler.samples()[1].counter_total(MetricId::CommSendBytes),
            7
        );
    }

    #[test]
    fn disabled_sampler_never_samples() {
        let mut sampler = Sampler::new(Telemetry::disabled(), 1);
        assert!(!sampler.tick());
        sampler.force();
        assert!(sampler.samples().is_empty());
    }

    #[test]
    fn json_series_round_trips() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        tele.metric_add(MetricId::CommSendMsgs, 3);
        tele.gauge_set(MetricId::SolverResidual, 0.5);
        tele.observe_ns(MetricId::CommWaitNs, 1000);
        let mut sampler = Sampler::new(tele, 10);
        sampler.force();
        let doc = metrics_series_json(sampler.samples());
        let parsed = Json::parse(&doc.to_string()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("petaxct-metrics-v1")
        );
        let samples = parsed.get("samples").and_then(Json::as_array).unwrap();
        assert_eq!(samples.len(), 1);
        let track = samples[0].get("tracks").and_then(Json::as_array).unwrap()[0].clone();
        assert_eq!(
            track
                .get("counters")
                .and_then(|c| c.get("comm.send.msgs"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            track
                .get("gauges")
                .and_then(|g| g.get("solver.residual"))
                .and_then(Json::as_f64),
            Some(0.5)
        );
        let hists = track.get("histograms").and_then(Json::as_array).unwrap();
        assert_eq!(
            hists[0].get("metric").and_then(Json::as_str),
            Some("comm.wait.ns")
        );
    }

    #[test]
    fn prometheus_text_has_help_type_and_histogram_series() {
        let tele = Telemetry::enabled();
        tele.metric_add(MetricId::CommSendBytes, 42);
        tele.gauge_set(MetricId::CommMailboxDepth, 2.0);
        tele.observe_ns(MetricId::CommWaitNs, 3);
        tele.observe_ns(MetricId::CommWaitNs, 900);
        let text = prometheus_text(&tele.metrics_snapshot());
        assert!(text.contains("# HELP petaxct_comm_send_bytes"), "{text}");
        assert!(text.contains("# TYPE petaxct_comm_send_bytes counter"));
        assert!(text.contains("petaxct_comm_send_bytes{track=\"0\"} 42"));
        assert!(text.contains("# TYPE petaxct_comm_mailbox_depth gauge"));
        assert!(text.contains("petaxct_comm_wait_ns_bucket{track=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("petaxct_comm_wait_ns_sum{track=\"0\"} 903"));
        assert!(text.contains("petaxct_comm_wait_ns_count{track=\"0\"} 2"));
        // Cumulative bucket counts: the le="1024" bucket includes the
        // 3 ns recording from the le="4" bucket.
        assert!(text.contains("petaxct_comm_wait_ns_bucket{track=\"0\",le=\"1024\"} 2"));
    }

    #[test]
    fn csv_lists_each_metric_value() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        clock.set(5);
        tele.metric_add(MetricId::StreamSlabsDone, 1);
        let mut sampler = Sampler::new(tele, 1);
        sampler.force();
        let csv = metrics_csv(sampler.samples());
        assert!(csv.starts_with("at_ns,track,metric,value\n"), "{csv}");
        assert!(csv.contains("5,0,stream.slabs.done,1\n"), "{csv}");
    }

    #[test]
    fn progress_line_reports_slab_iter_residual_and_eta() {
        let tele = Telemetry::enabled();
        assert_eq!(render_progress(&tele.metrics_snapshot(), 0), "starting…");
        tele.gauge_set(MetricId::ProgressSlabsTotal, 4.0);
        tele.gauge_set(MetricId::ProgressItersPerSlab, 10.0);
        tele.metric_add(MetricId::StreamSlabsDone, 1);
        tele.metric_add(MetricId::SolverIterations, 15);
        tele.gauge_set(MetricId::SolverResidual, 2.5e-3);
        // 15 of 40 iteration-units done in 3 s → 5 s remain.
        let line = render_progress(&tele.metrics_snapshot(), 3_000_000_000);
        assert!(line.contains("slab 2/4"), "{line}");
        assert!(line.contains("iter 5/10"), "{line}");
        assert!(line.contains("residual 2.500e-3"), "{line}");
        assert!(line.contains("37.5%"), "{line}");
        assert!(line.contains("eta 5.000  s"), "{line}");
    }
}
