//! Span-based tracing and phase-breakdown reporting for PetaXCT.
//!
//! The paper's evidence is instrumentation: Fig. 10's per-phase time
//! breakdown (SpMM kernels vs. socket/node/global reduction), Fig. 6's
//! communication matrices, and the measured inter-node volume savings of
//! hierarchical reduction. This crate provides the measurement layer those
//! figures are rebuilt from:
//!
//! * [`Telemetry`] — a cloneable handle that records RAII-timed spans and
//!   scalar events into a thread-safe collector. A disabled handle (the
//!   default) is a no-op: no locking, no allocation, nothing on the hot
//!   path.
//! * [`Phase`] — the stable phase taxonomy (SpMM forward/transpose,
//!   precision conversion, socket/node/global reduction, halo exchange,
//!   solver iterations/bookkeeping, I/O).
//! * [`Clock`] — injectable time source with a monotonic default
//!   ([`MonotonicClock`]) and a deterministic [`ManualClock`] so
//!   span-duration tests are exact rather than sleep-based.
//! * Sinks — [`Breakdown`] renders a Fig. 10-style per-phase table and a
//!   machine-readable JSON report; [`chrome_trace`] emits a Chrome
//!   `trace_event` file loadable in `about://tracing` / Perfetto.
//! * Causal layer — the comm runtime records send→recv match edges
//!   ([`EdgeRecord`]); [`CausalAnalysis`] fuses them with the span
//!   tracks into a happens-before DAG and extracts the critical path
//!   and per-rank slack, and [`PhaseHistograms`] buckets span durations
//!   per phase in log2 buckets.
//! * [`Json`] — a tiny dependency-free JSON value (builder + parser) used
//!   by the report sinks and by tests that validate report schemas.
//! * Metrics — [`MetricId`] is the stable counter/gauge/histogram
//!   taxonomy; every enabled track owns a lock-free atomic slab that
//!   instrumented subsystems update and [`Sampler`] copies into
//!   [`MetricsSnapshot`] time series, exported as `petaxct-metrics-v1`
//!   JSON ([`metrics_series_json`]), Prometheus text
//!   ([`prometheus_text`]), CSV ([`metrics_csv`]), or the human
//!   [`render_progress`] line.
//! * Cost profiler — [`Telemetry::enable_profile`] installs a
//!   preallocated slab of relaxed atomics that attributes every span's
//!   *self* time to a [`CostComponent`] keyed by (track, streamed slab,
//!   fused slice); [`Telemetry::profile_snapshot`] copies it out as a
//!   [`ProfileSnapshot`] for the `petaxct-profile-v1` drift/skew
//!   artifact. Unprofiled and disabled handles pay one atomic load.
//! * Flight recorder — each track keeps its last [`FLIGHT_CAPACITY`]
//!   spans/events/metric updates in a preallocated ring
//!   ([`FlightEvent`]); [`Telemetry::flight_dump_json`] and
//!   [`install_flight_panic_hook`] turn them into a
//!   `petaxct-flightrec-v1` post-mortem when a run dies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod causal;
mod clock;
mod flight;
mod histogram;
mod json;
mod metrics;
mod phase;
mod profile;
mod report;
mod sampler;
mod span;

pub use causal::{CausalAnalysis, PathStep, RankPath};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use flight::{
    flight_json, install_flight_panic_hook, FlightEvent, FlightKind, FLIGHT_CAPACITY,
};
pub use histogram::{DurationHistogram, PhaseHistograms};
pub use json::Json;
pub use metrics::{MetricId, MetricKind, MetricsSnapshot, TrackMetricsSnapshot, ALL_METRICS};
pub use phase::Phase;
pub use profile::{CostComponent, ProfileDims, ProfileSnapshot, ALL_COMPONENTS, COMPONENT_COUNT};
pub use report::{chrome_trace, fmt_ns, Breakdown, PhaseStat};
pub use sampler::{metrics_csv, metrics_series_json, prometheus_text, render_progress, Sampler};
pub use span::{EdgeRecord, EventRecord, SpanGuard, SpanRecord, Telemetry, TelemetrySnapshot};
