//! A minimal JSON value: builder, serializer, and parser.
//!
//! The container has no serde, so the report sinks build [`Json`] values
//! by hand and the integration tests parse emitted files back with
//! [`Json::parse`] to validate schemas. Only what the telemetry reports
//! need is implemented; numbers are `f64` (integral values are printed
//! without a fractional part).

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integral values round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{:.0}", n));
                } else {
                    out.push_str(&format!("{}", n));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    // xct-allow(no-panic): infallible — rest re-decoded from a non-empty valid-UTF-8 suffix
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        // xct-allow(no-panic): infallible — the scanned range is all ASCII number bytes
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {}", start))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let doc = Json::object(vec![
            ("schema", Json::from("petaxct-telemetry-v1")),
            ("wall_seconds", Json::from(1.5)),
            (
                "phases",
                Json::from(vec![Json::object(vec![
                    ("phase", Json::from("spmm.forward")),
                    ("count", Json::from(12u64)),
                ])]),
            ),
            ("note", Json::from("line\nbreak \"quoted\"")),
            ("enabled", Json::from(true)),
            ("nothing", Json::Null),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").unwrap().as_str(),
            Some("petaxct-telemetry-v1")
        );
        assert_eq!(back.get("wall_seconds").unwrap().as_f64(), Some(1.5));
        let phases = back.get("phases").unwrap().as_array().unwrap();
        assert_eq!(phases[0].get("count").unwrap().as_f64(), Some(12.0));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(0.125).to_string(), "0.125");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let back = Json::parse(" { \"a\" : [ 1 , -2.5e1 ] , \"b\" : \"x\\u0041\" } ").unwrap();
        assert_eq!(
            back.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(back.get("b").unwrap().as_str(), Some("xA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("true false").is_err());
    }
}
