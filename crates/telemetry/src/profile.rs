//! Hierarchical cost profiling: preallocated per-track cost slabs.
//!
//! The profiler attributes span *self time* (duration minus enclosed
//! child spans) to a fixed [`CostComponent`] taxonomy, keyed by
//! `(track, slab, fused-slice)`. Storage is a single flat slab of
//! relaxed atomics sized once at [`crate::Telemetry::enable_profile`]
//! time, so recording from `// xct-hot` regions is a bounds check plus
//! one `fetch_add` — no locks, no allocation. When profiling is not
//! enabled the cost on every span close is a single `OnceLock::get`
//! returning `None`.
//!
//! Per-*tile* costs are deliberately **not** timed here: timing
//! individual Hilbert tiles inside the SpMM would change the summation
//! order and break bit-identity. Instead the artifact builder
//! (`xct-core`) spreads a rank's measured SpMM nanoseconds over its
//! tiles proportionally to per-tile nonzeros — see DESIGN.md §3j.

use crate::Phase;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The cost components the profiler attributes self time to.
///
/// The dotted names returned by [`CostComponent::as_str`] are part of
/// the `petaxct-profile-v1` schema contract; add variants rather than
/// renaming.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostComponent {
    /// Forward/transpose SpMM kernel self time.
    SpmmCompute,
    /// Precision gather/convert staging self time.
    GatherConvert,
    /// Intra-socket reduction self time.
    ReduceSocket,
    /// Intra-node (cross-socket) reduction self time.
    ReduceNode,
    /// Global exchange self time (inter-node reduce, halo scatter,
    /// control-plane collectives).
    ReduceGlobal,
    /// Blocking waits on in-flight exchanges.
    CommWait,
    /// Sinogram-read / slice-write stalls.
    IoStall,
}

/// Every component, in storage order.
pub const ALL_COMPONENTS: [CostComponent; COMPONENT_COUNT] = [
    CostComponent::SpmmCompute,
    CostComponent::GatherConvert,
    CostComponent::ReduceSocket,
    CostComponent::ReduceNode,
    CostComponent::ReduceGlobal,
    CostComponent::CommWait,
    CostComponent::IoStall,
];

/// Number of cost components (the innermost storage stride).
pub const COMPONENT_COUNT: usize = 7;

impl CostComponent {
    /// The stable dotted name used in the `petaxct-profile-v1` artifact.
    pub fn as_str(self) -> &'static str {
        match self {
            CostComponent::SpmmCompute => "spmm.compute",
            CostComponent::GatherConvert => "gather.convert",
            CostComponent::ReduceSocket => "reduce.socket",
            CostComponent::ReduceNode => "reduce.node",
            CostComponent::ReduceGlobal => "reduce.global",
            CostComponent::CommWait => "comm.wait",
            CostComponent::IoStall => "io.stall",
        }
    }

    /// This component's index in [`ALL_COMPONENTS`] (the storage slot).
    pub fn index(self) -> usize {
        match self {
            CostComponent::SpmmCompute => 0,
            CostComponent::GatherConvert => 1,
            CostComponent::ReduceSocket => 2,
            CostComponent::ReduceNode => 3,
            CostComponent::ReduceGlobal => 4,
            CostComponent::CommWait => 5,
            CostComponent::IoStall => 6,
        }
    }

    /// Parses a dotted component name back into a component.
    pub fn parse(name: &str) -> Option<CostComponent> {
        ALL_COMPONENTS.iter().copied().find(|c| c.as_str() == name)
    }

    /// Maps a span phase to the component its self time is charged to.
    ///
    /// Phases outside the cost taxonomy (solver bookkeeping, `Total`,
    /// custom phases) return `None` and are not attributed — their
    /// self time is orchestration, not per-tile cost.
    pub fn from_phase(phase: Phase) -> Option<CostComponent> {
        match phase {
            Phase::SpmmForward | Phase::SpmmTranspose => Some(CostComponent::SpmmCompute),
            Phase::PrecisionConvert => Some(CostComponent::GatherConvert),
            Phase::ReduceSocket => Some(CostComponent::ReduceSocket),
            Phase::ReduceNode => Some(CostComponent::ReduceNode),
            Phase::ReduceGlobal | Phase::HaloExchange | Phase::Allreduce => {
                Some(CostComponent::ReduceGlobal)
            }
            Phase::CommWait => Some(CostComponent::CommWait),
            Phase::Io => Some(CostComponent::IoStall),
            _ => None,
        }
    }
}

impl std::fmt::Display for CostComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The key-space extents a profile slab is sized for.
///
/// Costs recorded with a track, slab, or slice index outside these
/// extents are dropped (never reallocated): the slab is sized once,
/// before any rank thread runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileDims {
    /// Number of tracks (ranks, plus the caller's track 0).
    pub tracks: usize,
    /// Number of streamed slabs (1 for resident runs).
    pub slabs: usize,
    /// Fused slices per slab (the fusing factor).
    pub slices: usize,
}

impl ProfileDims {
    /// Total number of `(track, slab, slice, component)` cells.
    pub fn cell_count(&self) -> usize {
        self.tracks * self.slabs * self.slices * COMPONENT_COUNT
    }
}

/// Preallocated cost storage shared by every track of one collector.
///
/// The *slab* context is collector-global (the streaming loop runs one
/// slab at a time and re-forks rank handles per slab); the *slice*
/// context is per-track (pipelined ranks work different fused slices
/// concurrently) and lives on the track handle.
pub(crate) struct ProfileSlabs {
    tracks: usize,
    slabs: usize,
    slices: usize,
    /// Current streamed-slab index, set by the streaming loop.
    slab_ctx: AtomicU32,
    /// Flat `[track][slab][slice][component]` nanosecond accumulators.
    cells: Vec<AtomicU64>,
}

impl ProfileSlabs {
    pub(crate) fn new(dims: ProfileDims) -> ProfileSlabs {
        let mut cells = Vec::with_capacity(dims.cell_count());
        cells.resize_with(dims.cell_count(), || AtomicU64::new(0));
        ProfileSlabs {
            tracks: dims.tracks,
            slabs: dims.slabs,
            slices: dims.slices,
            slab_ctx: AtomicU32::new(0),
            cells,
        }
    }

    pub(crate) fn set_slab(&self, slab: u32) {
        self.slab_ctx.store(slab, Ordering::Relaxed);
    }

    /// Charges `ns` to `(track, current slab, slice, component)`.
    /// Out-of-range keys are dropped, never resized.
    pub(crate) fn record(&self, track: u32, slice: u32, component: CostComponent, ns: u64) {
        let (track, slice) = (track as usize, slice as usize);
        let slab = self.slab_ctx.load(Ordering::Relaxed) as usize;
        if track >= self.tracks || slab >= self.slabs || slice >= self.slices {
            return;
        }
        let index = ((track * self.slabs + slab) * self.slices + slice) * COMPONENT_COUNT
            + component.index();
        self.cells[index].fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            tracks: self.tracks,
            slabs: self.slabs,
            slices: self.slices,
            cells: self
                .cells
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of the profile slab.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Track extent the slab was sized for.
    pub tracks: usize,
    /// Slab extent.
    pub slabs: usize,
    /// Fused-slice extent.
    pub slices: usize,
    /// Flat `[track][slab][slice][component]` nanoseconds; length is
    /// `tracks * slabs * slices * COMPONENT_COUNT`.
    pub cells: Vec<u64>,
}

impl ProfileSnapshot {
    /// The nanoseconds charged to one `(track, slab, slice, component)`
    /// cell, or 0 when the key is out of range.
    pub fn get(&self, track: usize, slab: usize, slice: usize, component: CostComponent) -> u64 {
        if track >= self.tracks || slab >= self.slabs || slice >= self.slices {
            return 0;
        }
        let index = ((track * self.slabs + slab) * self.slices + slice) * COMPONENT_COUNT
            + component.index();
        self.cells.get(index).copied().unwrap_or(0)
    }

    /// Total nanoseconds charged to `component` on `track`, summed over
    /// every slab and slice.
    pub fn track_component_ns(&self, track: usize, component: CostComponent) -> u64 {
        let mut total = 0u64;
        for slab in 0..self.slabs {
            for slice in 0..self.slices {
                total += self.get(track, slab, slice, component);
            }
        }
        total
    }

    /// Total nanoseconds charged to `component` across all keys.
    pub fn component_ns(&self, component: CostComponent) -> u64 {
        (0..self.tracks)
            .map(|t| self.track_component_ns(t, component))
            .sum()
    }

    /// Sum over every cell: the profiler's total attributed time.
    pub fn total_ns(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Whether any cost at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_names_and_indices_are_a_dense_bijection() {
        for (i, c) in ALL_COMPONENTS.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(CostComponent::parse(c.as_str()), Some(*c));
        }
        let mut names: Vec<&str> = ALL_COMPONENTS.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COMPONENT_COUNT);
        assert_eq!(CostComponent::parse("no.such.component"), None);
    }

    #[test]
    fn phase_mapping_covers_the_cost_taxonomy_and_skips_orchestration() {
        assert_eq!(
            CostComponent::from_phase(Phase::SpmmForward),
            Some(CostComponent::SpmmCompute)
        );
        assert_eq!(
            CostComponent::from_phase(Phase::SpmmTranspose),
            Some(CostComponent::SpmmCompute)
        );
        assert_eq!(
            CostComponent::from_phase(Phase::PrecisionConvert),
            Some(CostComponent::GatherConvert)
        );
        assert_eq!(
            CostComponent::from_phase(Phase::ReduceSocket),
            Some(CostComponent::ReduceSocket)
        );
        assert_eq!(
            CostComponent::from_phase(Phase::ReduceNode),
            Some(CostComponent::ReduceNode)
        );
        for p in [Phase::ReduceGlobal, Phase::HaloExchange, Phase::Allreduce] {
            assert_eq!(
                CostComponent::from_phase(p),
                Some(CostComponent::ReduceGlobal)
            );
        }
        assert_eq!(
            CostComponent::from_phase(Phase::CommWait),
            Some(CostComponent::CommWait)
        );
        assert_eq!(
            CostComponent::from_phase(Phase::Io),
            Some(CostComponent::IoStall)
        );
        for p in [
            Phase::SolverIteration,
            Phase::SolverSetup,
            Phase::Total,
            Phase::Custom("bench.warmup"),
        ] {
            assert_eq!(CostComponent::from_phase(p), None);
        }
    }

    #[test]
    fn slabs_accumulate_and_drop_out_of_range_keys() {
        let slabs = ProfileSlabs::new(ProfileDims {
            tracks: 2,
            slabs: 2,
            slices: 2,
        });
        slabs.record(0, 0, CostComponent::SpmmCompute, 10);
        slabs.record(0, 0, CostComponent::SpmmCompute, 5);
        slabs.set_slab(1);
        slabs.record(1, 1, CostComponent::CommWait, 7);
        // Out of range on every axis: dropped, not resized.
        slabs.record(2, 0, CostComponent::SpmmCompute, 99);
        slabs.record(0, 2, CostComponent::SpmmCompute, 99);
        slabs.set_slab(2);
        slabs.record(0, 0, CostComponent::SpmmCompute, 99);
        let snap = slabs.snapshot();
        assert_eq!(snap.get(0, 0, 0, CostComponent::SpmmCompute), 15);
        assert_eq!(snap.get(1, 1, 1, CostComponent::CommWait), 7);
        assert_eq!(snap.total_ns(), 22);
        assert_eq!(snap.component_ns(CostComponent::SpmmCompute), 15);
        assert_eq!(snap.track_component_ns(1, CostComponent::CommWait), 7);
        assert!(!snap.is_empty());
        assert_eq!(snap.get(9, 0, 0, CostComponent::SpmmCompute), 0);
    }
}
