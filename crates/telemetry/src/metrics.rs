//! The always-available metrics registry: named counters, gauges, and
//! log2 duration histograms with a stable taxonomy.
//!
//! Spans answer *where did the time go* after a run; metrics answer *is
//! the run healthy right now*. Each telemetry track (rank) owns one
//! fixed-size slab of atomics — no locks on the hot path, no allocation
//! after the track is forked — and a sampler thread (or test) copies
//! consistent-enough snapshots out at any time through the shared
//! collector. A disabled [`crate::Telemetry`] handle records nothing:
//! every metric call is one `None` check.
//!
//! The taxonomy is a closed enum rather than free-form strings so that
//! exporters, dashboards, and tests agree on names forever, and so the
//! per-track storage can be a flat array indexed by discriminant.

use crate::DurationHistogram;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counter metrics (the first `COUNTER_COUNT` discriminants).
const COUNTER_COUNT: usize = 13;
/// Number of gauge metrics (discriminants after the counters).
const GAUGE_COUNT: usize = 9;
/// Counters and gauges share one scalar slab.
const SCALAR_COUNT: usize = COUNTER_COUNT + GAUGE_COUNT;
/// Number of histogram metrics (the last discriminants).
const HIST_COUNT: usize = 3;

/// Sentinel bit pattern for a gauge that has never been set. It decodes
/// to a NaN, so no meaningful gauge value collides with it.
const GAUGE_UNSET: u64 = u64::MAX;

/// What a metric measures and how it aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`; deltas between samples are rates.
    Counter,
    /// Last-written `f64` (a level, not a total).
    Gauge,
    /// Log2-bucketed duration distribution in nanoseconds.
    Histogram,
}

/// The stable metric taxonomy.
///
/// Names are dotted lowercase and form a public contract with the
/// `petaxct-metrics-v1` schema, the Prometheus exporter, and dashboards;
/// add variants rather than renaming. Discriminant order is storage
/// layout: counters first, then gauges, then histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MetricId {
    // -- counters ----------------------------------------------------
    /// Messages sent by this track.
    CommSendMsgs = 0,
    /// Payload bytes sent by this track.
    CommSendBytes = 1,
    /// Messages matched (received) by this track.
    CommRecvMsgs = 2,
    /// Payload bytes matched by this track. Summed over all tracks,
    /// `comm.send.bytes - comm.recv.bytes` is the bytes still in flight.
    CommRecvBytes = 3,
    /// Fast polls (no sleep, no yield) spent in bounded-backoff waits.
    CommWaitSpins = 4,
    /// `yield_now` calls spent in bounded-backoff waits.
    CommWaitYields = 5,
    /// Sleeps/condvar parks spent waiting for a message.
    CommWaitParks = 6,
    /// Messages whose delivery a chaos schedule delayed.
    CommChaosDelays = 7,
    /// Slab reads served by an already-running prefetch.
    IoPrefetchHits = 8,
    /// Slab reads that had to run synchronously.
    IoPrefetchMisses = 9,
    /// Solver iterations completed on this track.
    SolverIterations = 10,
    /// Slabs fully reconstructed and queued for write-back.
    StreamSlabsDone = 11,
    /// Slices fully reconstructed.
    StreamSlicesDone = 12,
    // -- gauges ------------------------------------------------------
    /// Depth of this rank's mailbox (arrivals + stashed messages) at
    /// its last receive attempt.
    CommMailboxDepth = 13,
    /// Most recent relative residual reported by the solver.
    SolverResidual = 14,
    /// Index of the slab currently reconstructing.
    StreamSlabCurrent = 15,
    /// Total slabs the plan will execute (progress denominator).
    ProgressSlabsTotal = 16,
    /// Solver iterations per slab (progress denominator).
    ProgressItersPerSlab = 17,
    /// Per-rank memory budget the plan was made under, in bytes.
    PlanBudgetBytes = 18,
    /// Bytes per rank the plan actually uses at its chosen fusing.
    PlanUsedBytes = 19,
    /// Whether a prefetch read is in flight (0 or 1).
    IoReadQueue = 20,
    /// Whether a deferred write is in flight (0 or 1).
    IoWriteQueue = 21,
    // -- histograms --------------------------------------------------
    /// Durations of blocking comm waits, in nanoseconds.
    CommWaitNs = 22,
    /// Time the compute thread stalled collecting a slab read.
    IoReadStallNs = 23,
    /// Time the compute thread stalled on the previous slab's write.
    IoWriteStallNs = 24,
}

/// Every metric, in storage order.
pub const ALL_METRICS: [MetricId; SCALAR_COUNT + HIST_COUNT] = [
    MetricId::CommSendMsgs,
    MetricId::CommSendBytes,
    MetricId::CommRecvMsgs,
    MetricId::CommRecvBytes,
    MetricId::CommWaitSpins,
    MetricId::CommWaitYields,
    MetricId::CommWaitParks,
    MetricId::CommChaosDelays,
    MetricId::IoPrefetchHits,
    MetricId::IoPrefetchMisses,
    MetricId::SolverIterations,
    MetricId::StreamSlabsDone,
    MetricId::StreamSlicesDone,
    MetricId::CommMailboxDepth,
    MetricId::SolverResidual,
    MetricId::StreamSlabCurrent,
    MetricId::ProgressSlabsTotal,
    MetricId::ProgressItersPerSlab,
    MetricId::PlanBudgetBytes,
    MetricId::PlanUsedBytes,
    MetricId::IoReadQueue,
    MetricId::IoWriteQueue,
    MetricId::CommWaitNs,
    MetricId::IoReadStallNs,
    MetricId::IoWriteStallNs,
];

impl MetricId {
    /// The stable dotted name.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricId::CommSendMsgs => "comm.send.msgs",
            MetricId::CommSendBytes => "comm.send.bytes",
            MetricId::CommRecvMsgs => "comm.recv.msgs",
            MetricId::CommRecvBytes => "comm.recv.bytes",
            MetricId::CommWaitSpins => "comm.wait.spins",
            MetricId::CommWaitYields => "comm.wait.yields",
            MetricId::CommWaitParks => "comm.wait.parks",
            MetricId::CommChaosDelays => "comm.chaos.delays",
            MetricId::IoPrefetchHits => "io.prefetch.hits",
            MetricId::IoPrefetchMisses => "io.prefetch.misses",
            MetricId::SolverIterations => "solver.iterations",
            MetricId::StreamSlabsDone => "stream.slabs.done",
            MetricId::StreamSlicesDone => "stream.slices.done",
            MetricId::CommMailboxDepth => "comm.mailbox.depth",
            MetricId::SolverResidual => "solver.residual",
            MetricId::StreamSlabCurrent => "stream.slab.current",
            MetricId::ProgressSlabsTotal => "progress.slabs.total",
            MetricId::ProgressItersPerSlab => "progress.iters_per_slab",
            MetricId::PlanBudgetBytes => "plan.budget.bytes",
            MetricId::PlanUsedBytes => "plan.used.bytes",
            MetricId::IoReadQueue => "io.read.queue",
            MetricId::IoWriteQueue => "io.write.queue",
            MetricId::CommWaitNs => "comm.wait.ns",
            MetricId::IoReadStallNs => "io.read.stall.ns",
            MetricId::IoWriteStallNs => "io.write.stall.ns",
        }
    }

    /// What this metric measures.
    pub fn kind(self) -> MetricKind {
        let index = self as usize;
        if index < COUNTER_COUNT {
            MetricKind::Counter
        } else if index < SCALAR_COUNT {
            MetricKind::Gauge
        } else {
            MetricKind::Histogram
        }
    }

    /// Whether the flight recorder logs individual updates of this
    /// metric. Backoff poll counters tick far too often to ring-log.
    pub(crate) fn flight_worthy(self) -> bool {
        !matches!(
            self,
            MetricId::CommWaitSpins | MetricId::CommWaitYields | MetricId::CommWaitParks
        )
    }

    fn scalar_index(self) -> Option<usize> {
        let index = self as usize;
        (index < SCALAR_COUNT).then_some(index)
    }

    fn hist_index(self) -> Option<usize> {
        (self as usize)
            .checked_sub(SCALAR_COUNT)
            .filter(|&i| i < HIST_COUNT)
    }
}

/// A lock-free log2 histogram mirroring [`DurationHistogram`] in
/// atomics. Individual recordings are exact; a concurrent snapshot may
/// tear across fields (count vs. sum), which sampling tolerates.
struct AtomicHistogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: [const { AtomicU64::new(0) }; 65],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, ns: u64) {
        self.buckets[crate::histogram::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Option<DurationHistogram> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let mut counts = [0u64; 65];
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        Some(DurationHistogram::from_raw(
            counts,
            count,
            self.min_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
            self.sum_ns.load(Ordering::Relaxed),
        ))
    }
}

/// One track's metric storage: a flat scalar slab plus the histograms.
/// Allocated once when the track is forked; every update afterwards is
/// a handful of relaxed atomic operations.
pub(crate) struct TrackMetrics {
    scalars: [AtomicU64; SCALAR_COUNT],
    hists: [AtomicHistogram; HIST_COUNT],
}

impl TrackMetrics {
    pub(crate) fn new() -> Self {
        let scalars = std::array::from_fn(|i| {
            // Gauges start at the unset sentinel, counters at zero.
            AtomicU64::new(if i < COUNTER_COUNT { 0 } else { GAUGE_UNSET })
        });
        TrackMetrics {
            scalars,
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }

    pub(crate) fn add(&self, id: MetricId, delta: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Counter, "add on non-counter {id:?}");
        if let Some(index) = id.scalar_index() {
            self.scalars[index].fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub(crate) fn gauge_set(&self, id: MetricId, value: f64) {
        debug_assert_eq!(id.kind(), MetricKind::Gauge, "gauge_set on {id:?}");
        if let Some(index) = id.scalar_index() {
            self.scalars[index].store(value.to_bits(), Ordering::Relaxed);
        }
    }

    pub(crate) fn observe_ns(&self, id: MetricId, ns: u64) {
        debug_assert_eq!(id.kind(), MetricKind::Histogram, "observe on {id:?}");
        if let Some(index) = id.hist_index() {
            self.hists[index].record(ns);
        }
    }

    /// Copies out the touched metrics (untouched ones are omitted so
    /// exports stay compact and tests can assert exact contents).
    pub(crate) fn snapshot(&self, track: u32) -> TrackMetricsSnapshot {
        let mut snap = TrackMetricsSnapshot {
            track,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        for id in ALL_METRICS {
            match id.kind() {
                MetricKind::Counter => {
                    // xct-allow(no-panic): infallible — MetricId::counter ids are scalar by construction
                    let v = self.scalars[id.scalar_index().expect("counter is scalar")]
                        .load(Ordering::Relaxed);
                    if v != 0 {
                        snap.counters.push((id, v));
                    }
                }
                MetricKind::Gauge => {
                    // xct-allow(no-panic): infallible — MetricId::gauge ids are scalar by construction
                    let bits = self.scalars[id.scalar_index().expect("gauge is scalar")]
                        .load(Ordering::Relaxed);
                    if bits != GAUGE_UNSET {
                        snap.gauges.push((id, f64::from_bits(bits)));
                    }
                }
                MetricKind::Histogram => {
                    if let Some(hist) =
                        // xct-allow(no-panic): infallible — histogram ids carry a slot by construction
                        self.hists[id.hist_index().expect("histogram slot")].snapshot()
                    {
                        snap.histograms.push((id, hist));
                    }
                }
            }
        }
        snap
    }
}

/// One track's touched metrics at snapshot time.
#[derive(Clone, Debug, Default)]
pub struct TrackMetricsSnapshot {
    /// Track (rank) id.
    pub track: u32,
    /// Non-zero counters, in taxonomy order.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauges that have been set at least once, in taxonomy order.
    pub gauges: Vec<(MetricId, f64)>,
    /// Histograms with at least one recording, in taxonomy order.
    pub histograms: Vec<(MetricId, DurationHistogram)>,
}

impl TrackMetricsSnapshot {
    /// This track's value of a counter (0 when untouched).
    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters
            .iter()
            .find(|&&(i, _)| i == id)
            .map_or(0, |&(_, v)| v)
    }

    /// This track's value of a gauge, if it was ever set.
    pub fn gauge(&self, id: MetricId) -> Option<f64> {
        self.gauges.iter().find(|&&(i, _)| i == id).map(|&(_, v)| v)
    }

    /// This track's histogram for `id`, if anything was recorded.
    pub fn histogram(&self, id: MetricId) -> Option<&DurationHistogram> {
        self.histograms
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, h)| h)
    }

    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    fn merge(&mut self, other: TrackMetricsSnapshot) {
        for (id, v) in other.counters {
            match self.counters.iter_mut().find(|(i, _)| *i == id) {
                Some((_, have)) => *have += v,
                None => self.counters.push((id, v)),
            }
        }
        for (id, v) in other.gauges {
            // Same-track gauges from distinct handles: last registration
            // wins; in practice each track forks one handle.
            if !self.gauges.iter().any(|(i, _)| *i == id) {
                self.gauges.push((id, v));
            }
        }
        for (id, h) in other.histograms {
            if !self.histograms.iter().any(|(i, _)| *i == id) {
                self.histograms.push((id, h));
            }
        }
    }
}

/// A point-in-time copy of every track's touched metrics.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Collector clock time the snapshot was taken at.
    pub at_ns: u64,
    /// Per-track metrics, ascending by track id; tracks with nothing
    /// recorded are omitted.
    pub tracks: Vec<TrackMetricsSnapshot>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from per-handle slabs, merging slabs that share
    /// a track id and dropping untouched tracks.
    pub(crate) fn assemble(at_ns: u64, slabs: Vec<TrackMetricsSnapshot>) -> MetricsSnapshot {
        let mut tracks: Vec<TrackMetricsSnapshot> = Vec::new();
        for slab in slabs {
            if slab.is_empty() {
                continue;
            }
            match tracks.iter_mut().find(|t| t.track == slab.track) {
                Some(t) => t.merge(slab),
                None => tracks.push(slab),
            }
        }
        tracks.sort_by_key(|t| t.track);
        MetricsSnapshot { at_ns, tracks }
    }

    /// The snapshot for one track, if it recorded anything.
    pub fn track(&self, track: u32) -> Option<&TrackMetricsSnapshot> {
        self.tracks.iter().find(|t| t.track == track)
    }

    /// A counter summed over every track.
    pub fn counter_total(&self, id: MetricId) -> u64 {
        self.tracks.iter().map(|t| t.counter(id)).sum()
    }

    /// The value of a gauge on the lowest track that set it.
    pub fn gauge(&self, id: MetricId) -> Option<f64> {
        self.tracks.iter().find_map(|t| t.gauge(id))
    }

    /// The maximum of a counter across tracks (e.g. the busiest rank's
    /// iteration count for progress estimation).
    pub fn counter_max(&self, id: MetricId) -> u64 {
        self.tracks.iter().map(|t| t.counter(id)).max().unwrap_or(0)
    }

    /// Payload bytes sent but not yet matched anywhere, derived from the
    /// send/recv counters (per-peer totals live in `xct-comm`'s meter).
    pub fn inflight_bytes(&self) -> u64 {
        self.counter_total(MetricId::CommSendBytes)
            .saturating_sub(self.counter_total(MetricId::CommRecvBytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_dense_unique_and_ordered() {
        for (index, id) in ALL_METRICS.iter().enumerate() {
            assert_eq!(*id as usize, index, "{id:?} out of storage order");
        }
        let mut names: Vec<&str> = ALL_METRICS.iter().map(|id| id.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_METRICS.len(), "duplicate metric name");
        assert_eq!(MetricId::CommSendMsgs.kind(), MetricKind::Counter);
        assert_eq!(MetricId::SolverResidual.kind(), MetricKind::Gauge);
        assert_eq!(MetricId::CommWaitNs.kind(), MetricKind::Histogram);
    }

    #[test]
    fn slab_records_and_snapshots_touched_metrics_only() {
        let slab = TrackMetrics::new();
        slab.add(MetricId::CommSendBytes, 128);
        slab.add(MetricId::CommSendBytes, 64);
        slab.gauge_set(MetricId::SolverResidual, 0.25);
        slab.gauge_set(MetricId::SolverResidual, 0.125);
        slab.observe_ns(MetricId::CommWaitNs, 0);
        slab.observe_ns(MetricId::CommWaitNs, 1000);
        let snap = slab.snapshot(3);
        assert_eq!(snap.track, 3);
        assert_eq!(snap.counters, vec![(MetricId::CommSendBytes, 192)]);
        assert_eq!(snap.gauge(MetricId::SolverResidual), Some(0.125));
        assert_eq!(snap.gauge(MetricId::CommMailboxDepth), None);
        let hist = snap.histogram(MetricId::CommWaitNs).expect("recorded");
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.sum_ns(), 1000);
        assert_eq!(hist.buckets(), vec![(0, 1, 1), (512, 1024, 1)]);
        assert!(snap.histogram(MetricId::IoReadStallNs).is_none());
    }

    #[test]
    fn assemble_merges_same_track_slabs_and_sorts() {
        let a = TrackMetrics::new();
        a.add(MetricId::CommSendMsgs, 2);
        let b = TrackMetrics::new();
        b.add(MetricId::CommSendMsgs, 3);
        let c = TrackMetrics::new();
        c.add(MetricId::SolverIterations, 1);
        let snap = MetricsSnapshot::assemble(
            77,
            vec![
                c.snapshot(5),
                a.snapshot(1),
                b.snapshot(1),
                TrackMetrics::new().snapshot(9),
            ],
        );
        assert_eq!(snap.at_ns, 77);
        assert_eq!(snap.tracks.len(), 2, "untouched track 9 omitted");
        assert_eq!(snap.tracks[0].track, 1);
        assert_eq!(snap.counter_total(MetricId::CommSendMsgs), 5);
        assert_eq!(snap.counter_max(MetricId::SolverIterations), 1);
    }

    #[test]
    fn inflight_bytes_derives_from_send_minus_recv() {
        let sender = TrackMetrics::new();
        sender.add(MetricId::CommSendBytes, 100);
        let receiver = TrackMetrics::new();
        receiver.add(MetricId::CommRecvBytes, 60);
        let snap = MetricsSnapshot::assemble(0, vec![sender.snapshot(0), receiver.snapshot(1)]);
        assert_eq!(snap.inflight_bytes(), 40);
    }
}
