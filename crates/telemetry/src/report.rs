//! Sinks: the Fig. 10-style phase breakdown table, the JSON report
//! fragment, and the Chrome `trace_event` exporter.

use crate::{EventRecord, Json, Phase, TelemetrySnapshot};

/// Aggregated timing for one phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase label.
    pub phase: Phase,
    /// Number of spans with this label.
    pub count: u64,
    /// Total (inclusive) time: sum of span durations.
    pub total_ns: u64,
    /// Self (exclusive) time: total minus time spent in direct children.
    pub self_ns: u64,
}

/// Per-phase breakdown of a snapshot — the Fig. 10 analogue.
///
/// *Self time* excludes direct children, so summing `self_ns` over all
/// phases gives exactly the instrumented root-span time: nothing is
/// double-counted however deeply spans nest. `coverage()` compares that
/// sum against wall time (first span start to last span end).
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// Per-phase rows, sorted by descending self time.
    pub stats: Vec<PhaseStat>,
    /// Wall time spanned by the snapshot (max end − min start), ns.
    pub wall_ns: u64,
    /// Sum of root-span durations (equivalently, of all self times), ns.
    pub covered_ns: u64,
}

impl Breakdown {
    /// Computes the breakdown of a snapshot.
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> Breakdown {
        let spans = &snap.spans;
        let mut child_ns = vec![0u64; spans.len()];
        for span in spans {
            if let Some(parent) = span.parent {
                child_ns[parent] += span.duration_ns();
            }
        }
        let mut stats: Vec<PhaseStat> = Vec::new();
        let mut covered_ns = 0u64;
        let mut min_start = u64::MAX;
        let mut max_end = 0u64;
        for (i, span) in spans.iter().enumerate() {
            let dur = span.duration_ns();
            let self_ns = dur.saturating_sub(child_ns[i]);
            min_start = min_start.min(span.start_ns);
            max_end = max_end.max(span.end_ns);
            if span.parent.is_none() {
                covered_ns += dur;
            }
            match stats.iter_mut().find(|s| s.phase == span.phase) {
                Some(stat) => {
                    stat.count += 1;
                    stat.total_ns += dur;
                    stat.self_ns += self_ns;
                }
                None => stats.push(PhaseStat {
                    phase: span.phase,
                    count: 1,
                    total_ns: dur,
                    self_ns,
                }),
            }
        }
        stats.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
        // Self times are exhaustive and disjoint: summed over every
        // phase they must reproduce the root-span total exactly. The
        // identity can only break through saturation — a child measuring
        // longer than its parent — which a monotonic clock cannot
        // produce (a rewound ManualClock can; such snapshots are
        // exempt).
        let saturated = spans
            .iter()
            .enumerate()
            .any(|(i, span)| child_ns[i] > span.duration_ns());
        debug_assert!(
            saturated || stats.iter().map(|s| s.self_ns).sum::<u64>() == covered_ns,
            "self-time partition broken: sum(self) != sum(roots)"
        );
        Breakdown {
            stats,
            wall_ns: if spans.is_empty() {
                0
            } else {
                max_end.saturating_sub(min_start)
            },
            covered_ns,
        }
    }

    /// Fraction of wall time covered by instrumented root spans.
    ///
    /// Can exceed 1.0 when root spans on different tracks overlap (e.g.
    /// concurrent rank threads); exactly the root-span share on a single
    /// track.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.covered_ns as f64 / self.wall_ns as f64
        }
    }

    /// Renders the human-readable per-phase table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>7} {:>12} {:>12} {:>8}\n",
            "phase", "count", "total", "self", "% wall"
        ));
        for stat in &self.stats {
            let pct = if self.wall_ns == 0 {
                0.0
            } else {
                100.0 * stat.self_ns as f64 / self.wall_ns as f64
            };
            out.push_str(&format!(
                "{:<22} {:>7} {:>12} {:>12} {:>7.1}%\n",
                stat.phase.as_str(),
                stat.count,
                fmt_ns(stat.total_ns),
                fmt_ns(stat.self_ns),
                pct
            ));
        }
        out.push_str(&format!(
            "wall {} · instrumented coverage {:.1}%\n",
            fmt_ns(self.wall_ns),
            100.0 * self.coverage()
        ));
        out
    }

    /// The breakdown as a JSON fragment (embedded in the full report).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("wall_seconds", Json::from(self.wall_ns as f64 * 1e-9)),
            ("covered_seconds", Json::from(self.covered_ns as f64 * 1e-9)),
            ("coverage", Json::from(self.coverage())),
            (
                "phases",
                Json::from(
                    self.stats
                        .iter()
                        .map(|stat| {
                            Json::object(vec![
                                ("phase", Json::from(stat.phase.as_str())),
                                ("count", Json::from(stat.count)),
                                ("total_seconds", Json::from(stat.total_ns as f64 * 1e-9)),
                                ("self_seconds", Json::from(stat.self_ns as f64 * 1e-9)),
                            ])
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}

/// Serializes a snapshot as a Chrome `trace_event` JSON document.
///
/// Each rank's track maps to its own `pid`/`tid` pair (with `M`
/// metadata naming it "rank N"), so multi-rank traces render as
/// separate lanes instead of interleaving. Spans become `"ph": "X"`
/// complete events (timestamps in µs), scalar events become `"ph": "C"`
/// counter samples, and send→recv match edges become `"ph": "s"`/`"f"`
/// flow events so Perfetto draws cross-rank arrows. The output loads
/// directly in `about://tracing` and Perfetto.
pub fn chrome_trace(snap: &TelemetrySnapshot) -> String {
    let mut tracks: Vec<u32> = snap
        .spans
        .iter()
        .map(|s| s.track)
        .chain(snap.events.iter().map(|e| e.track))
        .chain(snap.edges.iter().flat_map(|e| [e.src_track, e.dst_track]))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut events: Vec<Json> = Vec::with_capacity(
        2 * tracks.len() + snap.spans.len() + snap.events.len() + 2 * snap.edges.len(),
    );
    for &track in &tracks {
        events.push(Json::object(vec![
            ("name", Json::from("process_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(u64::from(track))),
            (
                "args",
                Json::object(vec![("name", Json::from(format!("rank {track}")))]),
            ),
        ]));
        events.push(Json::object(vec![
            ("name", Json::from("thread_name")),
            ("ph", Json::from("M")),
            ("pid", Json::from(u64::from(track))),
            ("tid", Json::from(u64::from(track))),
            (
                "args",
                Json::object(vec![("name", Json::from(format!("rank {track} timeline")))]),
            ),
        ]));
    }
    for span in &snap.spans {
        events.push(Json::object(vec![
            ("name", Json::from(span.phase.as_str())),
            ("cat", Json::from("phase")),
            ("ph", Json::from("X")),
            ("ts", Json::from(span.start_ns as f64 / 1e3)),
            ("dur", Json::from(span.duration_ns() as f64 / 1e3)),
            ("pid", Json::from(u64::from(span.track))),
            ("tid", Json::from(u64::from(span.track))),
        ]));
    }
    for event in &snap.events {
        events.push(counter_event(event));
    }
    for (id, edge) in snap.edges.iter().enumerate() {
        // Tags can use the full 64-bit namespace (e.g. reply salts), so
        // render them as hex strings rather than lossy f64 numbers.
        events.push(Json::object(vec![
            ("name", Json::from("comm.match")),
            ("cat", Json::from("comm")),
            ("ph", Json::from("s")),
            ("id", Json::from(id)),
            ("ts", Json::from(edge.sent_ns as f64 / 1e3)),
            ("pid", Json::from(u64::from(edge.src_track))),
            ("tid", Json::from(u64::from(edge.src_track))),
            (
                "args",
                Json::object(vec![
                    ("tag", Json::from(format!("{:#x}", edge.tag))),
                    ("bytes", Json::from(edge.bytes)),
                    ("wire_us", Json::from(edge.wire_ns as f64 / 1e3)),
                ]),
            ),
        ]));
        events.push(Json::object(vec![
            ("name", Json::from("comm.match")),
            ("cat", Json::from("comm")),
            ("ph", Json::from("f")),
            ("bp", Json::from("e")),
            ("id", Json::from(id)),
            ("ts", Json::from(edge.matched_ns as f64 / 1e3)),
            ("pid", Json::from(u64::from(edge.dst_track))),
            ("tid", Json::from(u64::from(edge.dst_track))),
        ]));
    }
    Json::object(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
    .to_string()
}

fn counter_event(event: &EventRecord) -> Json {
    Json::object(vec![
        ("name", Json::from(event.name)),
        ("ph", Json::from("C")),
        ("ts", Json::from(event.at_ns as f64 / 1e3)),
        ("pid", Json::from(u64::from(event.track))),
        ("tid", Json::from(u64::from(event.track))),
        (
            "args",
            Json::object(vec![("value", Json::from(event.value))]),
        ),
    ])
}

/// Formats a nanosecond duration with an adaptive unit in a fixed
/// 10-character field (`"     12 ns"`, `"  1.500 µs"`), so stacked
/// durations align into columns regardless of magnitude.
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:>7.3}  s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:>7.3} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:>7.3} µs", v / 1e3)
    } else {
        format!("{ns:>7} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManualClock, Telemetry};
    use std::sync::Arc;

    fn sample() -> TelemetrySnapshot {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        {
            let _total = tele.span(Phase::Total);
            clock.advance(10);
            for _ in 0..2 {
                let _it = tele.span(Phase::SolverIteration);
                clock.advance(5);
                {
                    let _f = tele.span(Phase::SpmmForward);
                    clock.advance(30);
                }
                {
                    let _t = tele.span(Phase::SpmmTranspose);
                    clock.advance(40);
                }
                tele.event("cgls.residual", 0.5);
            }
            clock.advance(10);
        }
        tele.snapshot()
    }

    #[test]
    fn self_times_partition_the_root_exactly() {
        let snap = sample();
        let breakdown = Breakdown::from_snapshot(&snap);
        assert_eq!(breakdown.wall_ns, 170);
        assert_eq!(breakdown.covered_ns, 170);
        assert!((breakdown.coverage() - 1.0).abs() < 1e-12);
        let self_sum: u64 = breakdown.stats.iter().map(|s| s.self_ns).sum();
        assert_eq!(self_sum, breakdown.covered_ns);
        let get = |phase: Phase| {
            breakdown
                .stats
                .iter()
                .find(|s| s.phase == phase)
                .expect("phase present")
                .clone()
        };
        assert_eq!(get(Phase::Total).self_ns, 20);
        assert_eq!(get(Phase::SolverIteration).count, 2);
        assert_eq!(get(Phase::SolverIteration).self_ns, 10);
        assert_eq!(get(Phase::SolverIteration).total_ns, 150);
        assert_eq!(get(Phase::SpmmForward).self_ns, 60);
        assert_eq!(get(Phase::SpmmTranspose).self_ns, 80);
        // Sorted by descending self time.
        assert_eq!(breakdown.stats[0].phase, Phase::SpmmTranspose);
    }

    #[test]
    fn table_mentions_every_phase_and_wall() {
        let snap = sample();
        let table = Breakdown::from_snapshot(&snap).render_table();
        for needle in [
            "spmm.forward",
            "spmm.transpose",
            "solver.iteration",
            "total",
            "wall",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn json_fragment_has_the_schema_fields() {
        let snap = sample();
        let json = Breakdown::from_snapshot(&snap).to_json();
        let back = Json::parse(&json.to_string()).unwrap();
        assert!(back.get("wall_seconds").unwrap().as_f64().unwrap() > 0.0);
        let phases = back.get("phases").unwrap().as_array().unwrap();
        assert!(!phases.is_empty());
        for phase in phases {
            assert!(phase.get("phase").unwrap().as_str().is_some());
            assert!(phase.get("count").unwrap().as_f64().is_some());
            assert!(phase.get("self_seconds").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn chrome_trace_is_parseable_and_nested() {
        let snap = sample();
        let trace = chrome_trace(&snap);
        let back = Json::parse(&trace).expect("trace parses");
        let events = back.get("traceEvents").unwrap().as_array().unwrap();
        // One track → 2 metadata events, plus one X per span and one C
        // per counter event; no edges in this sample.
        assert_eq!(events.len(), 2 + snap.spans.len() + snap.events.len());
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), snap.spans.len());
        for x in xs {
            assert!(x.get("ts").unwrap().as_f64().is_some());
            assert!(x.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            assert!(x.get("name").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn chrome_trace_gives_each_rank_its_own_lane_and_draws_flow_arrows() {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        let r0 = tele.fork(0);
        let r1 = tele.fork(1);
        {
            let _g = r0.span(Phase::SpmmForward);
            clock.advance(100);
        }
        {
            let _g = r1.span(Phase::SolverIteration);
            clock.advance(50);
        }
        r1.edge(0, 0x55, 64, 100, 30);
        let snap = tele.snapshot();
        let back = Json::parse(&chrome_trace(&snap)).expect("trace parses");
        let events = back.get("traceEvents").unwrap().as_array().unwrap();
        // 2 tracks × 2 metadata + 2 spans + 1 edge × 2 flow halves.
        assert_eq!(events.len(), 4 + 2 + 2);
        // Every rank gets a distinct pid == tid == track pair.
        for x in events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        {
            assert_eq!(
                x.get("pid").unwrap().as_f64(),
                x.get("tid").unwrap().as_f64()
            );
        }
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert!(names.contains(&"rank 0"), "{names:?}");
        assert!(names.contains(&"rank 1"), "{names:?}");
        let start = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .expect("flow start");
        let finish = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("f"))
            .expect("flow finish");
        assert_eq!(start.get("pid").unwrap().as_f64(), Some(0.0));
        assert_eq!(finish.get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            start.get("id").unwrap().as_f64(),
            finish.get("id").unwrap().as_f64()
        );
        assert_eq!(finish.get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(
            start.get("args").unwrap().get("tag").unwrap().as_str(),
            Some("0x55")
        );
    }

    #[test]
    fn self_time_partition_survives_gaps_between_children() {
        // Root [0, 93] with two children and three uninstrumented gaps:
        // [gap 7][child 30][gap 11][child 40][gap 5].
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        {
            let _root = tele.span(Phase::Total);
            clock.advance(7);
            {
                let _a = tele.span(Phase::SpmmForward);
                clock.advance(30);
            }
            clock.advance(11);
            {
                let _b = tele.span(Phase::SpmmTranspose);
                clock.advance(40);
            }
            clock.advance(5);
        }
        let breakdown = Breakdown::from_snapshot(&tele.snapshot());
        assert_eq!(breakdown.covered_ns, 93);
        let self_sum: u64 = breakdown.stats.iter().map(|s| s.self_ns).sum();
        assert_eq!(self_sum, breakdown.covered_ns);
        let root = breakdown
            .stats
            .iter()
            .find(|s| s.phase == Phase::Total)
            .unwrap();
        // The gaps (7 + 11 + 5) are the root's self time.
        assert_eq!(root.self_ns, 23);
    }

    #[test]
    fn fmt_ns_picks_units_at_a_stable_width() {
        assert_eq!(fmt_ns(12), "     12 ns");
        assert_eq!(fmt_ns(1_500), "  1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "  2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "  3.000  s");
        // All magnitudes land in the same 10-char field.
        for ns in [0, 7, 999, 1_000, 999_999, 1_000_000, 5_000_000_000] {
            assert_eq!(fmt_ns(ns).chars().count(), 10, "{:?}", fmt_ns(ns));
        }
    }
}
