//! Sinks: the Fig. 10-style phase breakdown table, the JSON report
//! fragment, and the Chrome `trace_event` exporter.

use crate::{EventRecord, Json, Phase, TelemetrySnapshot};

/// Aggregated timing for one phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase label.
    pub phase: Phase,
    /// Number of spans with this label.
    pub count: u64,
    /// Total (inclusive) time: sum of span durations.
    pub total_ns: u64,
    /// Self (exclusive) time: total minus time spent in direct children.
    pub self_ns: u64,
}

/// Per-phase breakdown of a snapshot — the Fig. 10 analogue.
///
/// *Self time* excludes direct children, so summing `self_ns` over all
/// phases gives exactly the instrumented root-span time: nothing is
/// double-counted however deeply spans nest. `coverage()` compares that
/// sum against wall time (first span start to last span end).
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// Per-phase rows, sorted by descending self time.
    pub stats: Vec<PhaseStat>,
    /// Wall time spanned by the snapshot (max end − min start), ns.
    pub wall_ns: u64,
    /// Sum of root-span durations (equivalently, of all self times), ns.
    pub covered_ns: u64,
}

impl Breakdown {
    /// Computes the breakdown of a snapshot.
    pub fn from_snapshot(snap: &TelemetrySnapshot) -> Breakdown {
        let spans = &snap.spans;
        let mut child_ns = vec![0u64; spans.len()];
        for span in spans {
            if let Some(parent) = span.parent {
                child_ns[parent] += span.duration_ns();
            }
        }
        let mut stats: Vec<PhaseStat> = Vec::new();
        let mut covered_ns = 0u64;
        let mut min_start = u64::MAX;
        let mut max_end = 0u64;
        for (i, span) in spans.iter().enumerate() {
            let dur = span.duration_ns();
            let self_ns = dur.saturating_sub(child_ns[i]);
            min_start = min_start.min(span.start_ns);
            max_end = max_end.max(span.end_ns);
            if span.parent.is_none() {
                covered_ns += dur;
            }
            match stats.iter_mut().find(|s| s.phase == span.phase) {
                Some(stat) => {
                    stat.count += 1;
                    stat.total_ns += dur;
                    stat.self_ns += self_ns;
                }
                None => stats.push(PhaseStat {
                    phase: span.phase,
                    count: 1,
                    total_ns: dur,
                    self_ns,
                }),
            }
        }
        stats.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
        Breakdown {
            stats,
            wall_ns: if spans.is_empty() {
                0
            } else {
                max_end.saturating_sub(min_start)
            },
            covered_ns,
        }
    }

    /// Fraction of wall time covered by instrumented root spans.
    ///
    /// Can exceed 1.0 when root spans on different tracks overlap (e.g.
    /// concurrent rank threads); exactly the root-span share on a single
    /// track.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.covered_ns as f64 / self.wall_ns as f64
        }
    }

    /// Renders the human-readable per-phase table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>7} {:>12} {:>12} {:>8}\n",
            "phase", "count", "total", "self", "% wall"
        ));
        for stat in &self.stats {
            let pct = if self.wall_ns == 0 {
                0.0
            } else {
                100.0 * stat.self_ns as f64 / self.wall_ns as f64
            };
            out.push_str(&format!(
                "{:<22} {:>7} {:>12} {:>12} {:>7.1}%\n",
                stat.phase.as_str(),
                stat.count,
                fmt_ns(stat.total_ns),
                fmt_ns(stat.self_ns),
                pct
            ));
        }
        out.push_str(&format!(
            "wall {} · instrumented coverage {:.1}%\n",
            fmt_ns(self.wall_ns),
            100.0 * self.coverage()
        ));
        out
    }

    /// The breakdown as a JSON fragment (embedded in the full report).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("wall_seconds", Json::from(self.wall_ns as f64 * 1e-9)),
            ("covered_seconds", Json::from(self.covered_ns as f64 * 1e-9)),
            ("coverage", Json::from(self.coverage())),
            (
                "phases",
                Json::from(
                    self.stats
                        .iter()
                        .map(|stat| {
                            Json::object(vec![
                                ("phase", Json::from(stat.phase.as_str())),
                                ("count", Json::from(stat.count)),
                                ("total_seconds", Json::from(stat.total_ns as f64 * 1e-9)),
                                ("self_seconds", Json::from(stat.self_ns as f64 * 1e-9)),
                            ])
                        })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }
}

/// Serializes a snapshot as a Chrome `trace_event` JSON document.
///
/// Spans become `"ph": "X"` complete events (timestamps in µs) and scalar
/// events become `"ph": "C"` counter samples, one `tid` per track. The
/// output loads directly in `about://tracing` and Perfetto.
pub fn chrome_trace(snap: &TelemetrySnapshot) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(snap.spans.len() + snap.events.len());
    for span in &snap.spans {
        events.push(Json::object(vec![
            ("name", Json::from(span.phase.as_str())),
            ("cat", Json::from("phase")),
            ("ph", Json::from("X")),
            ("ts", Json::from(span.start_ns as f64 / 1e3)),
            ("dur", Json::from(span.duration_ns() as f64 / 1e3)),
            ("pid", Json::from(0u64)),
            ("tid", Json::from(u64::from(span.track))),
        ]));
    }
    for event in &snap.events {
        events.push(counter_event(event));
    }
    Json::object(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::from("ms")),
    ])
    .to_string()
}

fn counter_event(event: &EventRecord) -> Json {
    Json::object(vec![
        ("name", Json::from(event.name)),
        ("ph", Json::from("C")),
        ("ts", Json::from(event.at_ns as f64 / 1e3)),
        ("pid", Json::from(0u64)),
        ("tid", Json::from(u64::from(event.track))),
        (
            "args",
            Json::object(vec![("value", Json::from(event.value))]),
        ),
    ])
}

/// Formats a nanosecond duration with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{} ns", ns as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManualClock, Telemetry};
    use std::sync::Arc;

    fn sample() -> TelemetrySnapshot {
        let clock = ManualClock::new();
        let tele = Telemetry::with_clock(Arc::new(clock.clone()));
        {
            let _total = tele.span(Phase::Total);
            clock.advance(10);
            for _ in 0..2 {
                let _it = tele.span(Phase::SolverIteration);
                clock.advance(5);
                {
                    let _f = tele.span(Phase::SpmmForward);
                    clock.advance(30);
                }
                {
                    let _t = tele.span(Phase::SpmmTranspose);
                    clock.advance(40);
                }
                tele.event("cgls.residual", 0.5);
            }
            clock.advance(10);
        }
        tele.snapshot()
    }

    #[test]
    fn self_times_partition_the_root_exactly() {
        let snap = sample();
        let breakdown = Breakdown::from_snapshot(&snap);
        assert_eq!(breakdown.wall_ns, 170);
        assert_eq!(breakdown.covered_ns, 170);
        assert!((breakdown.coverage() - 1.0).abs() < 1e-12);
        let self_sum: u64 = breakdown.stats.iter().map(|s| s.self_ns).sum();
        assert_eq!(self_sum, breakdown.covered_ns);
        let get = |phase: Phase| {
            breakdown
                .stats
                .iter()
                .find(|s| s.phase == phase)
                .expect("phase present")
                .clone()
        };
        assert_eq!(get(Phase::Total).self_ns, 20);
        assert_eq!(get(Phase::SolverIteration).count, 2);
        assert_eq!(get(Phase::SolverIteration).self_ns, 10);
        assert_eq!(get(Phase::SolverIteration).total_ns, 150);
        assert_eq!(get(Phase::SpmmForward).self_ns, 60);
        assert_eq!(get(Phase::SpmmTranspose).self_ns, 80);
        // Sorted by descending self time.
        assert_eq!(breakdown.stats[0].phase, Phase::SpmmTranspose);
    }

    #[test]
    fn table_mentions_every_phase_and_wall() {
        let snap = sample();
        let table = Breakdown::from_snapshot(&snap).render_table();
        for needle in [
            "spmm.forward",
            "spmm.transpose",
            "solver.iteration",
            "total",
            "wall",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn json_fragment_has_the_schema_fields() {
        let snap = sample();
        let json = Breakdown::from_snapshot(&snap).to_json();
        let back = Json::parse(&json.to_string()).unwrap();
        assert!(back.get("wall_seconds").unwrap().as_f64().unwrap() > 0.0);
        let phases = back.get("phases").unwrap().as_array().unwrap();
        assert!(!phases.is_empty());
        for phase in phases {
            assert!(phase.get("phase").unwrap().as_str().is_some());
            assert!(phase.get("count").unwrap().as_f64().is_some());
            assert!(phase.get("self_seconds").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn chrome_trace_is_parseable_and_nested() {
        let snap = sample();
        let trace = chrome_trace(&snap);
        let back = Json::parse(&trace).expect("trace parses");
        let events = back.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), snap.spans.len() + snap.events.len());
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), snap.spans.len());
        for x in xs {
            assert!(x.get("ts").unwrap().as_f64().is_some());
            assert!(x.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            assert!(x.get("name").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
