//! Seeded violation: a raw wall-clock read in library code instead of
//! an injected `&dyn Clock`. Must be rejected by `wall-clock`.

use std::time::Instant;

pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    pub fn elapsed_us(&self) -> u128 {
        self.started.elapsed().as_micros()
    }
}
