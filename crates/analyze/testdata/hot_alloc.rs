//! Seeded violation: allocation inside a declared-hot region. Must be
//! rejected by `hot-alloc`.

// xct-hot: per-iteration SpMM inner loop (seeded artifact)
pub fn accumulate(rows: &[u32], vals: &[f32]) -> f32 {
    let gathered: Vec<f32> = rows.iter().map(|&r| vals[r as usize]).collect();
    let mut acc = 0.0f32;
    for v in &gathered {
        acc += v;
    }
    acc
}
