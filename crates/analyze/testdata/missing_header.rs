//! Seeded violation: a crate root without `#![forbid(unsafe_code)]`
//! (or the gated deny form). Must be rejected by `crate-root-header`.

pub mod imaginary {
    pub fn noop() {}
}
