//! Seeded violation: `unsafe` inside the sanctioned SIMD module but
//! with no `SAFETY:` justification. Must be rejected by
//! `safety-comment`.

pub fn unjustified(ptr: *const f32) -> f32 {
    unsafe { *ptr }
}
