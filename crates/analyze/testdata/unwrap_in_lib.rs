//! Seeded violation: `.unwrap()` on a genuine error path in library
//! code. Must be rejected by `no-panic`.

pub fn parse_header(bytes: &[u8]) -> u32 {
    let first: [u8; 4] = bytes[..4].try_into().unwrap();
    u32::from_le_bytes(first)
}
