//! Seeded violation: an `xct-allow` opt-out with an empty
//! justification. Must be rejected by `allow-justification` — silent
//! opt-outs are unauditable.

// xct-allow(no-panic):
pub fn quiet() {}
