//! Seeded violation: `panic!` in library code. Must be rejected by
//! `no-panic`.

pub fn choose(kind: &str) -> u32 {
    match kind {
        "gather" => 1,
        "scatter" => 2,
        other => panic!("unknown kind {other}"),
    }
}
