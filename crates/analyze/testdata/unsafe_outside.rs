//! Seeded violation: `unsafe` in a library file outside the
//! sanctioned modules. Must be rejected by `unsafe-boundary` even
//! though the block carries a SAFETY comment.

pub fn sneak_past_the_boundary(ptr: *const f32) -> f32 {
    // SAFETY: a justification does not move the boundary.
    unsafe { *ptr }
}
