//! Must-reject corpus for the source lints + whole-workspace scan.
//!
//! Every file under `testdata/` is a deliberately broken source
//! snippet; the test asserts each one is rejected with the expected
//! rule and a witness naming its line. The workspace scan asserts the
//! real tree is clean — the same check CI runs via `petaxct analyze`.

use std::path::{Path, PathBuf};
use xct_analyze::lint::check_file;
use xct_analyze::selftest::CORPUS;
use xct_analyze::{analyze_workspace, classify};

fn testdata(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a testdata file under the lib-role path it impersonates.
fn lint_as(name: &str, fake_path: &str) -> Vec<xct_analyze::LintViolation> {
    let mut out = Vec::new();
    check_file(fake_path, &testdata(name), classify(fake_path), &mut out);
    out
}

#[test]
fn every_corpus_artifact_is_rejected_with_a_witness() {
    for &(file, fake_path, rule) in CORPUS {
        let violations = lint_as(file, fake_path);
        let hit = violations.iter().find(|v| v.rule == rule);
        let hit = hit.unwrap_or_else(|| {
            panic!("testdata/{file}: expected {rule} to fire, got {violations:?}")
        });
        assert_eq!(hit.file, fake_path);
        assert!(hit.line >= 1, "witness must name a line: {hit:?}");
        assert!(
            !hit.excerpt.is_empty(),
            "witness must carry the offending source: {hit:?}"
        );
    }
}

#[test]
fn corpus_artifacts_fail_for_exactly_the_seeded_reason() {
    // Each artifact is narrowly broken: it must NOT trip unrelated
    // rules (that would mean the corpus tests less than it claims).
    for &(file, fake_path, rule) in CORPUS {
        let violations = lint_as(file, fake_path);
        assert!(
            violations.iter().all(|v| v.rule == rule),
            "testdata/{file}: unexpected extra rules in {violations:?}"
        );
    }
}

#[test]
fn workspace_is_lint_clean() {
    let root: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = analyze_workspace(&root).expect("walk workspace");
    for v in &violations {
        eprintln!("{v}");
    }
    assert!(
        violations.is_empty(),
        "{} lint violations in the workspace (listed above)",
        violations.len()
    );
}
