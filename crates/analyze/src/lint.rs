//! Layer-1 source lints: project invariants enforced over the token
//! stream of every workspace `.rs` file.
//!
//! Every finding is a structured [`LintViolation`] witness — file,
//! line, rule, source excerpt — in the same spirit as `xct-verify`'s
//! `Violation`: the analyzer never answers with a bare boolean.
//!
//! Opt-outs are explicit and audited: a `// xct-allow(rule-name):
//! justification` comment on the offending line or the line directly
//! above silences exactly that rule for exactly that line, and an
//! allow with a missing/empty justification or an unknown rule name is
//! itself a violation ([`Rule::AllowJustification`]).

use crate::lexer::{lex, Tok};
use std::collections::HashSet;
use std::fmt;

/// The lint rules. Kebab-case names are the stable identifiers used in
/// `xct-allow(...)` opt-outs, CLI output, and DESIGN.md §3i.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unsafe` outside the sanctioned modules ([`SANCTIONED_UNSAFE`]).
    UnsafeBoundary,
    /// Sanctioned `unsafe` without a `SAFETY:` / `# Safety` comment.
    SafetyComment,
    /// `unwrap`/`expect`/`panic!`-family in library code.
    NoPanic,
    /// `Instant::now` / `SystemTime` outside the telemetry Clock impl.
    WallClock,
    /// Allocating call inside an `// xct-hot` region.
    HotAlloc,
    /// Crate root missing its `forbid(unsafe_code)` /
    /// `deny(unsafe_op_in_unsafe_fn)` header.
    CrateRootHeader,
    /// Malformed `xct-allow` opt-out (unknown rule or no justification).
    AllowJustification,
}

impl Rule {
    /// Stable kebab-case rule name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeBoundary => "unsafe-boundary",
            Rule::SafetyComment => "safety-comment",
            Rule::NoPanic => "no-panic",
            Rule::WallClock => "wall-clock",
            Rule::HotAlloc => "hot-alloc",
            Rule::CrateRootHeader => "crate-root-header",
            Rule::AllowJustification => "allow-justification",
        }
    }

    /// Parses a kebab-case rule name (for `xct-allow(...)`).
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "unsafe-boundary" => Some(Rule::UnsafeBoundary),
            "safety-comment" => Some(Rule::SafetyComment),
            "no-panic" => Some(Rule::NoPanic),
            "wall-clock" => Some(Rule::WallClock),
            "hot-alloc" => Some(Rule::HotAlloc),
            "crate-root-header" => Some(Rule::CrateRootHeader),
            // allow-justification is not itself opt-out-able: an allow
            // that excuses broken allows would be unauditable.
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding, with enough witness data to act on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human-readable explanation of what was matched and why it is
    /// disallowed here.
    pub detail: String,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} | {}",
            self.file, self.line, self.rule, self.detail, self.excerpt
        )
    }
}

/// How a file participates in the build — determines which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code: all rules apply.
    Lib,
    /// Integration tests (`tests/`): panics and wall clocks allowed.
    Test,
    /// Benchmarks (`benches/`): panics and wall clocks allowed.
    Bench,
    /// Examples: panics and wall clocks allowed.
    Example,
    /// Binaries (`src/bin/`, `src/main.rs`): panics/clocks allowed.
    Bin,
    /// Offline dependency shims (`shims/`): panics/clocks allowed —
    /// they mirror external crates' APIs, not project conventions.
    Shim,
    /// `build.rs`: panics and wall clocks allowed.
    BuildScript,
}

impl Role {
    /// Do the `no-panic` / `wall-clock` rules apply to this role?
    pub fn holds_library_invariants(self) -> bool {
        matches!(self, Role::Lib)
    }
}

/// The only modules allowed to contain `unsafe`, workspace-relative.
/// This list is the single source of truth referenced from DESIGN.md
/// §3h/§3i; widening it is a reviewed change to this file.
pub const SANCTIONED_UNSAFE: &[&str] = &[
    // The SIMD boundary (DESIGN.md §3h): TypeId-proven slice casts and
    // AVX2/FMA intrinsics behind a scalar-identical contract.
    "crates/spmm/src/simd.rs",
    // Counting global allocators for the allocation-free guards; a
    // GlobalAlloc impl is unsafe by signature.
    "crates/bench/src/bin/perf_suite.rs",
    "tests/alloc_free.rs",
];

/// The only module allowed to read wall clocks: the injectable Clock's
/// production impl (everything else takes a `&dyn Clock`).
pub const SANCTIONED_WALL_CLOCK: &[&str] = &["crates/telemetry/src/clock.rs"];

/// Idents that allocate when called as `recv.method(...)` in hot code.
const HOT_ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string"];

/// Macros that allocate (`name!(...)`) in hot code.
const HOT_ALLOC_MACROS: &[&str] = &["format", "vec"];

/// `Type::ctor` pairs that allocate in hot code. (`Vec::new` itself is
/// a zero-alloc constructor, but it exists to be grown — a fresh
/// container in a hot region is a design smell the rule rejects.)
const HOT_ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("HashMap", "with_capacity"),
    ("BTreeMap", "new"),
    ("HashSet", "new"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
];

/// Is `rel_path` a crate root that must carry the unsafe headers?
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.ends_with("/src/lib.rs")
            && (rel_path.starts_with("crates/") || rel_path.starts_with("shims/")))
}

/// Lints one file. Findings are appended to `out`.
pub fn check_file(rel_path: &str, source: &str, role: Role, out: &mut Vec<LintViolation>) {
    let toks = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let ctx = FileCtx {
        rel_path,
        lines: &lines,
        allows: collect_allows(rel_path, &toks, &lines, out),
        test_region: attr_regions(&toks, is_cfg_test_attr),
        hot_region: comment_regions(&toks, "xct-hot"),
        impl_justified: justified_unsafe_impl_regions(&toks, &lines),
    };

    if is_crate_root(rel_path) {
        check_crate_root_header(&toks, &ctx, out);
    }

    let unsafe_sanctioned = SANCTIONED_UNSAFE.contains(&rel_path);
    let clock_sanctioned = SANCTIONED_WALL_CLOCK.contains(&rel_path);

    for (i, tok) in toks.iter().enumerate() {
        let Some(id) = tok.ident() else { continue };
        match id {
            "unsafe" => {
                if !unsafe_sanctioned {
                    ctx.emit(
                        out,
                        tok.line,
                        Rule::UnsafeBoundary,
                        format!(
                            "`unsafe` outside the sanctioned modules ({})",
                            SANCTIONED_UNSAFE.join(", ")
                        ),
                    );
                } else if !ctx.impl_justified.contains(i) && !safety_comment_above(&lines, tok.line)
                {
                    ctx.emit(
                        out,
                        tok.line,
                        Rule::SafetyComment,
                        "sanctioned `unsafe` without a `SAFETY:` justification".into(),
                    );
                }
            }
            "unwrap" | "expect"
                if ctx.lints_library_rules(role, i)
                    && prev_meaningful(&toks, i).is_some_and(|t| t.is_punct('.')) =>
            {
                ctx.emit(
                    out,
                    tok.line,
                    Rule::NoPanic,
                    format!("`.{id}()` in library code — return a typed error"),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if ctx.lints_library_rules(role, i)
                    && next_meaningful(&toks, i).is_some_and(|t| t.is_punct('!')) =>
            {
                ctx.emit(
                    out,
                    tok.line,
                    Rule::NoPanic,
                    format!("`{id}!` in library code — return a typed error"),
                );
            }
            "Instant"
                if ctx.lints_library_rules(role, i)
                    && !clock_sanctioned
                    && path_seg_after(&toks, i) == Some("now") =>
            {
                ctx.emit(
                    out,
                    tok.line,
                    Rule::WallClock,
                    "`Instant::now()` outside telemetry's Clock impl — take a `&dyn Clock`".into(),
                );
            }
            // Only path uses (`SystemTime::now`, `::UNIX_EPOCH`, …) are
            // clock reads; type positions just carry a value.
            "SystemTime"
                if ctx.lints_library_rules(role, i)
                    && !clock_sanctioned
                    && path_seg_after(&toks, i).is_some() =>
            {
                ctx.emit(
                    out,
                    tok.line,
                    Rule::WallClock,
                    "`SystemTime` outside telemetry's Clock impl — take a `&dyn Clock`".into(),
                );
            }
            _ => {}
        }

        // hot-alloc applies in hot regions regardless of role (hot
        // markers only appear in lib code today, but a hot bench inner
        // loop would deserve the same scrutiny).
        if ctx.hot_region.contains(i) && !ctx.test_region.contains(i) {
            check_hot_alloc(&toks, i, id, &ctx, out);
        }
    }
}

fn check_hot_alloc(
    toks: &[Tok],
    i: usize,
    id: &str,
    ctx: &FileCtx<'_>,
    out: &mut Vec<LintViolation>,
) {
    let line = toks[i].line;
    if HOT_ALLOC_METHODS.contains(&id) && prev_meaningful(toks, i).is_some_and(|t| t.is_punct('.'))
    {
        ctx.emit(
            out,
            line,
            Rule::HotAlloc,
            format!("allocating call `.{id}()` inside an `xct-hot` region"),
        );
    } else if HOT_ALLOC_MACROS.contains(&id)
        && next_meaningful(toks, i).is_some_and(|t| t.is_punct('!'))
    {
        ctx.emit(
            out,
            line,
            Rule::HotAlloc,
            format!("allocating macro `{id}!` inside an `xct-hot` region"),
        );
    } else if let Some(ctor) = path_seg_after(toks, i) {
        if HOT_ALLOC_CTORS.iter().any(|&(ty, c)| ty == id && c == ctor) {
            ctx.emit(
                out,
                line,
                Rule::HotAlloc,
                format!("allocating constructor `{id}::{ctor}` inside an `xct-hot` region"),
            );
        }
    }
}

/// Per-file context shared by the rule checks.
struct FileCtx<'a> {
    rel_path: &'a str,
    lines: &'a [&'a str],
    /// `(line, rule)` pairs with a valid opt-out comment on `line`.
    allows: HashSet<(usize, Rule)>,
    test_region: TokenRegions,
    hot_region: TokenRegions,
    impl_justified: TokenRegions,
}

impl FileCtx<'_> {
    /// Do the library-only rules apply at token `i`?
    fn lints_library_rules(&self, role: Role, i: usize) -> bool {
        role.holds_library_invariants() && !self.test_region.contains(i)
    }

    /// Records a violation unless an allow comment on the same line or
    /// the line above excuses it.
    fn emit(&self, out: &mut Vec<LintViolation>, line: usize, rule: Rule, detail: String) {
        let allowed = self.allows.contains(&(line, rule))
            || (line > 1 && self.allows.contains(&(line - 1, rule)));
        if allowed {
            return;
        }
        let excerpt = self
            .lines
            .get(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_owned());
        out.push(LintViolation {
            file: self.rel_path.to_owned(),
            line,
            rule,
            excerpt,
            detail,
        });
    }
}

/// Sorted, disjoint half-open token-index ranges.
#[derive(Debug, Default)]
struct TokenRegions(Vec<(usize, usize)>);

impl TokenRegions {
    fn contains(&self, i: usize) -> bool {
        self.0.iter().any(|&(a, b)| a <= i && i < b)
    }
}

/// Token-index range of the `{ … }` block starting at the first `{` at
/// or after `from`. Returns `(open_idx, close_idx_exclusive)`.
fn block_after(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let open = (from..toks.len()).find(|&j| toks[j].is_punct('{'))?;
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((open, j + 1));
            }
        }
    }
    Some((open, toks.len()))
}

fn prev_meaningful(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[..i].iter().rev().find(|t| t.comment().is_none())
}

fn next_meaningful(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[i + 1..].iter().find(|t| t.comment().is_none())
}

/// If token `i` is followed by `::seg` (possibly through a turbofish,
/// as in `Vec::<u8>::new`), returns `seg`.
fn path_seg_after(toks: &[Tok], i: usize) -> Option<&str> {
    let mut rest = toks[i + 1..].iter().filter(|t| t.comment().is_none());
    if !rest.next()?.is_punct(':') || !rest.next()?.is_punct(':') {
        return None;
    }
    let mut t = rest.next()?;
    if t.is_punct('<') {
        let mut depth = 1usize;
        for t2 in rest.by_ref() {
            if t2.is_punct('<') {
                depth += 1;
            } else if t2.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if !rest.next()?.is_punct(':') || !rest.next()?.is_punct(':') {
            return None;
        }
        t = rest.next()?;
    }
    t.ident()
}

/// Is the attribute token run (between `[` and `]`) a `cfg(test)`-like
/// gate? `not(test)` gates are *compiled-in* code and stay linted.
fn is_cfg_test_attr(attr: &[&str]) -> bool {
    attr.contains(&"cfg") && attr.contains(&"test") && !attr.contains(&"not")
}

/// Regions `{ … }` introduced by an attribute satisfying `pred` over
/// the attribute's identifier list.
fn attr_regions(toks: &[Tok], pred: fn(&[&str]) -> bool) -> TokenRegions {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect idents to the matching `]`.
            let mut idents = Vec::new();
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(id) = t.ident() {
                    idents.push(id);
                }
                j += 1;
            }
            if pred(&idents) {
                if let Some(r) = block_after(toks, j) {
                    regions.push(r);
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    TokenRegions(regions)
}

/// The payload of a marker comment: text after the leading `//`, `*`,
/// `!` and whitespace. Markers must *start* the comment — prose that
/// merely mentions `xct-hot` or `xct-allow` (docs, this file) is inert.
fn marker_text(comment: &str) -> &str {
    comment.trim_start_matches(['/', '*', '!', ' ', '\t'])
}

/// Regions `{ … }` introduced by a comment starting with `marker`.
fn comment_regions(toks: &[Tok], marker: &str) -> TokenRegions {
    let mut regions = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.comment()
            .is_some_and(|c| marker_text(c).starts_with(marker))
        {
            if let Some(r) = block_after(toks, i + 1) {
                regions.push(r);
            }
        }
    }
    TokenRegions(regions)
}

/// Token ranges of `unsafe impl … { … }` blocks whose `unsafe` carries
/// a SAFETY justification: `unsafe fn` signatures *inside* such an impl
/// (e.g. `GlobalAlloc::alloc`) inherit the impl-level justification.
fn justified_unsafe_impl_regions(toks: &[Tok], lines: &[&str]) -> TokenRegions {
    let mut regions = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.ident() == Some("unsafe")
            && next_meaningful(toks, i).and_then(Tok::ident) == Some("impl")
            && safety_comment_above(lines, t.line)
        {
            if let Some(r) = block_after(toks, i) {
                regions.push(r);
            }
        }
    }
    TokenRegions(regions)
}

/// Does the contiguous run of comment/attribute lines directly above
/// `line` (or `line` itself) contain a SAFETY justification?
fn safety_comment_above(lines: &[&str], line: usize) -> bool {
    let has_marker = |l: &str| l.contains("SAFETY") || l.contains("# Safety");
    if lines.get(line - 1).is_some_and(|l| has_marker(l)) {
        return true;
    }
    let mut idx = line.saturating_sub(1); // 0-based index of `line`
    while idx > 0 {
        idx -= 1;
        let t = lines[idx].trim_start();
        let is_annotation = t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![");
        if !is_annotation {
            return false;
        }
        if has_marker(t) {
            return true;
        }
    }
    false
}

/// Parses every `xct-allow` comment; valid ones land in the returned
/// set keyed by `(line, rule)`, malformed ones are violations.
fn collect_allows(
    rel_path: &str,
    toks: &[Tok],
    lines: &[&str],
    out: &mut Vec<LintViolation>,
) -> HashSet<(usize, Rule)> {
    let mut allows = HashSet::new();
    for t in toks {
        let Some(text) = t.comment().map(marker_text) else {
            continue;
        };
        let Some(rest) = text.strip_prefix("xct-allow") else {
            continue;
        };
        let parsed = parse_allow(rest);
        match parsed {
            Some((rule, reason)) if !reason.trim().is_empty() => {
                allows.insert((t.line, rule));
            }
            Some((rule, _)) => {
                push_allow_violation(
                    out,
                    rel_path,
                    lines,
                    t.line,
                    format!("`xct-allow({rule})` has an empty justification"),
                );
            }
            None => {
                push_allow_violation(
                    out,
                    rel_path,
                    lines,
                    t.line,
                    "malformed `xct-allow` — expected `xct-allow(rule-name): justification`".into(),
                );
            }
        }
    }
    allows
}

/// Parses `"(rule): reason"`; returns the rule and the reason text.
fn parse_allow(rest: &str) -> Option<(Rule, &str)> {
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = Rule::parse(rest[..close].trim())?;
    let after = rest[close + 1..].strip_prefix(':')?;
    Some((rule, after))
}

fn push_allow_violation(
    out: &mut Vec<LintViolation>,
    rel_path: &str,
    lines: &[&str],
    line: usize,
    detail: String,
) {
    out.push(LintViolation {
        file: rel_path.to_owned(),
        line,
        rule: Rule::AllowJustification,
        excerpt: lines
            .get(line.saturating_sub(1))
            .map_or(String::new(), |l| l.trim().to_owned()),
        detail,
    });
}

/// Crate roots must keep `forbid(unsafe_code)` (or, for the gated SIMD
/// crate, `deny(unsafe_op_in_unsafe_fn)` alongside the conditional
/// forbid) in their inner attributes.
fn check_crate_root_header(toks: &[Tok], ctx: &FileCtx<'_>, out: &mut Vec<LintViolation>) {
    let idents: Vec<&str> = toks.iter().filter_map(Tok::ident).collect();
    let has = |a: &str, b: &str| idents.contains(&a) && idents.contains(&b);
    let forbids = has("forbid", "unsafe_code");
    let denies = has("deny", "unsafe_op_in_unsafe_fn");
    if !forbids && !denies {
        ctx.emit(
            out,
            1,
            Rule::CrateRootHeader,
            "crate root lacks `#![forbid(unsafe_code)]` (or the gated \
             `#![deny(unsafe_op_in_unsafe_fn)]` form)"
                .into(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str, role: Role) -> Vec<LintViolation> {
        let mut out = Vec::new();
        check_file(path, src, role, &mut out);
        out
    }

    fn rules(v: &[LintViolation]) -> Vec<Rule> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unsafe_outside_sanctioned_module_is_flagged_with_line() {
        let v = lint(
            "crates/foo/src/x.rs",
            "pub fn f() {\n    unsafe { g() }\n}\n",
            Role::Lib,
        );
        assert_eq!(rules(&v), vec![Rule::UnsafeBoundary]);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].excerpt, "unsafe { g() }");
    }

    #[test]
    fn unsafe_is_flagged_even_in_tests() {
        let v = lint(
            "crates/foo/tests/t.rs",
            "#[test]\nfn t() { unsafe { g() } }\n",
            Role::Test,
        );
        assert_eq!(rules(&v), vec![Rule::UnsafeBoundary]);
    }

    #[test]
    fn sanctioned_unsafe_needs_safety_comment() {
        let path = "crates/spmm/src/simd.rs";
        let bad = lint(path, "pub fn f() { unsafe { g() } }\n", Role::Lib);
        assert_eq!(rules(&bad), vec![Rule::SafetyComment]);
        let good = lint(
            path,
            "pub fn f() {\n    // SAFETY: g upholds its contract here\n    unsafe { g() }\n}\n",
            Role::Lib,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn doc_safety_section_through_attributes_is_accepted() {
        let src = "/// # Safety\n/// Caller checked avx2.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn k() {}\n";
        let v = lint("crates/spmm/src/simd.rs", src, Role::Lib);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unsafe_fns_inside_justified_unsafe_impl_inherit() {
        let src = "// SAFETY: counting wrapper delegates to System.\nunsafe impl GlobalAlloc for A {\n    unsafe fn alloc(&self, l: Layout) -> *mut u8 { todo() }\n}\n";
        let v = lint("tests/alloc_free.rs", src, Role::Test);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_in_lib_is_flagged_but_tests_and_bins_are_exempt() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            rules(&lint("crates/foo/src/l.rs", src, Role::Lib)),
            vec![Rule::NoPanic]
        );
        assert!(lint("crates/foo/src/bin/b.rs", src, Role::Bin).is_empty());
        assert!(lint("shims/p/src/util.rs", src, Role::Shim).is_empty());
    }

    #[test]
    fn cfg_test_region_in_lib_file_is_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { f(); Some(1).unwrap(); }\n}\n";
        let v = lint("crates/foo/src/l.rs", src, Role::Lib);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_not_test_region_stays_linted() {
        let src = "#[cfg(not(test))]\nmod real {\n    pub fn f() { panic!(\"x\") }\n}\n";
        let v = lint("crates/foo/src/l.rs", src, Role::Lib);
        assert_eq!(rules(&v), vec![Rule::NoPanic]);
    }

    #[test]
    fn panic_family_macros_are_flagged_only_with_bang() {
        let src = "#[should_panic]\nfn a() {}\npub fn b() { unreachable!() }\n";
        let v = lint("crates/foo/src/l.rs", src, Role::Lib);
        assert_eq!(rules(&v), vec![Rule::NoPanic]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn allow_with_reason_silences_same_and_next_line() {
        let above = "pub fn f(x: Option<u8>) -> u8 {\n    // xct-allow(no-panic): invariant — caller checked is_some\n    x.unwrap()\n}\n";
        assert!(lint("crates/foo/src/l.rs", above, Role::Lib).is_empty());
        let trailing = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // xct-allow(no-panic): invariant — caller checked\n}\n";
        assert!(lint("crates/foo/src/l.rs", trailing, Role::Lib).is_empty());
    }

    #[test]
    fn allow_without_reason_or_unknown_rule_is_a_violation() {
        let empty = "// xct-allow(no-panic):\npub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint("crates/foo/src/l.rs", empty, Role::Lib);
        assert_eq!(rules(&v), vec![Rule::AllowJustification, Rule::NoPanic]);
        let unknown = "// xct-allow(nonsense): because\npub fn f() {}\n";
        let v = lint("crates/foo/src/l.rs", unknown, Role::Lib);
        assert_eq!(rules(&v), vec![Rule::AllowJustification]);
    }

    #[test]
    fn wall_clock_reads_are_flagged_outside_clock_impl() {
        let src = "pub fn f() -> Instant { Instant::now() }\n";
        assert_eq!(
            rules(&lint("crates/foo/src/l.rs", src, Role::Lib)),
            vec![Rule::WallClock]
        );
        assert!(lint("crates/telemetry/src/clock.rs", src, Role::Lib).is_empty());
        // The bare import/type position is fine; only ::now is a read.
        let ty = "pub struct S { t: Instant }\n";
        assert!(lint("crates/foo/src/l.rs", ty, Role::Lib).is_empty());
        let sys = "pub fn f() -> SystemTime { SystemTime::now() }\n";
        assert_eq!(
            rules(&lint("crates/foo/src/l.rs", sys, Role::Lib)),
            vec![Rule::WallClock]
        );
    }

    #[test]
    fn hot_region_rejects_allocations_and_ends_at_brace() {
        let src = "pub fn f(xs: &[u32]) -> u32 {\n    // xct-hot\n    {\n        let v: Vec<u32> = xs.iter().copied().collect();\n        v[0]\n    }\n}\npub fn cold(xs: &[u32]) -> Vec<u32> { xs.to_vec() }\n";
        let v = lint("crates/foo/src/l.rs", src, Role::Lib);
        assert_eq!(rules(&v), vec![Rule::HotAlloc]);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn hot_region_macro_and_ctor_forms() {
        let src = "// xct-hot\npub fn f() {\n    let a = vec![1];\n    let b = format!(\"x\");\n    let c = Vec::<u8>::new();\n    let d = Box::new(1);\n}\n";
        let v = lint("crates/foo/src/l.rs", src, Role::Lib);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::HotAlloc));
    }

    #[test]
    fn hot_alloc_can_be_allowed_with_reason() {
        let src = "// xct-hot\npub fn f(ok: bool) -> Result<(), String> {\n    if ok { return Ok(()); }\n    // xct-allow(hot-alloc): cold error path, never taken steady-state\n    Err(format!(\"bad\"))\n}\n";
        let v = lint("crates/foo/src/l.rs", src, Role::Lib);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn crate_root_header_rule() {
        let v = lint("crates/foo/src/lib.rs", "pub fn f() {}\n", Role::Lib);
        assert_eq!(rules(&v), vec![Rule::CrateRootHeader]);
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint("crates/foo/src/lib.rs", ok, Role::Lib).is_empty());
        let gated = "#![cfg_attr(not(feature = \"simd\"), forbid(unsafe_code))]\n#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
        assert!(lint("crates/spmm/src/lib.rs", gated, Role::Lib).is_empty());
        // Non-roots are not checked.
        assert!(lint("crates/foo/src/util.rs", "pub fn f() {}\n", Role::Lib).is_empty());
    }

    #[test]
    fn vec_new_is_rejected_in_hot_but_fine_outside() {
        let src = "pub fn f() -> Vec<u8> { Vec::new() }\n";
        assert!(lint("crates/foo/src/l.rs", src, Role::Lib).is_empty());
    }

    #[test]
    fn prose_mentions_of_markers_are_inert() {
        // Doc text that *talks about* the markers must not open a hot
        // region or count as an allow attempt.
        let src = "/// Use an `// xct-hot` marker, or `// xct-allow(rule-name): reason`.\npub fn f() { let v = vec![1]; drop(v); }\n";
        let v = lint("crates/foo/src/l.rs", src, Role::Lib);
        assert!(v.is_empty(), "{v:?}");
    }
}
