//! `xct-analyze` — Layer 1 of the workspace invariant checker.
//!
//! A dependency-free static analyzer that walks every `.rs` file in
//! the workspace and enforces the project rules DESIGN.md states in
//! prose: the single `unsafe` boundary, `SAFETY:` justifications,
//! panic-free library code, injectable clocks, allocation-free hot
//! regions, and crate-root unsafe headers. Findings are structured
//! [`lint::LintViolation`] witnesses (file/line/rule/excerpt), never
//! booleans — the same diagnostic contract as `xct-verify`.
//!
//! Layer 2 (abstract interpretation over compiled communication
//! programs) lives in `xct-verify`, next to the plan data it checks;
//! `petaxct analyze` drives both.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod lint;
pub mod selftest;
pub mod workspace;

pub use lint::{LintViolation, Role, Rule, SANCTIONED_UNSAFE, SANCTIONED_WALL_CLOCK};
pub use workspace::{analyze_workspace, classify, WalkError};
