//! A minimal, lossless Rust lexer for lint analysis.
//!
//! The linter never parses Rust properly — it only needs a token stream
//! that is *comment-, string-, and raw-string-aware*, so that the word
//! `unsafe` inside a doc comment or a format string is never mistaken
//! for the keyword. The lexer therefore classifies exactly what the
//! lint rules consume: identifiers, punctuation, comments (text
//! retained — `SAFETY:` justifications and `xct-allow`/`xct-hot`
//! markers live there), and opaque literals. Everything carries its
//! 1-based source line so violations are clickable.
//!
//! Deliberate simplifications, safe for linting purposes:
//!
//! * numeric literals come out as `Other` tokens (their text is never
//!   inspected);
//! * the `'a` lifetime vs `'a'` char-literal ambiguity is resolved by
//!   one character of lookahead past the quoted item, which is exactly
//!   the rule rustc uses for this prefix;
//! * block comments nest, as in real Rust.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// Token classification — just enough structure for the lint rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `Vec`, …).
    Ident(String),
    /// Single punctuation character (`.`, `:`, `!`, `{`, `}`, …).
    Punct(char),
    /// `// …` comment, text including the slashes; doc comments too.
    LineComment(String),
    /// `/* … */` comment (nested), text including delimiters.
    BlockComment(String),
    /// String, raw-string, byte-string, or char literal (contents
    /// opaque to the linter).
    Literal,
    /// Anything else (numbers, lifetimes, shebang residue).
    Other,
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The comment text, if this token is a comment of either form.
    pub fn comment(&self) -> Option<&str> {
        match &self.kind {
            TokKind::LineComment(s) | TokKind::BlockComment(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated
/// literals simply consume to end-of-file (the compiler, not the
/// linter, owns syntax errors).
pub fn lex(source: &str) -> Vec<Tok> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    toks: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, line: usize) {
        self.toks.push(Tok { kind, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                '\'' => self.quote(line),
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), line);
                }
            }
        }
        self.toks
    }

    fn line_comment(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment(text), line);
    }

    fn block_comment(&mut self, line: usize) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment(text), line);
    }

    fn string_literal(&mut self, line: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char (covers \" and \\)
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Literal, line);
    }

    /// True when the cursor sits on `r`/`br` followed by `#…"` or `"`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1; // past the 'r' (or 'b'; 'b' handles "br" below)
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                _ => return false,
            }
        }
    }

    fn raw_string(&mut self, line: usize) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, line);
    }

    /// `'` starts either a char literal or a lifetime. A lifetime is a
    /// quote followed by an identifier *not* closed by another quote.
    fn quote(&mut self, line: usize) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape + closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // Could be 'a' (char) or 'a / 'static (lifetime): a char
                // literal closes with a quote right after one char.
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Literal, line);
                } else {
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Other, line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '{' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Literal, line);
            }
            None => self.push(TokKind::Other, line),
        }
    }

    fn ident(&mut self, line: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident(text), line);
    }

    fn number(&mut self, line: usize) {
        // Consume the maximal run of number-ish characters; suffixes
        // like `u32` and separators like `_` ride along. `1.0` stops at
        // the dot only for range patterns (`0..n`) — lookahead keeps a
        // single dot followed by a digit inside the number.
        while let Some(c) = self.peek(0) {
            let keep = c == '_'
                || c.is_alphanumeric()
                || (c == '.'
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                    && self.peek(1) != Some('.'));
            if keep {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Other, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn keywords_in_comments_and_strings_are_not_idents() {
        let src = r###"
            // unsafe in a comment
            /* unsafe in /* a nested */ block */
            let s = "unsafe in a string";
            let r = r#"unsafe in a raw string"#;
            let b = b"unsafe bytes";
            fn actually_safe() {}
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unsafe"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "actually_safe"));
    }

    #[test]
    fn unsafe_keyword_is_lexed_with_its_line() {
        let toks = lex("fn f() {\n    unsafe { work() }\n}\n");
        let t = toks
            .iter()
            .find(|t| t.ident() == Some("unsafe"))
            .expect("unsafe token");
        assert_eq!(t.line, 2);
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }");
        assert!(ids.iter().any(|i| i == "unwrap"));
    }

    #[test]
    fn char_literals_hide_their_contents() {
        let ids = idents("let c = 'u'; let n = '\\n'; let brace = '{'; next()");
        assert!(ids.iter().any(|i| i == "next"));
        assert!(!ids.iter().any(|i| i == "u"));
    }

    #[test]
    fn comment_text_is_retained_for_markers() {
        let toks = lex("// SAFETY: justified\nunsafe { x() }\n");
        assert_eq!(toks[0].comment(), Some("// SAFETY: justified"), "{toks:?}");
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let ids = idents(r####"let s = r##"quote " inside"##; done()"####);
        assert!(ids.iter().any(|i| i == "done"));
        assert!(!ids.iter().any(|i| i == "inside"));
    }

    #[test]
    fn numbers_lex_as_other() {
        let toks = lex("let x = 1.5e3_f64 + 0x1f; y()");
        assert!(toks.iter().any(|t| t.ident() == Some("y")));
        assert!(!toks.iter().any(|t| t.ident() == Some("e3_f64")));
    }
}
