//! Workspace walker: finds every `.rs` file under the repo root,
//! classifies its build role, and runs the Layer-1 lints over it.

use crate::lint::{check_file, LintViolation, Role};
use std::fs;
use std::path::{Path, PathBuf};

/// Directories never descended into. `testdata` holds the analyzer's
/// own must-reject corpus — deliberately broken sources that are not
/// part of the build.
const SKIP_DIRS: &[&str] = &["target", ".git", "testdata", ".github"];

/// Errors from walking the workspace (I/O, not lint findings).
#[derive(Debug)]
pub struct WalkError {
    /// Path that failed.
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for WalkError {}

/// Classifies a workspace-relative path into its build role.
pub fn classify(rel_path: &str) -> Role {
    let has_seg = |seg: &str| {
        rel_path
            .split('/')
            .rev()
            .skip(1) // a *directory* segment, not the file name
            .any(|s| s == seg)
    };
    if rel_path.starts_with("shims/") {
        Role::Shim
    } else if rel_path.ends_with("build.rs") && !rel_path.contains("/src/") {
        Role::BuildScript
    } else if has_seg("tests") {
        Role::Test
    } else if has_seg("benches") {
        Role::Bench
    } else if has_seg("examples") {
        Role::Example
    } else if has_seg("bin") || rel_path.ends_with("src/main.rs") || rel_path == "main.rs" {
        Role::Bin
    } else {
        Role::Lib
    }
}

/// Walks `root` and lints every `.rs` file. Lint findings accumulate
/// in the returned vec; unreadable files are hard errors (a linter
/// that silently skips files proves nothing).
pub fn analyze_workspace(root: &Path) -> Result<Vec<LintViolation>, WalkError> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    // Deterministic report order regardless of directory iteration.
    files.sort();
    let mut out = Vec::new();
    for rel in &files {
        let path = root.join(rel);
        let source = fs::read_to_string(&path).map_err(|e| WalkError {
            path: path.clone(),
            message: e.to_string(),
        })?;
        out.push_violations(rel, &source);
    }
    Ok(out)
}

/// Small extension so the walk loop reads naturally.
trait PushViolations {
    fn push_violations(&mut self, rel: &str, source: &str);
}

impl PushViolations for Vec<LintViolation> {
    fn push_violations(&mut self, rel: &str, source: &str) {
        check_file(rel, source, classify(rel), self);
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), WalkError> {
    let entries = fs::read_dir(dir).map_err(|e| WalkError {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| WalkError {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_shapes() {
        assert_eq!(classify("crates/comm/src/runtime.rs"), Role::Lib);
        assert_eq!(classify("src/cli.rs"), Role::Lib);
        assert_eq!(classify("src/lib.rs"), Role::Lib);
        assert_eq!(classify("src/main.rs"), Role::Bin);
        assert_eq!(classify("crates/bench/src/bin/perf_suite.rs"), Role::Bin);
        assert_eq!(classify("tests/alloc_free.rs"), Role::Test);
        assert_eq!(classify("crates/io/tests/proptest_io.rs"), Role::Test);
        assert_eq!(
            classify("crates/bench/benches/spmm_kernels.rs"),
            Role::Bench
        );
        assert_eq!(classify("examples/quickstart.rs"), Role::Example);
        assert_eq!(classify("shims/criterion/src/lib.rs"), Role::Shim);
        assert_eq!(classify("build.rs"), Role::BuildScript);
        // A file merely *named* tests.rs in src stays Lib.
        assert_eq!(classify("crates/foo/src/tests.rs"), Role::Lib);
    }
}
