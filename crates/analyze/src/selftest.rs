//! The Layer-1 must-reject sweep: every artifact under `testdata/` must
//! be rejected with exactly the rule it seeds.
//!
//! This is the analyzer analyzing its own corpus — the proof that each
//! lint actually fires. `petaxct analyze --self-test` and the
//! `lints.rs` integration test both drive [`sweep`], so the corpus
//! table has one home.

use crate::lint::{check_file, Rule};
use crate::workspace::classify;
use std::path::Path;

/// The corpus: (testdata file, impersonated workspace path, rule that
/// must fire). Each artifact is narrowly broken — it must trip its own
/// rule and no other.
pub const CORPUS: &[(&str, &str, Rule)] = &[
    (
        "unsafe_outside.rs",
        "crates/comm/src/evil.rs",
        Rule::UnsafeBoundary,
    ),
    (
        "unsafe_no_safety.rs",
        "crates/spmm/src/simd.rs",
        Rule::SafetyComment,
    ),
    ("unwrap_in_lib.rs", "crates/io/src/evil.rs", Rule::NoPanic),
    ("panic_in_lib.rs", "crates/core/src/evil.rs", Rule::NoPanic),
    (
        "wall_clock.rs",
        "crates/solver/src/evil.rs",
        Rule::WallClock,
    ),
    ("hot_alloc.rs", "crates/spmm/src/evil.rs", Rule::HotAlloc),
    (
        "missing_header.rs",
        "crates/evil/src/lib.rs",
        Rule::CrateRootHeader,
    ),
    (
        "allow_no_reason.rs",
        "crates/comm/src/evil2.rs",
        Rule::AllowJustification,
    ),
];

/// Runs the must-reject sweep against the corpus under
/// `testdata_dir`. Returns one line per artifact on success; returns
/// `Err` with every failure (artifact not rejected, rejected for the
/// wrong rule, or unreadable) — a self-test that cannot read its corpus
/// has proven nothing.
pub fn sweep(testdata_dir: &Path) -> Result<Vec<String>, Vec<String>> {
    let mut passed = Vec::new();
    let mut failed = Vec::new();
    for &(file, fake_path, rule) in CORPUS {
        let path = testdata_dir.join(file);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                failed.push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        let mut violations = Vec::new();
        check_file(fake_path, &source, classify(fake_path), &mut violations);
        let hit = violations.iter().find(|v| v.rule == rule);
        match hit {
            None => failed.push(format!(
                "testdata/{file}: expected {rule} to fire, got {violations:?}"
            )),
            Some(_) if violations.iter().any(|o| o.rule != rule) => failed.push(format!(
                "testdata/{file}: tripped rules besides {rule}: {violations:?}"
            )),
            Some(v) => passed.push(format!(
                "testdata/{file}: rejected by {rule} at line {}",
                v.line
            )),
        }
    }
    if failed.is_empty() {
        Ok(passed)
    } else {
        Err(failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_passes_on_the_shipped_corpus() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata");
        let lines = sweep(&dir).expect("corpus sweep");
        assert_eq!(lines.len(), CORPUS.len());
    }

    #[test]
    fn sweep_fails_on_a_missing_corpus() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("no-such-dir");
        let failures = sweep(&dir).expect_err("missing corpus must fail");
        assert_eq!(failures.len(), CORPUS.len());
    }
}
