//! Re-export shim: the optimal partitioning strategy (paper §III-A3)
//! and the Table I complexity model now live in `xct-plan`, where the
//! memory-budgeted planner owns the partitioning decision end to end.
//! This module keeps the historical `xct_core::partition` paths alive.

pub use xct_plan::partition::{Partitioning, TableIComplexity};
