//! Solver checkpointing: persist a [`CglsSnapshot`] to disk and resume
//! the exact iterate sequence after a restart.
//!
//! Format: `"XCKP"` magic, version, iteration, vector lengths, then the
//! three state vectors in f32 little-endian and the two f64 scalars,
//! FNV-trailed like the slice files. State stays in full precision —
//! quantizing the Krylov state would perturb conjugacy on resume.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use xct_solver::CglsSnapshot;

const MAGIC: [u8; 4] = *b"XCKP";
const VERSION: u32 = 1;

/// Checkpoint failure.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Os(std::io::Error),
    /// Malformed checkpoint file.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Os(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "malformed checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Os(e)
    }
}

fn write_vec(out: &mut impl Write, v: &[f32]) -> std::io::Result<()> {
    out.write_all(&(v.len() as u64).to_le_bytes())?;
    for &x in v {
        out.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_vec(input: &mut impl Read) -> Result<Vec<f32>, CheckpointError> {
    let mut len8 = [0u8; 8];
    input.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8) as usize;
    let mut bytes = vec![0u8; len * 4];
    input.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        // xct-allow(no-panic): infallible — chunks_exact(4) yields exactly 4 bytes
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

/// Saves a snapshot.
pub fn save_checkpoint(path: impl AsRef<Path>, snap: &CglsSnapshot) -> Result<(), CheckpointError> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    out.write_all(&MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(snap.iteration as u64).to_le_bytes())?;
    write_vec(&mut out, &snap.x)?;
    write_vec(&mut out, &snap.r)?;
    write_vec(&mut out, &snap.p)?;
    out.write_all(&snap.gamma.to_le_bytes())?;
    out.write_all(&snap.y_norm.to_le_bytes())?;
    out.flush()?;
    Ok(())
}

/// Loads a snapshot.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<CglsSnapshot, CheckpointError> {
    let mut input = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let mut v4 = [0u8; 4];
    input.read_exact(&mut v4)?;
    let version = u32::from_le_bytes(v4);
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let mut it8 = [0u8; 8];
    input.read_exact(&mut it8)?;
    let iteration = u64::from_le_bytes(it8) as usize;
    let x = read_vec(&mut input)?;
    let r = read_vec(&mut input)?;
    let p = read_vec(&mut input)?;
    if x.len() != p.len() {
        return Err(CheckpointError::Format(format!(
            "inconsistent state: |x| = {} but |p| = {}",
            x.len(),
            p.len()
        )));
    }
    let mut s8 = [0u8; 8];
    input.read_exact(&mut s8)?;
    let gamma = f64::from_le_bytes(s8);
    input.read_exact(&mut s8)?;
    let y_norm = f64::from_le_bytes(s8);
    Ok(CglsSnapshot {
        iteration,
        x,
        r,
        p,
        gamma,
        y_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_exec::ExecContext;
    use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};
    use xct_solver::{CglsSolver, SystemMatrixOperator};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xct_checkpoint_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn checkpoint_restart_is_bit_exact() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 16);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        let x_true: Vec<f32> = (0..op_cols(&op)).map(|i| (i % 5) as f32 * 0.2).collect();
        let mut y = vec![0.0f32; sm.num_rays()];
        sm.project(&x_true, &mut y);

        // Straight run.
        let mut ctx = ExecContext::serial();
        let mut straight = CglsSolver::new(&op, &y, &mut ctx);
        for _ in 0..14 {
            straight.step(&op, &mut ctx);
        }

        // Interrupted run through a real file.
        let mut first = CglsSolver::new(&op, &y, &mut ctx);
        for _ in 0..6 {
            first.step(&op, &mut ctx);
        }
        let path = tmp("cgls.ckpt");
        save_checkpoint(&path, first.snapshot()).unwrap();
        drop(first);
        let restored = load_checkpoint(&path).unwrap();
        assert_eq!(restored.iteration, 6);
        let mut resumed = CglsSolver::from_snapshot(&op, restored);
        for _ in 0..8 {
            resumed.step(&op, &mut ctx);
        }
        for (a, b) in resumed.snapshot().x.iter().zip(&straight.snapshot().x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    fn op_cols(op: &dyn xct_solver::LinearOperator) -> usize {
        op.cols()
    }

    #[test]
    fn corrupted_checkpoint_rejected() {
        let path = tmp("bad.ckpt");
        std::fs::write(&path, b"GARBAGE.....").unwrap();
        match load_checkpoint(&path) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("bad magic")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let scan = ScanGeometry::uniform(ImageGrid::square(8, 1.0), 8);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        let y = vec![1.0f32; sm.num_rays()];
        let solver = CglsSolver::new(&op, &y, &mut ExecContext::serial());
        let path = tmp("trunc.ckpt");
        save_checkpoint(&path, solver.snapshot()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Os(_))
        ));
    }
}
