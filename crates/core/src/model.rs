//! Paper-scale reconstruction model: maps a dataset + machine +
//! partitioning + optimization level to a per-activity time breakdown
//! (Tables III–IV, Figs 10–12).
//!
//! The model composes (a) the complexity formulas of Table I, (b) the
//! roofline and α–β link models of `xct-cluster`, and (c) hierarchical
//! volume-reduction ratios — by default the ones measured in the paper's
//! Table IV (socket keeps 100%, node level moves 58.5%, global moves
//! 41.5% of the original partial data), overridable with exact ratios
//! measured from real [`xct_comm`] plans at mini scale.

use crate::partition::Partitioning;
use xct_cluster::{simulate_pipeline, MachineSpec, MinibatchWork, PipelineMode, TimeBreakdown};
use xct_fp16::Precision;

/// Which optimizations are enabled (the three row groups of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptLevel {
    /// XCT-optimized SpMM (§III-B): fusing, staging, packing. Off = the
    /// unfused baseline kernel.
    pub kernel_opt: bool,
    /// Hierarchical communications (§III-D). Off = direct.
    pub comm_hierarchical: bool,
    /// Communication overlapping (§III-E). Off = synchronized.
    pub comm_overlap: bool,
}

impl OptLevel {
    /// Partitioning only (baseline rows of Table III).
    pub fn partitioning_only() -> Self {
        OptLevel {
            kernel_opt: false,
            comm_hierarchical: false,
            comm_overlap: false,
        }
    }

    /// + optimized SpMM.
    pub fn with_kernel() -> Self {
        OptLevel {
            kernel_opt: true,
            comm_hierarchical: false,
            comm_overlap: false,
        }
    }

    /// + hierarchical communications and overlapping (full system).
    pub fn full() -> Self {
        OptLevel {
            kernel_opt: true,
            comm_hierarchical: true,
            comm_overlap: true,
        }
    }
}

/// Hierarchical volume ratios relative to the direct partial-data volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyRatios {
    /// Socket-level moved volume / direct volume.
    pub socket: f64,
    /// Node-level moved volume / direct volume.
    pub node: f64,
    /// Global moved volume / direct volume.
    pub global: f64,
}

impl HierarchyRatios {
    /// Table IV measured ratios: 36.6 → 21.4 → 15.2 TB (double row).
    pub fn paper() -> Self {
        HierarchyRatios {
            socket: 1.0,
            node: 21.4 / 36.6,
            global: 15.2 / 36.6,
        }
    }
}

/// A full-scale experiment description.
#[derive(Debug, Clone)]
pub struct ModelExperiment {
    /// Projections (K).
    pub projections: usize,
    /// Detector rows / slices (M).
    pub rows: usize,
    /// Detector channels (N).
    pub channels: usize,
    /// The machine.
    pub machine: MachineSpec,
    /// Batch × data split.
    pub partitioning: Partitioning,
    /// Precision mode.
    pub precision: Precision,
    /// Optimization level.
    pub opt: OptLevel,
    /// Fusing factor when the kernel optimization is on (paper uses 16).
    pub fusing: usize,
    /// CG iterations (30 in the scaling study; each does one projection
    /// + one backprojection, plus one initial backprojection).
    pub iterations: usize,
    /// Hierarchical volume ratios.
    pub ratios: HierarchyRatios,
    /// Load-imbalance fraction added as idle time (Fig 10 shows ~5–10%).
    pub imbalance: f64,
}

/// Model outcome.
#[derive(Debug, Clone)]
pub struct ModelEstimate {
    /// Per-activity totals over the whole reconstruction.
    pub breakdown: TimeBreakdown,
    /// I/O time (read measurements + write volume).
    pub io_seconds: f64,
    /// CG vector-operation time.
    pub cg_seconds: f64,
    /// End-to-end seconds.
    pub total_seconds: f64,
    /// Sustained kernel FLOP/s across the whole machine.
    pub sustained_flops: f64,
    /// Per-pass wire volumes in bytes `(socket, node, global)` across
    /// all GPUs (Table IV rows).
    pub pass_volumes: (u64, u64, u64),
}

impl ModelExperiment {
    /// Fraction of the roofline bound the real kernel sustains: ELL
    /// padding, imperfectly coalesced stage gathers, and load imbalance
    /// within warps cost the remainder. Calibrated so the Brain run at
    /// 4,096 nodes sustains the paper's 65.4 PFLOPS kernel rate.
    pub const KERNEL_EFFICIENCY: f64 = 0.40;

    /// Builds the experiment from a machine-granularity plan (see
    /// `xct_plan::Planner::plan_machine`): dataset shape, batch × data
    /// split, precision, and fusing come from the plan; `opt`,
    /// `iterations`, and the paper's Table IV ratios with a 7% imbalance
    /// default complete it (override fields afterwards as needed).
    pub fn from_plan(
        plan: &xct_plan::ReconPlan,
        machine: MachineSpec,
        opt: OptLevel,
        iterations: usize,
    ) -> Self {
        ModelExperiment {
            projections: plan.angles,
            rows: plan.dims.slices,
            channels: plan.dims.n,
            machine,
            partitioning: plan.partitioning,
            precision: plan.precision,
            opt,
            fusing: plan.fusing,
            iterations,
            ratios: HierarchyRatios::paper(),
            imbalance: 0.07,
        }
    }

    /// Effective nonzeros per slice: ≈0.55·K·N² (see
    /// `xct-phantom::DatasetSpec::memory_bytes` for the calibration).
    fn nnz_per_slice(&self) -> f64 {
        0.55 * self.projections as f64 * (self.channels as f64).powi(2)
    }

    /// Packed matrix element bytes at this precision.
    fn elem_bytes(&self) -> f64 {
        match self.precision.storage_bytes() {
            2 => 4.0,
            4 => 8.0,
            _ => 16.0,
        }
    }

    /// Runs the model.
    pub fn run(&self) -> ModelEstimate {
        let gpus = self.partitioning.total().min(self.machine.total_gpus());
        let pd = self.partitioning.data as f64;
        let s_bytes = self.precision.storage_bytes() as f64;

        // --- Kernel work per GPU per projection pass -------------------
        let slices_per_gpu = (self.rows as f64 / self.partitioning.batch as f64).ceil();
        let nnz_per_gpu_slice = self.nnz_per_slice() / pd;
        let flops_pass = 2.0 * nnz_per_gpu_slice * slices_per_gpu;

        let fusing = if self.opt.kernel_opt { self.fusing } else { 1 };
        let minibatches = (slices_per_gpu / fusing as f64).ceil().max(1.0) as usize;

        // Memory traffic per GPU per pass: the matrix streams once per
        // minibatch; inputs/outputs stream once per slice. Without the
        // kernel opt the matrix is unpacked (u32 index + full-width
        // value) and re-read per slice, and gathers go to DRAM.
        let bytes_pass = if self.opt.kernel_opt {
            let matrix = nnz_per_gpu_slice * self.elem_bytes() * minibatches as f64;
            let vectors = (self.channels as f64).powi(2) / pd * slices_per_gpu * s_bytes * 2.0;
            matrix + vectors
        } else {
            let unpacked_elem = 4.0 + self.precision.compute_bytes() as f64;
            nnz_per_gpu_slice * slices_per_gpu * (unpacked_elem + s_bytes)
        };

        let peak = self.machine.gpu.peak_flops(self.precision);
        let spill = xct_cluster::spill_penalty(self.precision, fusing);
        let kernel_pass = (flops_pass / peak).max(bytes_pass / self.machine.gpu.mem_bandwidth)
            * spill
            / Self::KERNEL_EFFICIENCY;

        // --- Communication per GPU per pass ----------------------------
        // Partial-data footprint (Table I): each subdomain's shadow is
        // √2·N/√Pd channels wide per angle.
        let footprint_per_slice =
            std::f64::consts::SQRT_2 * self.projections as f64 * self.channels as f64 / pd.sqrt();
        let direct_elems = footprint_per_slice * slices_per_gpu;
        let direct_bytes = direct_elems * s_bytes;

        let (socket_b, node_b, global_b) = if self.opt.comm_hierarchical {
            (
                direct_bytes * self.ratios.socket,
                direct_bytes * self.ratios.node,
                direct_bytes * self.ratios.global,
            )
        } else {
            (0.0, 0.0, direct_bytes)
        };

        let socket_t = socket_b / self.machine.socket_link.bandwidth;
        let node_t = node_b / self.machine.node_link.bandwidth;
        let global_t = global_b / self.machine.global_link.bandwidth
            + minibatches as f64 * self.machine.global_link.latency * (pd.sqrt()).max(1.0);
        // Global messages stage through pinned host buffers, both ways.
        let memcpy_t = 2.0 * global_b / self.machine.memcpy_bandwidth;

        // --- Pipeline over minibatches ---------------------------------
        let per_mb = MinibatchWork {
            kernel: kernel_pass / minibatches as f64,
            socket_comm: socket_t / minibatches as f64,
            node_comm: node_t / minibatches as f64,
            reduction: 0.1 * (socket_t + node_t) / minibatches as f64,
            global_comm: global_t / minibatches as f64,
            memcpy: memcpy_t / minibatches as f64,
        };
        let mode = if self.opt.comm_overlap {
            PipelineMode::OverlappedProjection
        } else {
            PipelineMode::Synchronized
        };
        let works = vec![per_mb; minibatches];
        let pass = simulate_pipeline(&works, mode);

        // One projection + one backprojection per iteration, plus the
        // initial backprojection of CGLS (30 proj + 31 backproj for 30
        // iterations, as in Table IV's footnote).
        let passes = (2 * self.iterations + 1) as f64;
        let mut breakdown = TimeBreakdown::default();
        for _ in 0..(2 * self.iterations + 1) {
            breakdown.accumulate(&pass);
        }
        // Load imbalance shows up as idle.
        let imbalance_idle = breakdown.total * self.imbalance;
        breakdown.idle += imbalance_idle;
        breakdown.total += imbalance_idle;

        // --- CG vector ops and I/O -------------------------------------
        let vol_per_gpu = (self.channels as f64).powi(2) / pd * slices_per_gpu;
        let cg_seconds = self.iterations as f64
            * (10.0 * vol_per_gpu * s_bytes / self.machine.gpu.mem_bandwidth
                + 4.0 * self.machine.global_link.latency * (gpus as f64).log2().max(1.0));
        let io_elements = self.projections as f64 * self.rows as f64 * self.channels as f64
            + self.rows as f64 * (self.channels as f64).powi(2);
        let io_seconds = self.machine.io_time((io_elements * s_bytes) as u64);

        let total_seconds = breakdown.total + cg_seconds + io_seconds;
        // Kernel-only sustained rate — the paper's "65.4 PFLOPS" metric
        // measures the optimized SpMM, not the communication-inclusive
        // wall time.
        let sustained_flops = flops_pass * passes * gpus as f64 / breakdown.kernel.max(1e-30);

        ModelEstimate {
            breakdown,
            io_seconds,
            cg_seconds,
            total_seconds,
            sustained_flops,
            pass_volumes: (
                (socket_b * gpus as f64) as u64,
                (node_b * gpus as f64) as u64,
                (global_b * gpus as f64) as u64,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn charcoal_experiment(nodes: usize, precision: Precision, opt: OptLevel) -> ModelExperiment {
        let machine = MachineSpec::summit(nodes);
        // Table III: partitioning adapts to precision (double 1×128,
        // single 2×64, mixed 4×32 node groups).
        let shrink = precision.footprint_shrink_vs_double();
        let data_nodes = (nodes / shrink).max(1);
        ModelExperiment {
            projections: 4500,
            rows: 4198,
            channels: 6613,
            machine,
            partitioning: Partitioning {
                batch: nodes / data_nodes,
                data: data_nodes * 6,
            },
            precision,
            opt,
            fusing: 16,
            iterations: 30,
            ratios: HierarchyRatios::paper(),
            imbalance: 0.07,
        }
    }

    #[test]
    fn table3_optimizations_compound() {
        // Each optimization must speed up Charcoal on 128 nodes, and the
        // full stack must land in the paper's 3×–20× speedup band.
        let base = charcoal_experiment(128, Precision::Double, OptLevel::partitioning_only())
            .run()
            .total_seconds;
        let kernel = charcoal_experiment(128, Precision::Double, OptLevel::with_kernel())
            .run()
            .total_seconds;
        let full = charcoal_experiment(128, Precision::Mixed, OptLevel::full())
            .run()
            .total_seconds;
        assert!(kernel < base, "kernel opt must help: {base} -> {kernel}");
        assert!(
            full < kernel,
            "comm opt must help further: {kernel} -> {full}"
        );
        let speedup = base / full;
        assert!(
            (6.0..60.0).contains(&speedup),
            "full-stack speedup {speedup} outside plausible band (paper: 18.19×)"
        );
    }

    #[test]
    fn charcoal_mixed_full_matches_paper_minutes() {
        // Paper Table III: Charcoal, 128 nodes, mixed, all opts: 4.3 min.
        let est = charcoal_experiment(128, Precision::Mixed, OptLevel::full()).run();
        let minutes = est.total_seconds / 60.0;
        assert!(
            (1.0..15.0).contains(&minutes),
            "model {minutes:.1} min vs paper 4.3 min — order of magnitude must hold"
        );
    }

    #[test]
    fn hierarchy_cuts_global_volume_by_table4_ratio() {
        let direct = charcoal_experiment(128, Precision::Mixed, OptLevel::with_kernel()).run();
        let hier = charcoal_experiment(128, Precision::Mixed, OptLevel::full()).run();
        let (_, _, g_direct) = direct.pass_volumes;
        let (_, _, g_hier) = hier.pass_volumes;
        let ratio = g_hier as f64 / g_direct as f64;
        assert!(
            (0.35..0.5).contains(&ratio),
            "global volume ratio {ratio} vs paper 0.415"
        );
    }

    #[test]
    fn precision_shrinks_comm_volume_proportionally() {
        let d = charcoal_experiment(128, Precision::Double, OptLevel::full()).run();
        let m = charcoal_experiment(128, Precision::Mixed, OptLevel::full()).run();
        // Mixed halves bytes/element vs single, quarters vs double; the
        // partitioning also changes (more batch), shrinking footprints
        // further — so expect at least 4×.
        assert!(
            d.pass_volumes.2 as f64 / m.pass_volumes.2 as f64 >= 4.0,
            "double {} vs mixed {}",
            d.pass_volumes.2,
            m.pass_volumes.2
        );
    }

    #[test]
    fn overlap_reduces_total_but_not_below_dominant() {
        let sync = charcoal_experiment(
            128,
            Precision::Mixed,
            OptLevel {
                kernel_opt: true,
                comm_hierarchical: true,
                comm_overlap: false,
            },
        )
        .run();
        let over = charcoal_experiment(128, Precision::Mixed, OptLevel::full()).run();
        assert!(over.breakdown.total < sync.breakdown.total);
        // Paper §IV-D: overlap gains 21–29% when comm dominates; must
        // never exceed ~50%.
        let gain = 1.0 - over.breakdown.total / sync.breakdown.total;
        assert!((0.0..0.5).contains(&gain), "overlap gain {gain}");
    }

    #[test]
    fn brain_strong_scaling_follows_inverse_p() {
        // Fig 12b: Brain scales O(1/P) from 128 to 4096 nodes.
        let time = |nodes: usize| {
            let machine = MachineSpec::summit(nodes);
            ModelExperiment {
                projections: 4501,
                rows: 9209,
                channels: 11_283,
                machine,
                partitioning: Partitioning {
                    batch: nodes / 32,
                    data: 192,
                },
                precision: Precision::Mixed,
                opt: OptLevel::full(),
                fusing: 16,
                iterations: 30,
                ratios: HierarchyRatios::paper(),
                imbalance: 0.07,
            }
            .run()
        };
        let t128 = time(128);
        let t1024 = time(1024);
        let t4096 = time(4096);
        let s8 = t128.breakdown.total / t1024.breakdown.total;
        let s32 = t128.breakdown.total / t4096.breakdown.total;
        assert!((6.0..10.0).contains(&s8), "8× nodes gave {s8}× speedup");
        assert!((20.0..40.0).contains(&s32), "32× nodes gave {s32}×");
        // And the flagship number: at 4096 nodes the sustained rate must
        // be tens of PFLOPS (paper: 65.4 PF).
        let pf = t4096.sustained_flops / 1e15;
        assert!((20.0..130.0).contains(&pf), "sustained {pf} PFLOPS");
    }

    #[test]
    fn io_becomes_visible_at_scale() {
        // Fig 12b: I/O performance degrades relative to compute past
        // 1024 nodes (filesystem saturation).
        let frac = |nodes: usize| {
            let machine = MachineSpec::summit(nodes);
            let e = ModelExperiment {
                projections: 4501,
                rows: 9209,
                channels: 11_283,
                machine,
                partitioning: Partitioning {
                    batch: nodes / 32,
                    data: 192,
                },
                precision: Precision::Mixed,
                opt: OptLevel::full(),
                fusing: 16,
                iterations: 30,
                ratios: HierarchyRatios::paper(),
                imbalance: 0.07,
            }
            .run();
            e.io_seconds / e.total_seconds
        };
        assert!(frac(4096) > frac(128), "I/O share must grow with scale");
    }
}
