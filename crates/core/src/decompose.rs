//! Slice decomposition: Hilbert-ordered ownership of voxels and rays,
//! per-rank operator restrictions, and partial-data footprints
//! (paper §III-A1, Fig 7).
//!
//! Both the tomogram plane (`nx × nz` voxels) and the sinogram plane
//! (`channels × angles` bins) are tiled, Hilbert-ordered, and split into
//! equal contiguous runs — one subdomain per data process. A process's
//! *partial-data footprint* is the set of rays its voxels intersect: the
//! rows it contributes partial sums to in a projection (Fig 7b shades
//! these for subdomains 12–14).

use xct_comm::{Footprints, Ownership};
use xct_geometry::{ScanGeometry, SystemMatrix};
use xct_hilbert::{CurveKind, Domain2D, TileDecomposition};
use xct_spmm::Csr;

/// One rank's restriction of the system matrix: rows = its footprint
/// rays, columns = its owned voxels, both reindexed densely.
#[derive(Debug, Clone)]
pub struct LocalOperator {
    /// Global ray ids of the local rows, ascending.
    pub rows: Vec<u32>,
    /// Global voxel ids of the local columns, ascending.
    pub cols: Vec<u32>,
    /// The local sparse operator `A[rows, cols]`.
    pub csr: Csr<f32>,
}

/// The complete decomposition of one slice among `ranks` data processes.
#[derive(Debug, Clone)]
pub struct SliceDecomposition {
    /// Data-process count.
    pub ranks: usize,
    /// Owner rank of every voxel.
    pub voxel_owner: Vec<u32>,
    /// Owner rank of every ray (sinogram bin).
    pub ray_owner: Vec<u32>,
    /// Voxels owned per rank, ascending.
    pub owned_voxels: Vec<Vec<u32>>,
    /// Rays owned per rank, ascending.
    pub owned_rays: Vec<Vec<u32>>,
    /// Partial-data footprints: rays each rank's voxels touch.
    pub footprints: Footprints,
    /// Per-rank restricted operators.
    pub local_ops: Vec<LocalOperator>,
}

impl SliceDecomposition {
    /// Decomposes `scan`'s slice for `plan`: one Hilbert-ordered
    /// subdomain per rank of the plan's topology. A plan carrying
    /// measured [`xct_plan::TileWeights`] re-runs the tomogram
    /// partition with them (the `--weights-from` rebalance path).
    pub fn for_plan(
        sm: &SystemMatrix,
        scan: &ScanGeometry,
        plan: &xct_plan::ReconPlan,
        tile: usize,
        kind: CurveKind,
    ) -> Self {
        let weights = plan.tile_weights.as_ref().map(|tw| {
            assert_eq!(
                tw.tile_size, tile,
                "plan weights were measured at tile size {}, executor uses {}",
                tw.tile_size, tile
            );
            tw.weights.as_slice()
        });
        Self::build_weighted(sm, scan, plan.ranks(), tile, kind, weights)
    }

    /// Decomposes `scan`'s slice among `ranks` processes with square
    /// tiles of `tile` cells, ordered by `kind`.
    pub fn build(
        sm: &SystemMatrix,
        scan: &ScanGeometry,
        ranks: usize,
        tile: usize,
        kind: CurveKind,
    ) -> Self {
        Self::build_weighted(sm, scan, ranks, tile, kind, None)
    }

    /// [`SliceDecomposition::build`] with optional measured per-tile
    /// cost weights (row-major over the tomogram tile grid). Weights
    /// reshape the *tomogram* partition only — sinogram (ray) ownership
    /// stays uniform, since the measured skew keys on voxel tiles.
    pub fn build_weighted(
        sm: &SystemMatrix,
        scan: &ScanGeometry,
        ranks: usize,
        tile: usize,
        kind: CurveKind,
        tile_weights: Option<&[u64]>,
    ) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let grid = scan.grid;
        let channels = scan.detector.channels;
        let angles = scan.angles.len();

        // Tomogram-domain ownership.
        let tomo = TileDecomposition::new(Domain2D::new(grid.nx, grid.nz), tile, kind);
        let owner_map = match tile_weights {
            Some(w) => tomo.cell_owner_map_weighted(ranks, w),
            None => tomo.cell_owner_map(ranks),
        };
        let voxel_owner: Vec<u32> = owner_map.into_iter().map(|o| o as u32).collect();

        // Sinogram-domain ownership: width = channels, height = angles;
        // ray id = angle·channels + channel.
        let sino = TileDecomposition::new(Domain2D::new(channels, angles), tile, kind);
        let sino_owner_cells = sino.cell_owner_map(ranks);
        let ray_owner: Vec<u32> = (0..sm.num_rays())
            .map(|ray| {
                let (a, c) = (ray / channels, ray % channels);
                sino_owner_cells[a * channels + c] as u32
            })
            .collect();

        let mut owned_voxels: Vec<Vec<u32>> = vec![Vec::new(); ranks];
        for (v, &o) in voxel_owner.iter().enumerate() {
            owned_voxels[o as usize].push(v as u32);
        }
        let mut owned_rays: Vec<Vec<u32>> = vec![Vec::new(); ranks];
        for (r, &o) in ray_owner.iter().enumerate() {
            owned_rays[o as usize].push(r as u32);
        }

        // Bucket triplets by column owner; collect footprints.
        let mut local_triplets: Vec<Vec<(u32, u32, f32)>> = vec![Vec::new(); ranks];
        for (row, col, val) in sm.triplets() {
            let p = voxel_owner[col as usize] as usize;
            local_triplets[p].push((row, col, val));
        }
        let mut footprint_rows: Vec<Vec<u32>> = Vec::with_capacity(ranks);
        let mut local_ops = Vec::with_capacity(ranks);
        for (p, triplets) in local_triplets.into_iter().enumerate() {
            let mut rows: Vec<u32> = triplets.iter().map(|&(r, _, _)| r).collect();
            rows.sort_unstable();
            rows.dedup();
            footprint_rows.push(rows.clone());
            let cols = owned_voxels[p].clone();
            // Dense local reindexing.
            // xct-allow(no-panic): infallible — rows was built from these exact triplets above
            let row_of = |g: u32| rows.binary_search(&g).expect("row in footprint") as u32;
            // xct-allow(no-panic): infallible — cols holds every voxel this partition owns
            let col_of = |g: u32| cols.binary_search(&g).expect("col owned") as u32;
            let csr = Csr::from_triplets(
                rows.len(),
                cols.len(),
                triplets.iter().map(|&(r, c, v)| (row_of(r), col_of(c), v)),
            );
            local_ops.push(LocalOperator { rows, cols, csr });
        }

        SliceDecomposition {
            ranks,
            voxel_owner,
            ray_owner,
            owned_voxels,
            owned_rays,
            footprints: Footprints::new(footprint_rows),
            local_ops,
        }
    }

    /// The ray-ownership map in `xct-comm` form.
    pub fn ray_ownership(&self) -> Ownership {
        Ownership::new(self.ray_owner.clone(), self.ranks)
    }

    /// Scatters per-rank tomogram pieces back into a full slice
    /// (slice-major over `fusing` fused slices).
    pub fn assemble_volume(
        &self,
        pieces: &[Vec<f32>],
        num_voxels: usize,
        fusing: usize,
    ) -> Vec<f32> {
        assert_eq!(pieces.len(), self.ranks, "piece count mismatch");
        let mut out = vec![0.0f32; num_voxels * fusing];
        for (p, piece) in pieces.iter().enumerate() {
            let cols = &self.owned_voxels[p];
            assert_eq!(piece.len(), cols.len() * fusing, "piece {p} length");
            for f in 0..fusing {
                for (i, &v) in cols.iter().enumerate() {
                    out[f * num_voxels + v as usize] = piece[f * cols.len() + i];
                }
            }
        }
        out
    }

    /// Restricts a full slice-major vector to rank `p`'s owned voxels.
    pub fn restrict_volume(
        &self,
        full: &[f32],
        num_voxels: usize,
        fusing: usize,
        p: usize,
    ) -> Vec<f32> {
        let cols = &self.owned_voxels[p];
        let mut out = Vec::with_capacity(cols.len() * fusing);
        for f in 0..fusing {
            for &v in cols {
                out.push(full[f * num_voxels + v as usize]);
            }
        }
        out
    }

    /// Restricts a full sinogram vector to rank `p`'s owned rays.
    pub fn restrict_sinogram(
        &self,
        full: &[f32],
        num_rays: usize,
        fusing: usize,
        p: usize,
    ) -> Vec<f32> {
        let rays = &self.owned_rays[p];
        let mut out = Vec::with_capacity(rays.len() * fusing);
        for f in 0..fusing {
            for &r in rays {
                out.push(full[f * num_rays + r as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::ImageGrid;

    fn setup(
        n: usize,
        angles: usize,
        ranks: usize,
    ) -> (SystemMatrix, ScanGeometry, SliceDecomposition) {
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), angles);
        let sm = SystemMatrix::build(&scan);
        let d = SliceDecomposition::build(&sm, &scan, ranks, 4, CurveKind::Hilbert);
        (sm, scan, d)
    }

    #[test]
    fn ownership_partitions_both_domains() {
        let (sm, _, d) = setup(16, 12, 4);
        assert_eq!(d.voxel_owner.len(), 256);
        assert_eq!(d.ray_owner.len(), sm.num_rays());
        let total_vox: usize = d.owned_voxels.iter().map(Vec::len).sum();
        assert_eq!(total_vox, 256);
        let total_rays: usize = d.owned_rays.iter().map(Vec::len).sum();
        assert_eq!(total_rays, sm.num_rays());
        // Roughly balanced.
        for ov in &d.owned_voxels {
            assert!(ov.len() >= 256 / 4 / 2, "{}", ov.len());
        }
    }

    #[test]
    fn local_operators_cover_every_nonzero_once() {
        let (sm, _, d) = setup(12, 8, 3);
        let local_nnz: usize = d.local_ops.iter().map(|op| op.csr.nnz()).sum();
        assert_eq!(local_nnz, sm.nnz());
    }

    #[test]
    fn partial_projections_sum_to_full_projection() {
        // The algebraic heart of data parallelism: Σ_p A[:,T_p]·x[T_p] = A·x.
        let (sm, _, d) = setup(16, 10, 4);
        let x: Vec<f32> = (0..sm.num_voxels())
            .map(|i| ((i * 29 + 13) % 83) as f32 / 83.0)
            .collect();
        let mut y_ref = vec![0.0f32; sm.num_rays()];
        sm.project(&x, &mut y_ref);

        let mut y_sum = vec![0.0f64; sm.num_rays()];
        for op in &d.local_ops {
            let x_loc: Vec<f32> = op.cols.iter().map(|&c| x[c as usize]).collect();
            let mut y_loc = vec![0.0f32; op.rows.len()];
            op.csr.spmv::<f32>(&x_loc, &mut y_loc);
            for (&r, &v) in op.rows.iter().zip(&y_loc) {
                y_sum[r as usize] += f64::from(v);
            }
        }
        for (a, b) in y_sum.iter().zip(&y_ref) {
            assert!(
                (*a as f32 - b).abs() <= 1e-4 * b.abs().max(1.0),
                "{a} vs {b}"
            );
        }
    }

    #[test]
    fn footprints_match_local_rows() {
        let (_, _, d) = setup(12, 8, 4);
        for p in 0..4 {
            assert_eq!(d.footprints.per_rank[p], d.local_ops[p].rows);
        }
    }

    #[test]
    fn hilbert_footprints_are_smaller_than_row_major() {
        // The point of Hilbert ordering: compact subdomains cast compact
        // shadows (fewer footprint rays → less communication).
        let scan = ScanGeometry::uniform(ImageGrid::square(32, 1.0), 24);
        let sm = SystemMatrix::build(&scan);
        let hil = SliceDecomposition::build(&sm, &scan, 8, 4, CurveKind::Hilbert);
        let row = SliceDecomposition::build(&sm, &scan, 8, 4, CurveKind::RowMajor);
        assert!(
            hil.footprints.total_elements() < row.footprints.total_elements(),
            "hilbert {} vs row-major {}",
            hil.footprints.total_elements(),
            row.footprints.total_elements()
        );
    }

    #[test]
    fn restrict_assemble_roundtrip() {
        let (sm, _, d) = setup(12, 8, 3);
        let fusing = 2;
        let full: Vec<f32> = (0..sm.num_voxels() * fusing).map(|i| i as f32).collect();
        let pieces: Vec<Vec<f32>> = (0..3)
            .map(|p| d.restrict_volume(&full, sm.num_voxels(), fusing, p))
            .collect();
        let back = d.assemble_volume(&pieces, sm.num_voxels(), fusing);
        assert_eq!(back, full);
    }

    #[test]
    fn single_rank_decomposition_is_identity() {
        let (sm, _, d) = setup(10, 6, 1);
        assert_eq!(d.local_ops[0].csr.nnz(), sm.nnz());
        assert_eq!(d.owned_voxels[0].len(), sm.num_voxels());
        assert_eq!(d.footprints.per_rank[0].len(), {
            // All rays that hit anything.
            (0..sm.num_rays())
                .filter(|&r| !sm.row(r).is_empty())
                .count()
        });
    }
}
