//! Plan-driven, optionally out-of-core distributed reconstruction:
//! execute a [`ReconPlan`] slab by slab, paging non-resident slabs
//! through `xct-io` while resident compute runs.
//!
//! The paper overlaps I/O with compute the same way it overlaps
//! communication (§III-A2, §III-E): while slab `k` reconstructs, slab
//! `k+1`'s sinogram prefetches on a background thread and slab `k-1`'s
//! volume writes back on another. Slab boundaries — not data movement —
//! determine the arithmetic: each slab runs the exact same multi-rank
//! pipeline it would run fully resident with the same fusing, so a
//! streamed run is bit-identical to an unconstrained run batched at the
//! plan's fusing factor.

use crate::distributed::{reconstruct_distributed, DistributedConfig};
use crate::volume::PipelineError;
use xct_comm::RankCommStats;
use xct_exec::{ExecCounters, MetricId, Phase};
use xct_geometry::ScanGeometry;
use xct_io::{DeferredWriter, PrefetchReader, SliceReader, SliceWriter};
use xct_plan::ReconPlan;

/// Outcome of a plan-driven reconstruction.
#[derive(Debug, Clone)]
pub struct PlannedStats {
    /// Slices reconstructed.
    pub slices: usize,
    /// Slabs executed (the plan's slab count).
    pub slabs: usize,
    /// Whether slabs paged through I/O rather than staying resident.
    pub streamed: bool,
    /// Worst final relative residual across slabs.
    pub worst_residual: f64,
    /// Measured per-rank communication traffic merged across slabs.
    pub comm_stats: Vec<RankCommStats>,
    /// Execution counters merged across ranks and slabs.
    pub counters: ExecCounters,
}

/// [`reconstruct_planned`]'s result: the stats plus the drained reader
/// and completed writer, returned so the caller can verify the input
/// checksum and finish (checksum-seal) the output.
pub struct PlannedOutcome {
    /// Run statistics.
    pub stats: PlannedStats,
    /// The input reader, fully drained.
    pub reader: SliceReader,
    /// The output writer, all slices written but not yet finished.
    pub writer: SliceWriter,
}

fn check(cond: bool, msg: impl FnOnce() -> String) -> Result<(), PipelineError> {
    if cond {
        Ok(())
    } else {
        Err(PipelineError::Geometry(msg()))
    }
}

/// Executes `plan` against `scan`: reads each slab's sinogram from
/// `reader`, reconstructs it on the plan's simulated topology, and
/// writes its tomogram slices to `writer` in order.
///
/// When the plan streams (more than one slab), the next slab's read and
/// the previous slab's write run on background threads while the
/// current slab computes. Runtime knobs the plan does not own — wire
/// model, iteration count, telemetry, plan verification, kernel shape —
/// come from `base`; the plan overrides topology, precision, exchange
/// mode, overlap, and per-slab fusing.
pub fn reconstruct_planned(
    scan: &ScanGeometry,
    plan: &ReconPlan,
    reader: SliceReader,
    writer: SliceWriter,
    base: &DistributedConfig,
) -> Result<PlannedOutcome, PipelineError> {
    let num_rays = scan.angles.len() * scan.detector.channels;
    let num_voxels = scan.grid.nx * scan.grid.nz;
    check(plan.dims.n == scan.detector.channels, || {
        format!(
            "plan made for n = {}, scan has {} channels",
            plan.dims.n, scan.detector.channels
        )
    })?;
    check(reader.meta().slice_len == num_rays, || {
        format!(
            "file has {} scalars per slice, scan produces {num_rays}",
            reader.meta().slice_len
        )
    })?;
    check(reader.meta().slices == plan.dims.slices, || {
        format!(
            "plan covers {} slices, file holds {}",
            plan.dims.slices,
            reader.meta().slices
        )
    })?;
    check(writer.meta().slice_len == num_voxels, || {
        format!(
            "output expects {} scalars per slice, volume slices have {num_voxels}",
            writer.meta().slice_len
        )
    })?;
    check(writer.meta().slices == plan.dims.slices, || {
        format!(
            "plan covers {} slices, output file expects {}",
            plan.dims.slices,
            writer.meta().slices
        )
    })?;
    debug_assert!(plan.fits(), "executing an over-budget plan");

    let mut cfg_base = DistributedConfig {
        topology: plan.topology,
        precision: plan.precision,
        hierarchical: plan.hierarchical,
        overlap: plan.overlap,
        ..base.clone()
    };
    if let Some(shape) = plan.kernel {
        // A tuned tile shape travels with the plan (petaxct tune →
        // --tune-from) and overrides the executor defaults.
        cfg_base.block_size = shape.block_size;
        cfg_base.shared_bytes = shape.shared_bytes;
    }
    if let Some(tw) = &plan.tile_weights {
        // Measured tile weights travel with the plan (petaxct profile →
        // --weights-from); the decomposition must run at the tile size
        // they were measured against.
        cfg_base.tile = tw.tile_size;
        cfg_base.tile_weights = Some(tw.clone());
    }
    let telemetry = cfg_base.telemetry.clone();
    let streamed = plan.streaming();

    // Publish the plan shape so progress reporting and budget-health
    // gauges have denominators before the first slab lands.
    telemetry.gauge_set(MetricId::ProgressSlabsTotal, plan.slabs.len() as f64);
    telemetry.gauge_set(MetricId::ProgressItersPerSlab, cfg_base.iterations as f64);
    #[allow(clippy::cast_precision_loss)] // gauges are approximate by nature
    {
        if let Some(budget) = plan.budget_bytes {
            telemetry.gauge_set(MetricId::PlanBudgetBytes, budget as f64);
        }
        telemetry.gauge_set(MetricId::PlanUsedBytes, plan.per_rank_bytes() as f64);
    }

    let mut stats = PlannedStats {
        slices: 0,
        slabs: 0,
        streamed,
        worst_residual: 0.0,
        comm_stats: Vec::new(),
        counters: ExecCounters::default(),
    };

    let mut input = PrefetchReader::with_telemetry(reader, telemetry.clone());
    let mut output = DeferredWriter::with_telemetry(writer, telemetry.clone());
    if let Some(first) = plan.slabs.first() {
        input.prefetch(first.len);
    }
    // xct-hot
    for slab in &plan.slabs {
        telemetry.gauge_set(MetricId::StreamSlabCurrent, slab.index as f64);
        telemetry.profile_slab_set(slab.index as u32);
        let data = {
            let _io = telemetry.span(Phase::Io);
            input.next(slab.len)?
        }
        .ok_or_else(|| {
            // xct-allow(hot-alloc): cold error path — only reached when the input file is truncated
            PipelineError::Geometry(format!("input exhausted before slab {}", slab.index))
        })?;
        // Kick off the next slab's read before this slab computes.
        if let Some(next) = plan.slabs.get(slab.index + 1) {
            input.prefetch(next.len);
        }
        let cfg = DistributedConfig {
            fusing: slab.len,
            ..cfg_base.clone()
        };
        let result = reconstruct_distributed(scan, &data, &cfg);
        {
            // Queue the write-back; blocks only on the previous slab's
            // write, so the stall (if any) is what the span measures.
            let _io = telemetry.span(Phase::Io);
            output.write_slab(result.x)?;
        }
        stats.slices += slab.len;
        stats.slabs += 1;
        telemetry.metric_inc(MetricId::StreamSlabsDone);
        telemetry.metric_add(MetricId::StreamSlicesDone, slab.len as u64);
        stats.counters.merge(&result.counters);
        for rank_stats in &result.comm_stats {
            match stats
                .comm_stats
                .iter_mut()
                .find(|m| m.rank == rank_stats.rank)
            {
                Some(m) => m.merge(rank_stats),
                None => stats.comm_stats.push(rank_stats.clone()),
            }
        }
        stats.worst_residual = stats
            .worst_residual
            .max(*result.residual_history.last().unwrap_or(&1.0));
    }
    let reader = input.into_inner()?;
    let writer = output.into_inner()?;
    Ok(PlannedOutcome {
        stats,
        reader,
        writer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_fp16::Precision;
    use xct_geometry::ImageGrid;
    use xct_io::{FileKind, SliceFile};
    use xct_phantom::shale_like;
    use xct_plan::{Planner, VolumeDims};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xct_core_stream_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn write_sinograms(scan: &ScanGeometry, slices: usize, path: &std::path::Path) {
        let sm = xct_geometry::SystemMatrix::build(scan);
        let meta = SliceFile {
            kind: FileKind::Sinogram,
            precision: Precision::Single,
            slices,
            slice_len: sm.num_rays(),
        };
        let mut w = SliceWriter::create(path, meta).unwrap();
        for s in 0..slices {
            let img = shale_like(scan.grid.nx, 40 + s as u64);
            let mut sino = vec![0.0f32; sm.num_rays()];
            sm.project(&img.data, &mut sino);
            w.write_slice(&sino).unwrap();
        }
        w.finish().unwrap();
    }

    fn volume_writer(path: &std::path::Path, slices: usize, num_voxels: usize) -> SliceWriter {
        SliceWriter::create(
            path,
            SliceFile {
                kind: FileKind::Volume,
                precision: Precision::Single,
                slices,
                slice_len: num_voxels,
            },
        )
        .unwrap()
    }

    #[test]
    fn streamed_run_is_bit_identical_to_resident_batches() {
        let n = 16;
        let slices = 6;
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), 16);
        let sino = tmp("stream_in.xctd");
        write_sinograms(&scan, slices, &sino);
        let planner = Planner {
            precision: Precision::Single,
            max_fusing: slices,
            ..Default::default()
        };
        let dims = VolumeDims { n, slices };
        let topo = xct_comm::Topology::new(1, 2, 2);
        let base = DistributedConfig {
            iterations: 6,
            ..Default::default()
        };

        // Budget forcing fusing 2 → 3 streamed slabs.
        let probe = planner.plan(dims, 16, None, topo).unwrap();
        let budget = probe.matrix_bytes_per_rank() + 2 * probe.slice_bytes_per_rank();
        let plan = planner.plan(dims, 16, Some(budget), topo).unwrap();
        assert!(plan.streaming());
        let streamed_out = tmp("stream_out.xctd");
        let outcome = reconstruct_planned(
            &scan,
            &plan,
            SliceReader::open(&sino).unwrap(),
            volume_writer(&streamed_out, slices, n * n),
            &base,
        )
        .unwrap();
        assert!(outcome.stats.streamed);
        assert_eq!(outcome.stats.slabs, 3);
        assert_eq!(outcome.stats.slices, slices);
        outcome.reader.verify_checksum().unwrap();
        outcome.writer.finish().unwrap();

        // A resident plan at the same fusing (no budget pressure, fusing
        // capped to 2) must produce byte-identical output.
        let resident = Planner {
            max_fusing: 2,
            ..planner
        }
        .plan(dims, 16, None, topo)
        .unwrap();
        assert_eq!(resident.fusing, 2);
        let resident_out = tmp("resident_out.xctd");
        let outcome = reconstruct_planned(
            &scan,
            &resident,
            SliceReader::open(&sino).unwrap(),
            volume_writer(&resident_out, slices, n * n),
            &base,
        )
        .unwrap();
        outcome.writer.finish().unwrap();
        assert_eq!(
            std::fs::read(&streamed_out).unwrap(),
            std::fs::read(&resident_out).unwrap(),
            "streamed and resident runs must be bit-identical"
        );
    }

    #[test]
    fn plan_file_mismatch_is_reported() {
        let n = 12;
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), 12);
        let sino = tmp("mismatch_in.xctd");
        write_sinograms(&scan, 3, &sino);
        // Plan made for 5 slices against a 3-slice file.
        let plan = Planner {
            precision: Precision::Single,
            ..Default::default()
        }
        .plan(
            VolumeDims { n, slices: 5 },
            12,
            None,
            xct_comm::Topology::new(1, 1, 2),
        )
        .unwrap();
        let out = tmp("mismatch_out.xctd");
        match reconstruct_planned(
            &scan,
            &plan,
            SliceReader::open(&sino).unwrap(),
            volume_writer(&out, 5, n * n),
            &DistributedConfig::default(),
        ) {
            Err(PipelineError::Geometry(m)) => assert!(m.contains("5 slices"), "{m}"),
            Err(other) => panic!("expected geometry error, got {other:?}"),
            Ok(_) => panic!("mismatched plan must not run"),
        }
    }
}
