//! The double-buffered stage pipeline (paper §III-E, Figs 11–12),
//! factored out of the distributed operator so every overlapped loop —
//! forward exchange, transpose scatter, and the out-of-core slab stream
//! — shares one schedule with one proof of correctness.
//!
//! A pipelined loop over `n` items decomposes into four stages:
//!
//! * `compute(f)` — local work producing item `f`'s outgoing data,
//! * `begin(f)`   — post item `f`'s exchange (nonblocking), returning an
//!   in-flight handle,
//! * `finish(f)`  — complete item `f`'s exchange (blocking),
//! * `consume(f)` — local work on item `f`'s received data.
//!
//! Synchronous schedule (`overlap = false`): strictly sequential per
//! item — `compute(f) → begin(f) → finish(f) → consume(f)`.
//!
//! Overlapped schedule (`overlap = true`), per item:
//!
//! ```text
//! compute(f) → finish(f-1) → begin(f) → consume(f-1)
//! ```
//!
//! so item `f-1`'s exchange is in flight across `compute(f)` (that is
//! the overlap window) and item `f-1`'s received data is consumed while
//! item `f`'s exchange is in flight. Crucially `finish(f-1)` runs
//! *before* `begin(f)`: at most one exchange is in flight, its telemetry
//! span closes before the next opens (so spans attach to the enclosing
//! iteration instead of chaining under each other and inflating the
//! iteration's self time), and the drain at the end of the loop is the
//! only tail work.
//!
//! Both schedules execute the same per-item stage sequence, so when the
//! items are data-independent (fused slices are), the overlapped
//! schedule is bit-identical to the synchronous one — only the waiting
//! moves.

/// Runs the four-stage pipeline over items `0..n`. All stages receive
/// `state` (the caller's mutable working set: buffers, contexts) so the
/// closures never contend for captured borrows.
pub fn run_pipeline<S, P>(
    n: usize,
    overlap: bool,
    state: &mut S,
    mut compute: impl FnMut(&mut S, usize),
    mut begin: impl FnMut(&mut S, usize) -> P,
    mut finish: impl FnMut(&mut S, usize, P),
    mut consume: impl FnMut(&mut S, usize),
) {
    if !overlap {
        for f in 0..n {
            compute(state, f);
            let inflight = begin(state, f);
            finish(state, f, inflight);
            consume(state, f);
        }
        return;
    }
    let mut pending: Option<(usize, P)> = None;
    for f in 0..n {
        compute(state, f);
        let done = pending.take().map(|(pf, p)| {
            finish(state, pf, p);
            pf
        });
        let inflight = begin(state, f);
        pending = Some((f, inflight));
        if let Some(pf) = done {
            consume(state, pf);
        }
    }
    if let Some((pf, p)) = pending.take() {
        finish(state, pf, p);
        consume(state, pf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Op {
        Compute(usize),
        Begin(usize),
        Finish(usize),
        Consume(usize),
    }

    fn schedule(n: usize, overlap: bool) -> Vec<Op> {
        let mut log = Vec::new();
        run_pipeline(
            n,
            overlap,
            &mut log,
            |log: &mut Vec<Op>, f| log.push(Op::Compute(f)),
            |log, f| {
                log.push(Op::Begin(f));
                f
            },
            |log, f, handle| {
                assert_eq!(handle, f, "handle must travel with its item");
                log.push(Op::Finish(f));
            },
            |log, f| log.push(Op::Consume(f)),
        );
        log
    }

    #[test]
    fn synchronous_schedule_is_strictly_sequential() {
        assert_eq!(
            schedule(2, false),
            vec![
                Op::Compute(0),
                Op::Begin(0),
                Op::Finish(0),
                Op::Consume(0),
                Op::Compute(1),
                Op::Begin(1),
                Op::Finish(1),
                Op::Consume(1),
            ]
        );
    }

    #[test]
    fn overlapped_schedule_finishes_before_beginning() {
        assert_eq!(
            schedule(3, true),
            vec![
                Op::Compute(0),
                Op::Begin(0),
                Op::Compute(1), // overlap window: exchange 0 in flight
                Op::Finish(0),  // ...and closes before exchange 1 opens
                Op::Begin(1),
                Op::Consume(0), // consumed under exchange 1
                Op::Compute(2),
                Op::Finish(1),
                Op::Begin(2),
                Op::Consume(1),
                Op::Finish(2), // drain
                Op::Consume(2),
            ]
        );
    }

    #[test]
    fn both_schedules_run_identical_per_item_sequences() {
        for n in 0..5 {
            for overlap in [false, true] {
                let log = schedule(n, overlap);
                assert_eq!(log.len(), 4 * n);
                for f in 0..n {
                    let pos = |op: Op| log.iter().position(|&o| o == op).unwrap();
                    assert!(pos(Op::Compute(f)) < pos(Op::Begin(f)));
                    assert!(pos(Op::Begin(f)) < pos(Op::Finish(f)));
                    assert!(pos(Op::Finish(f)) < pos(Op::Consume(f)));
                }
            }
        }
    }

    #[test]
    fn at_most_one_exchange_in_flight() {
        for overlap in [false, true] {
            let log = schedule(4, overlap);
            let mut in_flight = 0usize;
            for op in log {
                match op {
                    Op::Begin(_) => {
                        in_flight += 1;
                        assert_eq!(
                            in_flight, 1,
                            "a second exchange opened before the first closed"
                        );
                    }
                    Op::Finish(_) => in_flight -= 1,
                    _ => {}
                }
            }
            assert_eq!(in_flight, 0);
        }
    }
}
