//! PetaXCT core: the paper's 3D reconstruction system assembled from its
//! substrates.
//!
//! * [`partition`] — the batch × data partitioning strategy of §III-A and
//!   the computational-complexity formulas of Table I,
//! * [`decompose`] — Hilbert-ordered slice decomposition: voxel/ray
//!   ownership, per-rank operator restrictions, partial-data footprints,
//! * [`distributed`] — the executable multi-rank pipeline: partial
//!   (back)projections through the optimized kernels, hierarchical (or
//!   direct) communication, distributed CGLS — real arithmetic at mini
//!   scale,
//! * [`model`] — the paper-scale estimator: Table I complexity + measured
//!   kernel/communication shapes mapped through the machine model, for
//!   the Summit-sized experiments (Tables III–IV, Figs 10–12),
//! * [`Reconstructor`] — the single-call public API used by the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod decompose;
pub mod distributed;
pub mod model;
pub mod partition;
mod recon;
pub mod volume;

pub use partition::{Partitioning, TableIComplexity};
pub use recon::{Algorithm, ReconOptions, Reconstructor};
pub use volume::{reconstruct_volume, PipelineError, VolumeStats};
