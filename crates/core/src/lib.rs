//! PetaXCT core: the paper's 3D reconstruction system assembled from its
//! substrates.
//!
//! * [`partition`] — the batch × data partitioning strategy of §III-A and
//!   the computational-complexity formulas of Table I,
//! * [`decompose`] — Hilbert-ordered slice decomposition: voxel/ray
//!   ownership, per-rank operator restrictions, partial-data footprints,
//! * [`distributed`] — the executable multi-rank pipeline: partial
//!   (back)projections through the optimized kernels, hierarchical (or
//!   direct) communication, distributed CGLS — real arithmetic at mini
//!   scale,
//! * [`pipeline`] — the double-buffered stage schedule (§III-E) shared
//!   by the overlapped exchanges and the out-of-core slab stream,
//! * [`stream`] — plan-driven execution of an `xct_plan::ReconPlan`:
//!   slabs page through `xct-io` on background threads while resident
//!   slabs compute, bit-identical to the fully resident path,
//! * [`model`] — the paper-scale estimator: Table I complexity + measured
//!   kernel/communication shapes mapped through the machine model, for
//!   the Summit-sized experiments (Tables III–IV, Figs 10–12),
//! * [`drift`] — the `petaxct-profile-v1` artifact builder: measured
//!   per-component costs joined with causal slack, per-tile costs
//!   derived from the operator's nonzero distribution, and the
//!   model-vs-measured drift table,
//! * [`Reconstructor`] — the single-call public API used by the examples.
//!
//! # Execution contexts
//!
//! Every hot path in this crate runs through an [`xct_exec::ExecContext`]:
//! the entry points construct one context per logical run —
//! [`Reconstructor::reconstruct`] a threaded one shared by all iterations,
//! [`distributed::reconstruct_distributed`] a serial one per rank — and
//! hand it to the `*_in` solver variants, so per-apply staging (quantized
//! operands, kernel accumulators, CG vectors, distributed footprints) is
//! reused from the context's workspace instead of reallocated. The
//! migration rule for new code: take scratch from `ctx.workspace` keyed by
//! a `BufferRole`, never `vec![...]` inside an apply or an iteration loop.
//! See DESIGN.md §3a; `tests/alloc_free.rs` enforces the discipline with a
//! counting allocator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod decompose;
pub mod distributed;
pub mod drift;
pub mod model;
pub mod partition;
pub mod pipeline;
mod recon;
pub mod stream;
pub mod volume;

pub use drift::{build_profile_report, model_shares, ProfileInputs};
pub use partition::{Partitioning, TableIComplexity};
pub use recon::{Algorithm, ReconOptions, Reconstructor};
pub use stream::{reconstruct_planned, PlannedOutcome, PlannedStats};
pub use volume::{reconstruct_volume, reconstruct_volume_in, PipelineError, VolumeStats};
