//! Builds the `petaxct-profile-v1` artifact: joins the telemetry cost
//! profiler's measured per-component self times with the causal layer's
//! critical-path attribution, derives per-tile costs from the operator's
//! nonzero distribution, and scores the measured run against the
//! Tables III–IV analytic model (model-drift attribution).
//!
//! Per-tile costs are *derived*, not timed: timing individual tiles
//! would change the kernel's loop structure (and with it the
//! floating-point reduction order), breaking the bit-identity guarantees
//! the executor is built on. Instead the owning rank's measured SpMM
//! self time is spread over its tiles proportionally to the per-tile
//! operator nonzeros — the same quantity the SpMM's work scales with.

use crate::model::ModelEstimate;
use xct_comm::Topology;
use xct_fp16::Precision;
use xct_geometry::{ScanGeometry, SystemMatrix};
use xct_hilbert::{CurveKind, Domain2D, TileDecomposition};
use xct_plan::{ComponentDrift, ProfileReport, RankCost, SkewReport};
use xct_telemetry::{
    CausalAnalysis, CostComponent, ProfileSnapshot, TelemetrySnapshot, ALL_COMPONENTS,
    COMPONENT_COUNT,
};

/// Everything a profiled run leaves behind, gathered for the artifact
/// builder.
pub struct ProfileInputs<'a> {
    /// Geometry the run reconstructed.
    pub scan: &'a ScanGeometry,
    /// Slices in the profiled stack.
    pub slices: usize,
    /// Rank topology the run executed on.
    pub topology: Topology,
    /// Precision mode of the run.
    pub precision: Precision,
    /// Hilbert tile size of the run's decomposition.
    pub tile: usize,
    /// Tile weights the run partitioned with (`None` = uniform); the
    /// derived per-tile costs must attribute to the ownership that
    /// actually executed.
    pub tile_weights: Option<&'a [u64]>,
    /// The full span/event/edge snapshot (causal layer input).
    pub snapshot: &'a TelemetrySnapshot,
    /// The cost profiler's slab copy.
    pub profile: &'a ProfileSnapshot,
    /// Analytic-model estimate for the same problem, when available;
    /// without it the drift table's predicted shares are zero.
    pub model: Option<&'a ModelEstimate>,
}

/// The model's predicted per-component share of total predicted time,
/// in [`ALL_COMPONENTS`] order.
///
/// Mapping from the model's activity breakdown: `kernel` is SpMM
/// compute, `memcpy` is the staging gather/convert, `socket_comm` maps
/// to the socket reduction, `node_comm + reduction` to the node
/// reduction, `global_comm` to the global exchange, `idle` (the model's
/// imbalance plus pipeline bubbles) to comm-wait, and `io_seconds` to
/// I/O stall.
pub fn model_shares(estimate: &ModelEstimate) -> [f64; COMPONENT_COUNT] {
    let b = &estimate.breakdown;
    let mut shares = [0.0f64; COMPONENT_COUNT];
    shares[CostComponent::SpmmCompute.index()] = b.kernel;
    shares[CostComponent::GatherConvert.index()] = b.memcpy;
    shares[CostComponent::ReduceSocket.index()] = b.socket_comm;
    shares[CostComponent::ReduceNode.index()] = b.node_comm + b.reduction;
    shares[CostComponent::ReduceGlobal.index()] = b.global_comm;
    shares[CostComponent::CommWait.index()] = b.idle;
    shares[CostComponent::IoStall.index()] = estimate.io_seconds;
    let total: f64 = shares.iter().sum();
    if total > 0.0 {
        for s in &mut shares {
            *s /= total;
        }
    }
    shares
}

/// Per-tile nonzero counts of `sm`, row-major over the
/// `ceil(n / tile) ×  ceil(n / tile)` tomogram tile grid.
fn tile_nnz(sm: &SystemMatrix, scan: &ScanGeometry, tile: usize) -> Vec<u64> {
    let nx = scan.grid.nx;
    let tiles_x = nx.div_ceil(tile);
    let tiles_y = scan.grid.nz.div_ceil(tile);
    let mut nnz = vec![0u64; tiles_x * tiles_y];
    for (_, col, _) in sm.triplets() {
        let x = col as usize % nx;
        let z = col as usize / nx;
        nnz[(z / tile) * tiles_x + x / tile] += 1;
    }
    nnz
}

/// Spreads each rank's measured SpMM self time over its tiles in
/// proportion to per-tile nonzeros. Tiles of a rank that recorded no
/// SpMM time (or holds no nonzeros) cost zero.
fn derive_tile_costs(
    tomo: &TileDecomposition,
    ranks: usize,
    tile_weights: Option<&[u64]>,
    nnz: &[u64],
    spmm_ns_of: impl Fn(usize) -> u64,
) -> Vec<u64> {
    let (tiles_x, _) = tomo.tile_grid();
    let subdomains = match tile_weights {
        Some(w) => tomo.partition_weighted(ranks, w),
        None => tomo.partition(ranks),
    };
    let mut costs = vec![0u64; nnz.len()];
    for sd in subdomains {
        let rank_nnz: u64 = sd.tiles.iter().map(|t| nnz[t.ty * tiles_x + t.tx]).sum();
        if rank_nnz == 0 {
            continue;
        }
        let spmm_ns = spmm_ns_of(sd.id);
        for t in sd.tiles {
            let idx = t.ty * tiles_x + t.tx;
            let share = u128::from(spmm_ns) * u128::from(nnz[idx]) / u128::from(rank_nnz);
            // xct-allow(no-panic): share <= spmm_ns, which fits u64
            costs[idx] = u64::try_from(share).unwrap();
        }
    }
    costs
}

/// Builds the full [`ProfileReport`] from a profiled run's leavings.
pub fn build_profile_report(inputs: &ProfileInputs) -> ProfileReport {
    let scan = inputs.scan;
    let ranks = inputs.topology.size();
    let causal = CausalAnalysis::from_snapshot(inputs.snapshot);

    // Per-rank wire time: simulated wire nanoseconds of messages this
    // rank received (matched), summed from the causal edges.
    let mut wire_by_rank = vec![0u64; ranks];
    for e in &inputs.snapshot.edges {
        if let Some(w) = wire_by_rank.get_mut(e.dst_track as usize) {
            *w = w.saturating_add(e.wire_ns);
        }
    }

    let mut rank_costs = Vec::with_capacity(ranks);
    for (rank, &wire_ns) in wire_by_rank.iter().enumerate() {
        let mut components = [0u64; COMPONENT_COUNT];
        for c in ALL_COMPONENTS {
            components[c.index()] = inputs.profile.track_component_ns(rank, c);
        }
        let path = causal.per_rank.iter().find(|r| r.track as usize == rank);
        rank_costs.push(RankCost {
            rank: rank as u32,
            busy_ns: path.map_or(0, |r| r.busy_ns),
            on_path_ns: path.map_or(0, |r| r.on_path_ns),
            slack_ns: path.map_or(0, |r| r.slack_ns),
            wire_ns,
            components,
        });
    }

    // Derived per-tile costs over the same ownership the run executed.
    let sm = SystemMatrix::build(scan);
    let tomo = TileDecomposition::new(
        Domain2D::new(scan.grid.nx, scan.grid.nz),
        inputs.tile,
        CurveKind::Hilbert,
    );
    let (tiles_x, tiles_y) = tomo.tile_grid();
    let nnz = tile_nnz(&sm, scan, inputs.tile);
    let tile_costs_ns = derive_tile_costs(&tomo, ranks, inputs.tile_weights, &nnz, |rank| {
        rank_costs[rank].component_ns(CostComponent::SpmmCompute)
    });

    // Model-vs-measured drift, in shares of the respective totals.
    let predicted = inputs.model.map(model_shares).unwrap_or_default();
    let measured_total: u64 = ALL_COMPONENTS
        .iter()
        .map(|&c| inputs.profile.component_ns(c))
        .sum();
    let drift = ALL_COMPONENTS
        .iter()
        .map(|&component| {
            let measured_ns = inputs.profile.component_ns(component);
            let measured_share = if measured_total == 0 {
                0.0
            } else {
                measured_ns as f64 / measured_total as f64
            };
            ComponentDrift {
                component,
                measured_ns,
                measured_share,
                predicted_share: predicted[component.index()],
            }
        })
        .collect();

    let max_tile_ns = tile_costs_ns.iter().copied().max().unwrap_or(0);
    let mean_tile_ns = if tile_costs_ns.is_empty() {
        0.0
    } else {
        tile_costs_ns.iter().sum::<u64>() as f64 / tile_costs_ns.len() as f64
    };
    let mut zero_slack_ranks: Vec<u32> = causal
        .per_rank
        .iter()
        .filter(|r| r.slack_ns == 0)
        .map(|r| r.track)
        .collect();
    zero_slack_ranks.sort_unstable();
    let skew = SkewReport {
        max_tile_ns,
        mean_tile_ns,
        critical_path_ns: causal.critical_path_ns,
        max_rank_slack_ns: causal
            .per_rank
            .iter()
            .map(|r| r.slack_ns)
            .max()
            .unwrap_or(0),
        zero_slack_ranks,
    };

    ProfileReport {
        precision: inputs.precision,
        n: scan.detector.channels,
        slices: inputs.slices,
        angles: scan.angles.len(),
        topology: inputs.topology,
        tile_size: inputs.tile,
        tiles_x,
        tiles_y,
        tile_costs_ns,
        ranks: rank_costs,
        drift,
        skew,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::ImageGrid;

    #[test]
    fn tile_nnz_covers_every_nonzero_exactly_once() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 12);
        let sm = SystemMatrix::build(&scan);
        let nnz = tile_nnz(&sm, &scan, 4);
        assert_eq!(nnz.len(), 16);
        assert_eq!(nnz.iter().sum::<u64>(), sm.triplets().count() as u64);
        // Central tiles see more rays than corners for a centered scan.
        assert!(nnz.iter().any(|&c| c > 0));
    }

    #[test]
    fn derived_tile_costs_conserve_rank_spmm_time_within_rounding() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 12);
        let sm = SystemMatrix::build(&scan);
        let tomo = TileDecomposition::new(Domain2D::new(16, 16), 4, CurveKind::Hilbert);
        let nnz = tile_nnz(&sm, &scan, 4);
        let spmm = [10_000u64, 20_000, 30_000, 40_000];
        let costs = derive_tile_costs(&tomo, 4, None, &nnz, |r| spmm[r]);
        assert_eq!(costs.len(), 16);
        for sd in tomo.partition(4) {
            let rank_total: u64 = sd.tiles.iter().map(|t| costs[t.ty * 4 + t.tx]).sum();
            // Floor division loses at most one nanosecond per tile.
            let budget = spmm[sd.id];
            assert!(
                rank_total <= budget && budget - rank_total <= sd.tiles.len() as u64,
                "rank {} spread {rank_total} of {budget}",
                sd.id
            );
        }
    }

    #[test]
    fn model_shares_sum_to_one_and_map_every_component() {
        use crate::model::{ModelExperiment, OptLevel};
        use xct_cluster::MachineSpec;
        use xct_plan::Planner;
        let machine = MachineSpec::summit(2);
        let plan = Planner::default().plan_machine(512, 64, 512, &machine, 16);
        let est = ModelExperiment::from_plan(&plan, machine, OptLevel::full(), 10).run();
        let shares = model_shares(&est);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(shares[CostComponent::SpmmCompute.index()] > 0.0);
        assert!(shares[CostComponent::IoStall.index()] > 0.0);
    }
}
