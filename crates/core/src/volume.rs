//! The 3D volume pipeline: stream sinogram slices from disk in I/O
//! batches, reconstruct each batch through the fused kernels, stream the
//! tomogram slices back out (paper §III-A2).
//!
//! The paper partitions each batch into minibatches whose processing
//! overlaps MPI and GPU work; here the I/O batch *is* the fused minibatch
//! (one trip through the packed matrix reconstructs the whole batch
//! simultaneously), and batches stream sequentially so memory stays
//! bounded regardless of volume size.

use crate::recon::{ReconOptions, Reconstructor};
use xct_exec::{ExecContext, Phase};
use xct_io::{IoError, SliceReader, SliceWriter};

/// Outcome of a volume reconstruction.
#[derive(Debug, Clone)]
pub struct VolumeStats {
    /// Slices reconstructed.
    pub slices: usize,
    /// I/O batches processed.
    pub batches: usize,
    /// Worst final relative residual across batches.
    pub worst_residual: f64,
    /// Total CG iterations performed.
    pub total_iterations: usize,
}

/// Volume-pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// Underlying file error.
    Io(IoError),
    /// The input file does not match the reconstructor geometry.
    Geometry(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "pipeline I/O error: {e}"),
            PipelineError::Geometry(m) => write!(f, "geometry mismatch: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<IoError> for PipelineError {
    fn from(e: IoError) -> Self {
        PipelineError::Io(e)
    }
}

/// Streams `reader`'s sinogram slices through `recon` in I/O batches of
/// `io_batch` slices, writing tomogram slices to `writer` in order.
///
/// `writer` must be created for the same slice count and
/// `recon.num_voxels()` scalars per slice; the caller finishes it (so a
/// trailer checksum is written) after this returns.
pub fn reconstruct_volume(
    recon: &Reconstructor,
    reader: &mut SliceReader,
    writer: &mut SliceWriter,
    opts: &ReconOptions,
    io_batch: usize,
) -> Result<VolumeStats, PipelineError> {
    let mut ctx = ExecContext::parallel();
    reconstruct_volume_in(recon, reader, writer, opts, io_batch, &mut ctx)
}

/// [`reconstruct_volume`] running inside a caller-owned [`ExecContext`]:
/// every batch reuses the context's warm workspace, and when its
/// telemetry handle is enabled the read/solve/write pipeline is recorded
/// as spans ([`Phase::Io`] around file traffic, solver phases inside the
/// reconstruction).
pub fn reconstruct_volume_in(
    recon: &Reconstructor,
    reader: &mut SliceReader,
    writer: &mut SliceWriter,
    opts: &ReconOptions,
    io_batch: usize,
    ctx: &mut ExecContext,
) -> Result<VolumeStats, PipelineError> {
    if reader.meta().slice_len != recon.num_rays() {
        return Err(PipelineError::Geometry(format!(
            "file has {} scalars per slice, scan produces {}",
            reader.meta().slice_len,
            recon.num_rays()
        )));
    }
    let mut stats = VolumeStats {
        slices: 0,
        batches: 0,
        worst_residual: 0.0,
        total_iterations: 0,
    };
    loop {
        let batch = {
            let _io = ctx.telemetry.span(Phase::Io);
            reader.read_batch(io_batch)?
        };
        let Some(batch) = batch else { break };
        let fusing = batch.len() / recon.num_rays();
        let result = recon.reconstruct_in(&batch, &ReconOptions { fusing, ..*opts }, ctx);
        {
            let _io = ctx.telemetry.span(Phase::Io);
            for f in 0..fusing {
                writer
                    .write_slice(&result.x[f * recon.num_voxels()..(f + 1) * recon.num_voxels()])?;
            }
        }
        stats.slices += fusing;
        stats.batches += 1;
        stats.total_iterations += result.report.iterations;
        stats.worst_residual = stats
            .worst_residual
            .max(*result.report.residual_history.last().unwrap_or(&1.0));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_fp16::Precision;
    use xct_geometry::{ImageGrid, ScanGeometry};
    use xct_io::{FileKind, SliceFile};
    use xct_phantom::shale_like;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xct_core_volume_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn build_dataset(
        recon: &Reconstructor,
        slices: usize,
        path: &std::path::Path,
    ) -> Vec<Vec<f32>> {
        let meta = SliceFile {
            kind: FileKind::Sinogram,
            precision: Precision::Single,
            slices,
            slice_len: recon.num_rays(),
        };
        let mut w = SliceWriter::create(path, meta).unwrap();
        let mut truths = Vec::new();
        for s in 0..slices {
            let img = shale_like(recon.scan().grid.nx, 900 + s as u64);
            w.write_slice(&recon.project(&img.data)).unwrap();
            truths.push(img.data);
        }
        w.finish().unwrap();
        truths
    }

    #[test]
    fn streams_and_reconstructs_whole_volume() {
        let n = 24;
        let slices = 10;
        let recon = Reconstructor::new(ScanGeometry::uniform(ImageGrid::square(n, 1.0), 24));
        let sino_path = tmp("vol_in.xctd");
        let vol_path = tmp("vol_out.xctd");
        let truths = build_dataset(&recon, slices, &sino_path);

        let mut reader = SliceReader::open(&sino_path).unwrap();
        let mut writer = SliceWriter::create(
            &vol_path,
            SliceFile {
                kind: FileKind::Volume,
                precision: Precision::Single,
                slices,
                slice_len: recon.num_voxels(),
            },
        )
        .unwrap();
        let stats = reconstruct_volume(
            &recon,
            &mut reader,
            &mut writer,
            &ReconOptions {
                precision: Precision::Mixed,
                iterations: 25,
                ..Default::default()
            },
            4,
        )
        .unwrap();
        reader.verify_checksum().unwrap();
        writer.finish().unwrap();

        assert_eq!(stats.slices, slices);
        assert_eq!(stats.batches, 3); // 4 + 4 + 2
        assert!(stats.worst_residual < 0.05, "{}", stats.worst_residual);

        // Read back and compare to the phantoms.
        let mut vr = SliceReader::open(&vol_path).unwrap();
        let all = vr.read_batch(slices).unwrap().unwrap();
        vr.verify_checksum().unwrap();
        for (s, truth) in truths.iter().enumerate() {
            let piece = &all[s * recon.num_voxels()..(s + 1) * recon.num_voxels()];
            let num: f64 = piece
                .iter()
                .zip(truth)
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                .sum();
            let den: f64 = truth.iter().map(|&v| f64::from(v).powi(2)).sum();
            let err = (num / den).sqrt();
            assert!(err < 0.25, "slice {s} error {err}");
        }
    }

    #[test]
    fn geometry_mismatch_is_reported() {
        let recon = Reconstructor::new(ScanGeometry::uniform(ImageGrid::square(16, 1.0), 16));
        let path = tmp("mismatch.xctd");
        let meta = SliceFile {
            kind: FileKind::Sinogram,
            precision: Precision::Single,
            slices: 1,
            slice_len: 99, // wrong
        };
        let mut w = SliceWriter::create(&path, meta).unwrap();
        w.write_slice(&vec![0.0; 99]).unwrap();
        w.finish().unwrap();
        let mut reader = SliceReader::open(&path).unwrap();
        let vol_path = tmp("mismatch_out.xctd");
        let mut writer = SliceWriter::create(
            &vol_path,
            SliceFile {
                kind: FileKind::Volume,
                precision: Precision::Single,
                slices: 1,
                slice_len: 256,
            },
        )
        .unwrap();
        match reconstruct_volume(
            &recon,
            &mut reader,
            &mut writer,
            &ReconOptions::default(),
            2,
        ) {
            Err(PipelineError::Geometry(m)) => assert!(m.contains("99")),
            other => panic!("expected geometry error, got {:?}", other.map(|s| s.slices)),
        }
    }
}
