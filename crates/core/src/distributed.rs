//! The executable distributed reconstruction pipeline: every rank is a
//! simulated GPU running the optimized kernels on its subdomain, with
//! partial-data exchanges between (back)projections and a distributed
//! CGLS on top (paper §III, end to end, at mini scale).
//!
//! Forward projection per iteration: each rank runs the fused buffered
//! SpMM on its voxel subdomain → partial sinogram over its footprint →
//! hierarchical (or direct) reduce to ray owners. Backprojection: owners
//! scatter sinogram values back to footprints → local transposed SpMM.
//! CGLS inner products go through an allreduce, and the adaptive
//! normalization factor for half-precision wire data is agreed on
//! globally with a max-allreduce (§III-C1 applied across ranks).

use crate::decompose::SliceDecomposition;
use xct_comm::{
    execute_direct, execute_hierarchical, run_ranks_traced, scatter_direct, scatter_hierarchical,
    Communicator, DirectPlan, HierarchicalPlan, Ownership, PartialData, RankCommStats, Topology,
    Wire,
};
use xct_exec::{BufferRole, ExecContext, ExecCounters, Telemetry};
use xct_fp16::{Precision, F16};
use xct_geometry::{ScanGeometry, SystemMatrix};
use xct_hilbert::CurveKind;
use xct_solver::{cgls_in, CglsConfig, LinearOperator, PrecisionOperator};

/// Distributed run configuration.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Node structure; rank count = `topology.size()`.
    pub topology: Topology,
    /// Precision mode (storage + wire + compute).
    pub precision: Precision,
    /// Slices reconstructed simultaneously (the minibatch/fusing factor).
    pub fusing: usize,
    /// Hierarchical (true) or direct (false) partial-data exchange.
    pub hierarchical: bool,
    /// CG iterations.
    pub iterations: usize,
    /// Hilbert tile size for both domain decompositions.
    pub tile: usize,
    /// Threads per simulated GPU block.
    pub block_size: usize,
    /// Staging-buffer bytes per block.
    pub shared_bytes: usize,
    /// Telemetry sink shared by all rank threads. Disabled by default —
    /// pass [`Telemetry::enabled`] to collect per-rank spans (each rank
    /// records on its own track) and keep the phase breakdown.
    pub telemetry: Telemetry,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Mixed,
            fusing: 1,
            hierarchical: true,
            iterations: 30,
            tile: 4,
            block_size: 32,
            shared_bytes: 48 * 1024,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Distributed run outcome.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// Reconstructed volume, slice-major (`fusing × num_voxels`).
    pub x: Vec<f32>,
    /// Relative residual after each iteration (from rank 0's view of the
    /// global reduced norms — identical on all ranks).
    pub residual_history: Vec<f64>,
    /// Elements exchanged per level per (back)projection pass:
    /// `(socket, node, global)`; direct mode reports all volume as
    /// global.
    pub comm_elements: (u64, u64, u64),
    /// Measured per-rank communication traffic (byte/message counts per
    /// peer and per traffic class), ordered by rank.
    pub comm_stats: Vec<RankCommStats>,
    /// Execution counters merged across all ranks.
    pub counters: ExecCounters,
}

/// One rank's distributed operator: local optimized kernels plus
/// plan-driven exchanges.
struct RankOperator<'a> {
    comm: &'a Communicator,
    decomp: &'a SliceDecomposition,
    ownership: &'a Ownership,
    direct: &'a DirectPlan,
    hier: &'a HierarchicalPlan,
    cfg: &'a DistributedConfig,
    local: PrecisionOperator,
    rank: usize,
    footprint_len: usize,
    owned_rays_len: usize,
    owned_vox_len: usize,
    num_rays_per_slice: usize,
}

impl RankOperator<'_> {
    /// Exchange partial sums at the configured precision, returning
    /// owned-row totals for one fused slice.
    fn reduce_partials(&self, rows: &[u32], vals: &[f32]) -> PartialData<f32> {
        // Agree on a global normalization factor so the quantized
        // partials from different ranks combine coherently.
        match self.cfg.precision {
            Precision::Double => self.exchange_as::<f64>(rows, vals, 1.0),
            Precision::Single => self.exchange_as::<f32>(rows, vals, 1.0),
            Precision::Half | Precision::Mixed => {
                let local_max = vals.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let global_max = self
                    .comm
                    .allreduce_max(0x7000, f64::from(local_max))
                    .expect("allreduce_max");
                let factor = if global_max > f64::MIN_POSITIVE {
                    (256.0 / global_max) as f32
                } else {
                    1.0
                };
                let mut out = self.exchange_as::<F16>(rows, vals, factor);
                let undo = 1.0 / factor;
                for v in &mut out.vals {
                    *v *= undo;
                }
                out
            }
        }
    }

    fn exchange_as<S: Wire>(&self, rows: &[u32], vals: &[f32], factor: f32) -> PartialData<f32> {
        let quantized: Vec<S> = vals.iter().map(|&v| S::from_f32(v * factor)).collect();
        let mine = PartialData::new(rows.to_vec(), quantized);
        let reduced = if self.cfg.hierarchical {
            execute_hierarchical(self.comm, self.hier, self.ownership, &mine)
        } else {
            execute_direct(self.comm, self.direct, self.ownership, &mine)
        }
        .expect("partial-data exchange");
        PartialData::new(
            reduced.rows,
            reduced.vals.into_iter().map(|v| v.to_f32()).collect(),
        )
    }

    /// Scatter owned sinogram values to this rank's footprint (transpose
    /// direction), at wire precision.
    fn scatter_owned(&self, owned_vals: &[f32], factor: f32) -> Vec<f32> {
        let rows = &self.decomp.owned_rays[self.rank];
        match self.cfg.precision {
            Precision::Double => self.scatter_as::<f64>(rows, owned_vals, factor),
            Precision::Single => self.scatter_as::<f32>(rows, owned_vals, factor),
            Precision::Half | Precision::Mixed => self.scatter_as::<F16>(rows, owned_vals, factor),
        }
    }

    fn scatter_as<S: Wire>(&self, rows: &[u32], vals: &[f32], factor: f32) -> Vec<f32> {
        let quantized: Vec<S> = vals.iter().map(|&v| S::from_f32(v * factor)).collect();
        let owned = PartialData::new(rows.to_vec(), quantized);
        let footprint = &self.decomp.footprints.per_rank[self.rank];
        // Backprojection reverses the hierarchy (Fig 8, right): global
        // scatter to node designees, then node- and socket-level fan-out.
        let filled = if self.cfg.hierarchical {
            scatter_hierarchical(self.comm, self.hier, self.ownership, &owned, footprint)
        } else {
            scatter_direct(self.comm, self.direct, self.ownership, &owned, footprint)
        }
        .expect("scatter exchange");
        let undo = 1.0 / factor;
        filled.vals.into_iter().map(|v| v.to_f32() * undo).collect()
    }
}

impl LinearOperator for RankOperator<'_> {
    fn rows(&self) -> usize {
        self.owned_rays_len * self.cfg.fusing
    }

    fn cols(&self) -> usize {
        self.owned_vox_len * self.cfg.fusing
    }

    fn apply(&self, x: &[f32], y: &mut [f32], ctx: &mut ExecContext) {
        // Local fused SpMM over the footprint rows.
        let mut partial = ctx
            .workspace
            .take::<f32>(BufferRole::Forward, self.footprint_len * self.cfg.fusing);
        self.local.apply(x, &mut partial, ctx);
        // Exchange+reduce per fused slice.
        let fp = &self.decomp.footprints.per_rank[self.rank];
        for f in 0..self.cfg.fusing {
            let slice = &partial[f * self.footprint_len..(f + 1) * self.footprint_len];
            let reduced = self.reduce_partials(fp, slice);
            debug_assert_eq!(reduced.rows, self.decomp.owned_rays[self.rank]);
            y[f * self.owned_rays_len..(f + 1) * self.owned_rays_len]
                .copy_from_slice(&reduced.vals);
        }
        ctx.workspace.put(BufferRole::Forward, partial);
        let _ = self.num_rays_per_slice;
    }

    fn apply_transpose(&self, y: &[f32], x: &mut [f32], ctx: &mut ExecContext) {
        // Agree on a normalization factor for the scatter direction.
        let factor = match self.cfg.precision {
            Precision::Half | Precision::Mixed => {
                let local_max = y.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let global_max = self
                    .comm
                    .allreduce_max(0x7100, f64::from(local_max))
                    .expect("allreduce_max");
                if global_max > f64::MIN_POSITIVE {
                    (256.0 / global_max) as f32
                } else {
                    1.0
                }
            }
            _ => 1.0,
        };
        // Scatter owned sinogram values to footprints, per fused slice.
        let mut footprint_vals = ctx
            .workspace
            .take::<f32>(BufferRole::Footprint, self.footprint_len * self.cfg.fusing);
        for f in 0..self.cfg.fusing {
            let owned = &y[f * self.owned_rays_len..(f + 1) * self.owned_rays_len];
            let filled = self.scatter_owned(owned, factor);
            footprint_vals[f * self.footprint_len..(f + 1) * self.footprint_len]
                .copy_from_slice(&filled);
        }
        // Local transposed fused SpMM.
        self.local.apply_transpose(&footprint_vals, x, ctx);
        ctx.workspace.put(BufferRole::Footprint, footprint_vals);
    }
}

/// Runs a complete distributed reconstruction of `fusing` slices that
/// share the geometry `scan`. `sinogram` is slice-major
/// (`fusing × num_rays`). Returns the assembled volume.
pub fn reconstruct_distributed(
    scan: &ScanGeometry,
    sinogram: &[f32],
    cfg: &DistributedConfig,
) -> DistributedResult {
    let sm = SystemMatrix::build(scan);
    assert_eq!(
        sinogram.len(),
        sm.num_rays() * cfg.fusing,
        "sinogram length mismatch"
    );
    let ranks = cfg.topology.size();
    let decomp = SliceDecomposition::build(&sm, scan, ranks, cfg.tile, CurveKind::Hilbert);
    let ownership = decomp.ray_ownership();
    let direct = DirectPlan::build(&decomp.footprints, &ownership);
    let hier = HierarchicalPlan::build(&decomp.footprints, &ownership, &cfg.topology);

    let comm_elements = if cfg.hierarchical {
        hier.level_elements()
    } else {
        (0, 0, direct.total_elements())
    };

    let outputs = run_ranks_traced(ranks, &cfg.telemetry, |comm| {
        let rank = comm.rank();
        let op_local = &decomp.local_ops[rank];
        let local = PrecisionOperator::new(
            &op_local.csr,
            cfg.precision,
            cfg.fusing,
            cfg.block_size,
            cfg.shared_bytes,
        );
        let rank_op = RankOperator {
            comm,
            decomp: &decomp,
            ownership: &ownership,
            direct: &direct,
            hier: &hier,
            cfg,
            local,
            rank,
            footprint_len: op_local.rows.len(),
            owned_rays_len: decomp.owned_rays[rank].len(),
            owned_vox_len: decomp.owned_voxels[rank].len(),
            num_rays_per_slice: sm.num_rays(),
        };
        let y_local = decomp.restrict_sinogram(sinogram, sm.num_rays(), cfg.fusing, rank);
        let mut tag = 0x9000u64;
        // One context per rank — each simulated GPU owns its workspace.
        // The rank's telemetry handle is the communicator's fork, so
        // solver spans and exchange spans nest on one per-rank track.
        let mut ctx = ExecContext::serial()
            .with_precision(cfg.precision)
            .with_telemetry(comm.telemetry().clone());
        let report = cgls_in(
            &rank_op,
            &y_local,
            &CglsConfig {
                max_iters: cfg.iterations,
                tolerance: 0.0,
                damping: 0.0,
            },
            &mut ctx,
            &mut |v| {
                tag = tag.wrapping_add(2);
                comm.allreduce_sum(tag, v).expect("allreduce_sum")
            },
        );
        (
            report.x,
            report.residual_history,
            comm.comm_stats(),
            ctx.counters,
        )
    });

    let pieces: Vec<Vec<f32>> = outputs.iter().map(|(x, _, _, _)| x.clone()).collect();
    let x = decomp.assemble_volume(&pieces, sm.num_voxels(), cfg.fusing);
    let comm_stats: Vec<RankCommStats> = outputs.iter().map(|(_, _, s, _)| s.clone()).collect();
    let mut counters = ExecCounters::default();
    for (_, _, _, c) in &outputs {
        counters.merge(c);
    }
    DistributedResult {
        x,
        residual_history: outputs[0].1.clone(),
        comm_elements,
        comm_stats,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_comm::run_ranks;
    use xct_geometry::ImageGrid;
    use xct_solver::{cgls, CglsConfig, SystemMatrixOperator};

    fn phantom_sinogram(scan: &ScanGeometry, fusing: usize) -> (SystemMatrix, Vec<f32>, Vec<f32>) {
        let sm = SystemMatrix::build(scan);
        let n = scan.grid.nx;
        let mut x_true = vec![0.0f32; sm.num_voxels() * fusing];
        for f in 0..fusing {
            for i in 0..sm.num_voxels() {
                let (ix, iz) = (
                    (i % n) as f32 - n as f32 / 2.0 + 0.5,
                    (i / n) as f32 - n as f32 / 2.0 + 0.5,
                );
                let r2 = ix * ix + iz * iz;
                x_true[f * sm.num_voxels() + i] = if r2 < (n as f32 / 3.0).powi(2) {
                    0.8 + 0.1 * f as f32
                } else {
                    0.0
                };
            }
        }
        let mut y = vec![0.0f32; sm.num_rays() * fusing];
        for f in 0..fusing {
            sm.project(
                &x_true[f * sm.num_voxels()..(f + 1) * sm.num_voxels()],
                &mut y[f * sm.num_rays()..(f + 1) * sm.num_rays()],
            );
        }
        (sm, x_true, y)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&p, &q)| (f64::from(p) - f64::from(q)).powi(2))
            .sum();
        let den: f64 = b.iter().map(|&q| f64::from(q).powi(2)).sum();
        (num / den.max(1e-30)).sqrt()
    }

    #[test]
    fn distributed_matches_single_process_reference() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 16);
        let (sm, _x_true, y) = phantom_sinogram(&scan, 1);
        // Single-process reference CGLS.
        let reference = cgls(
            &SystemMatrixOperator::new(&sm),
            &y,
            &CglsConfig {
                max_iters: 12,
                tolerance: 0.0,
                damping: 0.0,
            },
        );
        // Distributed, single precision (no quantization noise), direct.
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            fusing: 1,
            hierarchical: false,
            iterations: 12,
            ..Default::default()
        };
        let dist = reconstruct_distributed(&scan, &y, &cfg);
        let err = rel_err(&dist.x, &reference.x);
        assert!(err < 5e-3, "distributed vs reference error {err}");
        // Residual histories agree too.
        for (a, b) in dist
            .residual_history
            .iter()
            .zip(&reference.residual_history)
        {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn hierarchical_equals_direct_distributed() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let (_, _, y) = phantom_sinogram(&scan, 1);
        let base = DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Single,
            fusing: 1,
            iterations: 8,
            ..Default::default()
        };
        let direct = reconstruct_distributed(
            &scan,
            &y,
            &DistributedConfig {
                hierarchical: false,
                ..base.clone()
            },
        );
        let hier = reconstruct_distributed(
            &scan,
            &y,
            &DistributedConfig {
                hierarchical: true,
                ..base
            },
        );
        let err = rel_err(&hier.x, &direct.x);
        assert!(err < 1e-4, "hierarchical vs direct error {err}");
    }

    #[test]
    fn mixed_precision_distributed_converges() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 20);
        let (sm, x_true, y) = phantom_sinogram(&scan, 1);
        let cfg = DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Mixed,
            fusing: 1,
            hierarchical: true,
            iterations: 25,
            ..Default::default()
        };
        let dist = reconstruct_distributed(&scan, &y, &cfg);
        let _ = sm;
        let err = rel_err(&dist.x, &x_true);
        assert!(err < 0.15, "mixed distributed reconstruction error {err}");
        // Residuals descend.
        let hist = &dist.residual_history;
        assert!(
            hist.last().unwrap() < &0.1,
            "final residual {}",
            hist.last().unwrap()
        );
    }

    #[test]
    fn fused_slices_reconstruct_together() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 16);
        let fusing = 3;
        let (sm, x_true, y) = phantom_sinogram(&scan, fusing);
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            fusing,
            hierarchical: true,
            iterations: 20,
            ..Default::default()
        };
        let dist = reconstruct_distributed(&scan, &y, &cfg);
        for f in 0..fusing {
            let err = rel_err(
                &dist.x[f * sm.num_voxels()..(f + 1) * sm.num_voxels()],
                &x_true[f * sm.num_voxels()..(f + 1) * sm.num_voxels()],
            );
            assert!(err < 0.15, "slice {f} error {err}");
        }
    }

    #[test]
    fn rank_operator_is_adjoint_across_ranks() {
        // ⟨A·x, y⟩ = ⟨x, Aᵀ·y⟩ must hold for the *distributed* operator:
        // partial SpMM + exchange on the forward side against scatter +
        // transposed SpMM on the backward side, summed over all ranks.
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let sm = SystemMatrix::build(&scan);
        for &(precision, hierarchical, tol) in &[
            (Precision::Single, false, 1e-6),
            (Precision::Single, true, 1e-6),
            (Precision::Double, true, 1e-6),
            (Precision::Mixed, true, 2e-2),
            (Precision::Half, true, 5e-2),
        ] {
            let cfg = DistributedConfig {
                topology: Topology::new(1, 2, 2),
                precision,
                fusing: 1,
                hierarchical,
                iterations: 1,
                ..Default::default()
            };
            let ranks = cfg.topology.size();
            let decomp = SliceDecomposition::build(&sm, &scan, ranks, cfg.tile, CurveKind::Hilbert);
            let ownership = decomp.ray_ownership();
            let direct = DirectPlan::build(&decomp.footprints, &ownership);
            let hier = HierarchicalPlan::build(&decomp.footprints, &ownership, &cfg.topology);
            let x_global: Vec<f32> = (0..sm.num_voxels())
                .map(|i| ((i * 23 + 7) % 41) as f32 / 41.0)
                .collect();
            let y_global: Vec<f32> = (0..sm.num_rays())
                .map(|i| ((i * 17 + 3) % 29) as f32 / 29.0)
                .collect();
            let outputs = run_ranks(ranks, |comm| {
                let rank = comm.rank();
                let op_local = &decomp.local_ops[rank];
                let local = PrecisionOperator::new(
                    &op_local.csr,
                    cfg.precision,
                    1,
                    cfg.block_size,
                    cfg.shared_bytes,
                );
                let rank_op = RankOperator {
                    comm,
                    decomp: &decomp,
                    ownership: &ownership,
                    direct: &direct,
                    hier: &hier,
                    cfg: &cfg,
                    local,
                    rank,
                    footprint_len: op_local.rows.len(),
                    owned_rays_len: decomp.owned_rays[rank].len(),
                    owned_vox_len: decomp.owned_voxels[rank].len(),
                    num_rays_per_slice: sm.num_rays(),
                };
                let mut ctx = ExecContext::serial();
                let x_local: Vec<f32> = decomp.owned_voxels[rank]
                    .iter()
                    .map(|&v| x_global[v as usize])
                    .collect();
                let y_local: Vec<f32> = decomp.owned_rays[rank]
                    .iter()
                    .map(|&r| y_global[r as usize])
                    .collect();
                let mut ax = vec![0.0f32; rank_op.rows()];
                rank_op.apply(&x_local, &mut ax, &mut ctx);
                let lhs_part: f64 = ax
                    .iter()
                    .zip(&y_local)
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum();
                let mut aty = vec![0.0f32; rank_op.cols()];
                rank_op.apply_transpose(&y_local, &mut aty, &mut ctx);
                let rhs_part: f64 = aty
                    .iter()
                    .zip(&x_local)
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum();
                let lhs = comm.allreduce_sum(0x6000, lhs_part).expect("allreduce");
                let rhs = comm.allreduce_sum(0x6002, rhs_part).expect("allreduce");
                (lhs, rhs)
            });
            let (lhs, rhs) = outputs[0];
            assert!(
                (lhs - rhs).abs() <= tol * lhs.abs().max(1.0),
                "{precision:?} hier={hierarchical}: ⟨Ax,y⟩ = {lhs} vs ⟨x,Aᵀy⟩ = {rhs}"
            );
        }
    }

    #[test]
    fn comm_accounting_reports_hierarchy() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 12);
        let (_, _, y) = phantom_sinogram(&scan, 1);
        let cfg = DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Single,
            iterations: 1,
            hierarchical: true,
            ..Default::default()
        };
        let res = reconstruct_distributed(&scan, &y, &cfg);
        let (s, n, g) = res.comm_elements;
        assert!(s > 0, "socket traffic expected");
        assert!(g > 0, "global traffic expected");
        // Global (post-reduction) must not exceed socket-level input.
        assert!(g <= s + n + g);
        // Measured traffic and merged counters ride along with the plan.
        assert_eq!(res.comm_stats.len(), cfg.topology.size());
        assert!(res.comm_stats.iter().any(|st| st.total_bytes() > 0));
        assert!(res.counters.kernel_launches > 0);
        assert!(res.counters.flops > 0);
    }

    #[test]
    fn distributed_run_records_per_rank_spans() {
        use xct_exec::{Phase, Telemetry};
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let (_, _, y) = phantom_sinogram(&scan, 1);
        let telemetry = Telemetry::enabled();
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            iterations: 3,
            hierarchical: true,
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let _ = reconstruct_distributed(&scan, &y, &cfg);
        let snap = telemetry.snapshot();
        for rank in 0..cfg.topology.size() as u32 {
            let iters = snap
                .spans
                .iter()
                .filter(|s| s.track == rank && s.phase == Phase::SolverIteration)
                .count();
            assert_eq!(iters, 3, "rank {rank} iteration spans");
            assert!(
                snap.spans
                    .iter()
                    .any(|s| s.track == rank && s.phase == Phase::ReduceSocket),
                "rank {rank} socket-reduce span"
            );
        }
        // Residual events were emitted per rank per iteration.
        let events = snap
            .events
            .iter()
            .filter(|e| e.name == "cgls.residual")
            .count();
        assert_eq!(events, 3 * cfg.topology.size());
    }
}
