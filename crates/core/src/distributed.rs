//! The executable distributed reconstruction pipeline: every rank is a
//! simulated GPU running the optimized kernels on its subdomain, with
//! partial-data exchanges between (back)projections and a distributed
//! CGLS on top (paper §III, end to end, at mini scale).
//!
//! Forward projection per iteration: each rank runs the buffered SpMM on
//! its voxel subdomain one fused slice at a time → partial sinogram over
//! its footprint → hierarchical (or direct) reduce to ray owners through
//! a *compiled* communication plan. Backprojection: owners scatter
//! sinogram values back to footprints → local transposed SpMM. CGLS inner
//! products go through an allreduce, and the adaptive normalization
//! factor for half-precision wire data is agreed on globally with a
//! max-allreduce (§III-C1 applied across ranks).
//!
//! With [`DistributedConfig::overlap`] the fused slices form a
//! double-buffered software pipeline (paper §III-E, Figs 11–12): slice
//! `s`'s global exchange drains via posted irecvs while slice `s+1` runs
//! its local SpMM and socket/node reductions. Results are bit-identical
//! to the synchronous schedule — the same floating-point operations run
//! in the same order; only the waiting moves.

use crate::decompose::SliceDecomposition;
use crate::pipeline::run_pipeline;
use std::sync::Mutex;
use xct_comm::{
    run_ranks_traced_wired, Communicator, CompiledPlans, DirectPlan, ExchangeScratch,
    GlobalInFlight, HierarchicalPlan, RankCommStats, ScatterInFlight, Topology, Wire, WireModel,
};
use xct_exec::{BufferRole, ExecContext, ExecCounters, Telemetry};
use xct_fp16::{Precision, F16};
use xct_geometry::{ScanGeometry, SystemMatrix};
use xct_hilbert::{CurveKind, Domain2D, TileDecomposition};
use xct_plan::ReconPlan;
use xct_solver::{cgls_in, CglsConfig, LinearOperator, PrecisionOperator};

/// Distributed run configuration.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Node structure; rank count = `topology.size()`.
    pub topology: Topology,
    /// Precision mode (storage + wire + compute).
    pub precision: Precision,
    /// Slices reconstructed simultaneously (the minibatch/fusing factor).
    pub fusing: usize,
    /// Hierarchical (true) or direct (false) partial-data exchange.
    pub hierarchical: bool,
    /// Pipeline the fused slices so each slice's global exchange overlaps
    /// the next slice's local SpMM and socket/node reductions (§III-E).
    /// Output is bit-identical to the synchronous schedule.
    pub overlap: bool,
    /// Optional simulated wire time for inter-node messages. The
    /// in-process transport is a memcpy, so without this, overlap has no
    /// wire time to hide; with it, comm-bound behavior (and overlap's
    /// wall-clock gain) is measurable. `None` (default) delivers
    /// instantly. Purely a scheduling delay — results are unaffected.
    pub wire: Option<WireModel>,
    /// CG iterations.
    pub iterations: usize,
    /// Hilbert tile size for both domain decompositions.
    pub tile: usize,
    /// Threads per simulated GPU block.
    pub block_size: usize,
    /// Staging-buffer bytes per block.
    pub shared_bytes: usize,
    /// Telemetry sink shared by all rank threads. Disabled by default —
    /// pass [`Telemetry::enabled`] to collect per-rank spans (each rank
    /// records on its own track) and keep the phase breakdown.
    pub telemetry: Telemetry,
    /// Run the xct-verify static checks (conservation, tag disjointness,
    /// deadlock freedom, scratch non-aliasing) on the communication plan
    /// before executing it, panicking with the full diagnostic listing on
    /// any violation. Always on in debug builds; this flag (the CLI's
    /// `--verify-plans`) extends the check to release builds.
    pub verify_plans: bool,
    /// Measured per-tile cost weights (`--weights-from`): when present,
    /// the x–z Hilbert partition balances these instead of uniform cell
    /// counts, so measured-hot tiles get fewer neighbors per rank. The
    /// weight table's tile size must match [`DistributedConfig::tile`].
    pub tile_weights: Option<xct_plan::TileWeights>,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Mixed,
            fusing: 1,
            hierarchical: true,
            overlap: false,
            wire: None,
            iterations: 30,
            tile: 4,
            block_size: 32,
            shared_bytes: 48 * 1024,
            telemetry: Telemetry::disabled(),
            verify_plans: false,
            tile_weights: None,
        }
    }
}

impl DistributedConfig {
    /// Configuration executing `plan`: topology, precision, exchange
    /// mode, overlap, and fusing come from the plan; runtime knobs
    /// (wire model, iterations, telemetry, plan verification) keep
    /// their defaults for the caller to override afterwards.
    pub fn from_plan(plan: &ReconPlan) -> Self {
        DistributedConfig {
            topology: plan.topology,
            precision: plan.precision,
            fusing: plan.fusing,
            hierarchical: plan.hierarchical,
            overlap: plan.overlap,
            tile_weights: plan.tile_weights.clone(),
            ..Default::default()
        }
    }
}

/// Distributed run outcome.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    /// Reconstructed volume, slice-major (`fusing × num_voxels`).
    pub x: Vec<f32>,
    /// Relative residual after each iteration (from rank 0's view of the
    /// global reduced norms — identical on all ranks).
    pub residual_history: Vec<f64>,
    /// Elements exchanged per level per (back)projection pass:
    /// `(socket, node, global)`; direct mode reports all volume as
    /// global.
    pub comm_elements: (u64, u64, u64),
    /// Measured per-rank communication traffic (byte/message counts per
    /// peer and per traffic class), ordered by rank.
    pub comm_stats: Vec<RankCommStats>,
    /// Execution counters merged across all ranks.
    pub counters: ExecCounters,
}

/// Per-slice tag salt keeping concurrent slices' exchange traffic apart
/// (shifted above the compiled plans' tag bits).
fn slice_salt(f: usize) -> u64 {
    ((f as u64) + 1) << 44
}

/// One rank's distributed operator: local optimized kernels plus compiled
/// plan-driven exchanges. The local operator is built with an internal
/// fusing of 1 — slices run one at a time so the software pipeline can
/// interleave slice `s+1`'s kernels with slice `s`'s in-flight exchange.
struct RankOperator<'a> {
    comm: &'a Communicator,
    cfg: &'a DistributedConfig,
    plans: &'a CompiledPlans,
    local: PrecisionOperator,
    /// Reusable exchange buffers; a (never-contended) `Mutex` because
    /// `LinearOperator` takes `&self` and requires `Sync`, while the
    /// exchange needs scratch mutably. Each rank thread owns its
    /// operator, so the lock is always free.
    scratch: Mutex<ExchangeScratch>,
    rank: usize,
    footprint_len: usize,
    owned_rays_len: usize,
    owned_vox_len: usize,
}

impl RankOperator<'_> {
    /// Agree on the global normalization factor for one slice's partials
    /// so quantized contributions from different ranks combine coherently
    /// (§III-C1 across ranks). Identity for full-width wire formats.
    fn forward_factor(&self, vals: &[f32]) -> (f32, f32) {
        match self.cfg.precision {
            Precision::Half | Precision::Mixed => {
                let local_max = vals.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let global_max = self
                    .comm
                    .allreduce_max(0x7000, f64::from(local_max))
                    // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                    .expect("allreduce_max");
                if global_max > f64::MIN_POSITIVE {
                    let factor = (256.0 / global_max) as f32;
                    (factor, 1.0 / factor)
                } else {
                    (1.0, 1.0)
                }
            }
            _ => (1.0, 1.0),
        }
    }

    /// Forward pipeline at wire precision `S`: per fused slice, local SpMM
    /// → socket/node reduction → global exchange to ray owners, scheduled
    /// by [`run_pipeline`]. With `overlap`, slice `s`'s global exchange
    /// stays in flight while slice `s+1` runs its SpMM and local
    /// reductions, and it completes *before* slice `s+1`'s exchange posts
    /// — the per-slice arithmetic is unchanged, so results match the
    /// synchronous path bit for bit.
    fn apply_as<S: Wire>(&self, x: &[f32], y: &mut [f32], ctx: &mut ExecContext) {
        let rp = self.plans.rank(self.rank);
        let partial = ctx
            .workspace
            .take::<f32>(BufferRole::Forward, self.footprint_len * self.cfg.fusing);
        struct Fwd<'s> {
            x: &'s [f32],
            y: &'s mut [f32],
            partial: Vec<f32>,
            ctx: &'s mut ExecContext,
            undo: f32,
        }
        let mut st = Fwd {
            x,
            y,
            partial,
            ctx,
            undo: 1.0,
        };
        run_pipeline(
            self.cfg.fusing,
            self.cfg.overlap,
            &mut st,
            |st: &mut Fwd, f| {
                self.comm.telemetry().profile_slice_set(f as u32);
                let xs = &st.x[f * self.owned_vox_len..(f + 1) * self.owned_vox_len];
                let ps = &mut st.partial[f * self.footprint_len..(f + 1) * self.footprint_len];
                self.local.apply(xs, ps, st.ctx);
                let (factor, undo) = self.forward_factor(ps);
                st.undo = undo;
                // xct-allow(no-panic): lock poisoning means a sibling pipeline stage already panicked; propagate
                let mut scratch = self.scratch.lock().expect("scratch mutex");
                rp.reduce_local::<S>(self.comm, &mut scratch, ps, factor, slice_salt(f))
                    // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                    .expect("local reduction");
            },
            |st, f| -> GlobalInFlight {
                self.comm.telemetry().profile_slice_set(f as u32);
                // xct-allow(no-panic): lock poisoning means a sibling pipeline stage already panicked; propagate
                let mut scratch = self.scratch.lock().expect("scratch mutex");
                rp.global_begin::<S>(self.comm, &mut scratch, st.undo, slice_salt(f))
                    // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                    .expect("global exchange post")
            },
            |st, f, inflight| {
                self.comm.telemetry().profile_slice_set(f as u32);
                // xct-allow(no-panic): lock poisoning means a sibling pipeline stage already panicked; propagate
                let mut scratch = self.scratch.lock().expect("scratch mutex");
                rp.global_finish::<S>(
                    self.comm,
                    &mut scratch,
                    inflight,
                    &mut st.y[f * self.owned_rays_len..(f + 1) * self.owned_rays_len],
                )
                // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                .expect("global exchange finish");
            },
            |_, _| {},
        );
        let Fwd { partial, ctx, .. } = st;
        ctx.workspace.put(BufferRole::Forward, partial);
    }

    /// Transpose pipeline at wire precision `S`: per fused slice, global
    /// scatter from owners → node/socket fan-out → local transposed SpMM,
    /// scheduled by [`run_pipeline`]. With `overlap`, slice `s`'s
    /// transposed SpMM runs while slice `s+1`'s global scatter is in
    /// flight.
    fn apply_transpose_as<S: Wire>(&self, y: &[f32], x: &mut [f32], ctx: &mut ExecContext) {
        let rp = self.plans.rank(self.rank);
        // One normalization factor for the whole batch (one allreduce per
        // backprojection, as in the reference path).
        let (factor, undo) = match self.cfg.precision {
            Precision::Half | Precision::Mixed => {
                let local_max = y.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
                let global_max = self
                    .comm
                    .allreduce_max(0x7100, f64::from(local_max))
                    // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                    .expect("allreduce_max");
                if global_max > f64::MIN_POSITIVE {
                    let factor = (256.0 / global_max) as f32;
                    (factor, 1.0 / factor)
                } else {
                    (1.0, 1.0)
                }
            }
            _ => (1.0, 1.0),
        };
        let footprint_vals = ctx
            .workspace
            .take::<f32>(BufferRole::Footprint, self.footprint_len * self.cfg.fusing);
        struct Bwd<'s> {
            y: &'s [f32],
            x: &'s mut [f32],
            footprint: Vec<f32>,
            ctx: &'s mut ExecContext,
        }
        let mut st = Bwd {
            y,
            x,
            footprint: footprint_vals,
            ctx,
        };
        run_pipeline(
            self.cfg.fusing,
            self.cfg.overlap,
            &mut st,
            |_: &mut Bwd, _| {}, // scatters need no local pre-compute
            |st, f| -> ScatterInFlight {
                self.comm.telemetry().profile_slice_set(f as u32);
                let owned = &st.y[f * self.owned_rays_len..(f + 1) * self.owned_rays_len];
                // xct-allow(no-panic): lock poisoning means a sibling pipeline stage already panicked; propagate
                let mut scratch = self.scratch.lock().expect("scratch mutex");
                rp.scatter_begin::<S>(self.comm, &mut scratch, owned, factor, undo, slice_salt(f))
                    // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                    .expect("scatter post")
            },
            |st, f, inflight| {
                self.comm.telemetry().profile_slice_set(f as u32);
                let fs = &mut st.footprint[f * self.footprint_len..(f + 1) * self.footprint_len];
                // xct-allow(no-panic): lock poisoning means a sibling pipeline stage already panicked; propagate
                let mut scratch = self.scratch.lock().expect("scratch mutex");
                rp.scatter_finish::<S>(self.comm, &mut scratch, inflight, fs)
                    // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                    .expect("scatter finish");
            },
            |st, f| {
                self.comm.telemetry().profile_slice_set(f as u32);
                let fs = &st.footprint[f * self.footprint_len..(f + 1) * self.footprint_len];
                self.local.apply_transpose(
                    fs,
                    &mut st.x[f * self.owned_vox_len..(f + 1) * self.owned_vox_len],
                    st.ctx,
                );
            },
        );
        let Bwd { footprint, ctx, .. } = st;
        ctx.workspace.put(BufferRole::Footprint, footprint);
    }
}

impl LinearOperator for RankOperator<'_> {
    fn rows(&self) -> usize {
        self.owned_rays_len * self.cfg.fusing
    }

    fn cols(&self) -> usize {
        self.owned_vox_len * self.cfg.fusing
    }

    fn apply(&self, x: &[f32], y: &mut [f32], ctx: &mut ExecContext) {
        match self.cfg.precision {
            Precision::Double => self.apply_as::<f64>(x, y, ctx),
            Precision::Single => self.apply_as::<f32>(x, y, ctx),
            Precision::Half | Precision::Mixed => self.apply_as::<F16>(x, y, ctx),
        }
    }

    fn apply_transpose(&self, y: &[f32], x: &mut [f32], ctx: &mut ExecContext) {
        match self.cfg.precision {
            Precision::Double => self.apply_transpose_as::<f64>(y, x, ctx),
            Precision::Single => self.apply_transpose_as::<f32>(y, x, ctx),
            Precision::Half | Precision::Mixed => self.apply_transpose_as::<F16>(y, x, ctx),
        }
    }
}

/// Flight-records what a measured-weight rebalance actually changed:
/// how many Hilbert tiles moved to a different rank compared to the
/// uniform (cell-count) partition, out of how many total. A post-mortem
/// flight dump then shows whether a `--weights-from` run repartitioned
/// at all and how aggressively.
fn record_rebalance_decision(
    scan: &ScanGeometry,
    ranks: usize,
    cfg: &DistributedConfig,
    weights: &[u64],
) {
    if !cfg.telemetry.is_enabled() {
        return;
    }
    let tomo = TileDecomposition::new(
        Domain2D::new(scan.grid.nx, scan.grid.nz),
        cfg.tile,
        CurveKind::Hilbert,
    );
    let mut uniform_owner = std::collections::HashMap::new();
    for sd in tomo.partition(ranks) {
        for t in sd.tiles {
            uniform_owner.insert((t.tx, t.ty), sd.id);
        }
    }
    let mut moved = 0u64;
    for sd in tomo.partition_weighted(ranks, weights) {
        for t in sd.tiles {
            if uniform_owner.get(&(t.tx, t.ty)) != Some(&sd.id) {
                moved += 1;
            }
        }
    }
    cfg.telemetry
        .flight_point("rebalance.decision", moved, tomo.num_tiles() as u64);
}

/// Runs a complete distributed reconstruction of `fusing` slices that
/// share the geometry `scan`. `sinogram` is slice-major
/// (`fusing × num_rays`). Returns the assembled volume.
pub fn reconstruct_distributed(
    scan: &ScanGeometry,
    sinogram: &[f32],
    cfg: &DistributedConfig,
) -> DistributedResult {
    let sm = SystemMatrix::build(scan);
    assert_eq!(
        sinogram.len(),
        sm.num_rays() * cfg.fusing,
        "sinogram length mismatch"
    );
    let ranks = cfg.topology.size();
    if let Some(tw) = &cfg.tile_weights {
        assert_eq!(
            tw.tile_size, cfg.tile,
            "weights were measured at tile size {}, run uses {}",
            tw.tile_size, cfg.tile
        );
        record_rebalance_decision(scan, ranks, cfg, &tw.weights);
    }
    let decomp = SliceDecomposition::build_weighted(
        &sm,
        scan,
        ranks,
        cfg.tile,
        CurveKind::Hilbert,
        cfg.tile_weights.as_ref().map(|tw| tw.weights.as_slice()),
    );
    let ownership = decomp.ray_ownership();
    let direct = DirectPlan::build(&decomp.footprints, &ownership);
    let hier = HierarchicalPlan::build(&decomp.footprints, &ownership, &cfg.topology);

    let comm_elements = if cfg.hierarchical {
        hier.level_elements()
    } else {
        (0, 0, direct.total_elements())
    };
    // Compile the plan once into per-peer index tables; every rank then
    // executes pure index arithmetic with zero steady-state allocations.
    let compiled = if cfg.hierarchical {
        CompiledPlans::compile_hierarchical(&decomp.footprints, &ownership, &hier)
    } else {
        CompiledPlans::compile_direct(&decomp.footprints, &ownership, &direct)
    };
    // Debug builds always statically verify the plan before running it;
    // release builds do so under `--verify-plans`.
    if cfg.verify_plans || cfg!(debug_assertions) {
        let report = if cfg.hierarchical {
            xct_verify::verify_all_hierarchical(
                &decomp.footprints,
                &ownership,
                &cfg.topology,
                &hier,
                &compiled,
                cfg.overlap,
            )
        } else {
            xct_verify::verify_all_direct(
                &decomp.footprints,
                &ownership,
                &direct,
                &compiled,
                cfg.overlap,
            )
        };
        report.assert_ok("communication plan");
    }

    let outputs = run_ranks_traced_wired(ranks, &cfg.telemetry, cfg.wire, |comm| {
        let rank = comm.rank();
        let op_local = &decomp.local_ops[rank];
        // Internal fusing of 1: the rank operator pipelines slices itself.
        let local = PrecisionOperator::new(
            &op_local.csr,
            cfg.precision,
            1,
            cfg.block_size,
            cfg.shared_bytes,
        );
        let rank_op = RankOperator {
            comm,
            cfg,
            plans: &compiled,
            local,
            scratch: Mutex::new(ExchangeScratch::new()),
            rank,
            footprint_len: op_local.rows.len(),
            owned_rays_len: decomp.owned_rays[rank].len(),
            owned_vox_len: decomp.owned_voxels[rank].len(),
        };
        let y_local = decomp.restrict_sinogram(sinogram, sm.num_rays(), cfg.fusing, rank);
        let mut tag = 0x9000u64;
        // One context per rank — each simulated GPU owns its workspace.
        // The rank's telemetry handle is the communicator's fork, so
        // solver spans and exchange spans nest on one per-rank track.
        let mut ctx = ExecContext::serial()
            .with_precision(cfg.precision)
            .with_telemetry(comm.telemetry().clone());
        let report = cgls_in(
            &rank_op,
            &y_local,
            &CglsConfig {
                max_iters: cfg.iterations,
                tolerance: 0.0,
                damping: 0.0,
            },
            &mut ctx,
            &mut |v| {
                tag = tag.wrapping_add(2);
                // xct-allow(no-panic): comm ops execute a verified plan; a wire fault mid-iteration is unrecoverable
                comm.allreduce_sum(tag, v).expect("allreduce_sum")
            },
        );
        (
            report.x,
            report.residual_history,
            comm.comm_stats(),
            ctx.counters,
        )
    });

    let pieces: Vec<Vec<f32>> = outputs.iter().map(|(x, _, _, _)| x.clone()).collect();
    let x = decomp.assemble_volume(&pieces, sm.num_voxels(), cfg.fusing);
    let comm_stats: Vec<RankCommStats> = outputs.iter().map(|(_, _, s, _)| s.clone()).collect();
    let mut counters = ExecCounters::default();
    for (_, _, _, c) in &outputs {
        counters.merge(c);
    }
    DistributedResult {
        x,
        residual_history: outputs[0].1.clone(),
        comm_elements,
        comm_stats,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_comm::run_ranks;
    use xct_geometry::ImageGrid;
    use xct_solver::{cgls, CglsConfig, SystemMatrixOperator};

    fn phantom_sinogram(scan: &ScanGeometry, fusing: usize) -> (SystemMatrix, Vec<f32>, Vec<f32>) {
        let sm = SystemMatrix::build(scan);
        let n = scan.grid.nx;
        let mut x_true = vec![0.0f32; sm.num_voxels() * fusing];
        for f in 0..fusing {
            for i in 0..sm.num_voxels() {
                let (ix, iz) = (
                    (i % n) as f32 - n as f32 / 2.0 + 0.5,
                    (i / n) as f32 - n as f32 / 2.0 + 0.5,
                );
                let r2 = ix * ix + iz * iz;
                x_true[f * sm.num_voxels() + i] = if r2 < (n as f32 / 3.0).powi(2) {
                    0.8 + 0.1 * f as f32
                } else {
                    0.0
                };
            }
        }
        let mut y = vec![0.0f32; sm.num_rays() * fusing];
        for f in 0..fusing {
            sm.project(
                &x_true[f * sm.num_voxels()..(f + 1) * sm.num_voxels()],
                &mut y[f * sm.num_rays()..(f + 1) * sm.num_rays()],
            );
        }
        (sm, x_true, y)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&p, &q)| (f64::from(p) - f64::from(q)).powi(2))
            .sum();
        let den: f64 = b.iter().map(|&q| f64::from(q).powi(2)).sum();
        (num / den.max(1e-30)).sqrt()
    }

    #[test]
    fn distributed_matches_single_process_reference() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 16);
        let (sm, _x_true, y) = phantom_sinogram(&scan, 1);
        // Single-process reference CGLS.
        let reference = cgls(
            &SystemMatrixOperator::new(&sm),
            &y,
            &CglsConfig {
                max_iters: 12,
                tolerance: 0.0,
                damping: 0.0,
            },
        );
        // Distributed, single precision (no quantization noise), direct.
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            fusing: 1,
            hierarchical: false,
            iterations: 12,
            ..Default::default()
        };
        let dist = reconstruct_distributed(&scan, &y, &cfg);
        let err = rel_err(&dist.x, &reference.x);
        assert!(err < 5e-3, "distributed vs reference error {err}");
        // Residual histories agree too.
        for (a, b) in dist
            .residual_history
            .iter()
            .zip(&reference.residual_history)
        {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn hierarchical_equals_direct_distributed() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let (_, _, y) = phantom_sinogram(&scan, 1);
        let base = DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Single,
            fusing: 1,
            iterations: 8,
            ..Default::default()
        };
        let direct = reconstruct_distributed(
            &scan,
            &y,
            &DistributedConfig {
                hierarchical: false,
                ..base.clone()
            },
        );
        let hier = reconstruct_distributed(
            &scan,
            &y,
            &DistributedConfig {
                hierarchical: true,
                ..base
            },
        );
        let err = rel_err(&hier.x, &direct.x);
        assert!(err < 1e-4, "hierarchical vs direct error {err}");
    }

    #[test]
    fn mixed_precision_distributed_converges() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 20);
        let (sm, x_true, y) = phantom_sinogram(&scan, 1);
        let cfg = DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Mixed,
            fusing: 1,
            hierarchical: true,
            iterations: 25,
            ..Default::default()
        };
        let dist = reconstruct_distributed(&scan, &y, &cfg);
        let _ = sm;
        let err = rel_err(&dist.x, &x_true);
        assert!(err < 0.15, "mixed distributed reconstruction error {err}");
        // Residuals descend.
        let hist = &dist.residual_history;
        assert!(
            hist.last().unwrap() < &0.1,
            "final residual {}",
            hist.last().unwrap()
        );
    }

    #[test]
    fn fused_slices_reconstruct_together() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 16);
        let fusing = 3;
        let (sm, x_true, y) = phantom_sinogram(&scan, fusing);
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            fusing,
            hierarchical: true,
            iterations: 20,
            ..Default::default()
        };
        let dist = reconstruct_distributed(&scan, &y, &cfg);
        for f in 0..fusing {
            let err = rel_err(
                &dist.x[f * sm.num_voxels()..(f + 1) * sm.num_voxels()],
                &x_true[f * sm.num_voxels()..(f + 1) * sm.num_voxels()],
            );
            assert!(err < 0.15, "slice {f} error {err}");
        }
    }

    #[test]
    fn rank_operator_is_adjoint_across_ranks() {
        // ⟨A·x, y⟩ = ⟨x, Aᵀ·y⟩ must hold for the *distributed* operator:
        // partial SpMM + exchange on the forward side against scatter +
        // transposed SpMM on the backward side, summed over all ranks.
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let sm = SystemMatrix::build(&scan);
        for &(precision, hierarchical, tol) in &[
            (Precision::Single, false, 1e-6),
            (Precision::Single, true, 1e-6),
            (Precision::Double, true, 1e-6),
            (Precision::Mixed, true, 2e-2),
            (Precision::Half, true, 5e-2),
        ] {
            let cfg = DistributedConfig {
                topology: Topology::new(1, 2, 2),
                precision,
                fusing: 1,
                hierarchical,
                iterations: 1,
                ..Default::default()
            };
            let ranks = cfg.topology.size();
            let decomp = SliceDecomposition::build(&sm, &scan, ranks, cfg.tile, CurveKind::Hilbert);
            let ownership = decomp.ray_ownership();
            let compiled = if hierarchical {
                let hier = HierarchicalPlan::build(&decomp.footprints, &ownership, &cfg.topology);
                CompiledPlans::compile_hierarchical(&decomp.footprints, &ownership, &hier)
            } else {
                let direct = DirectPlan::build(&decomp.footprints, &ownership);
                CompiledPlans::compile_direct(&decomp.footprints, &ownership, &direct)
            };
            let x_global: Vec<f32> = (0..sm.num_voxels())
                .map(|i| ((i * 23 + 7) % 41) as f32 / 41.0)
                .collect();
            let y_global: Vec<f32> = (0..sm.num_rays())
                .map(|i| ((i * 17 + 3) % 29) as f32 / 29.0)
                .collect();
            let outputs = run_ranks(ranks, |comm| {
                let rank = comm.rank();
                let op_local = &decomp.local_ops[rank];
                let local = PrecisionOperator::new(
                    &op_local.csr,
                    cfg.precision,
                    1,
                    cfg.block_size,
                    cfg.shared_bytes,
                );
                let rank_op = RankOperator {
                    comm,
                    cfg: &cfg,
                    plans: &compiled,
                    local,
                    scratch: Mutex::new(ExchangeScratch::new()),
                    rank,
                    footprint_len: op_local.rows.len(),
                    owned_rays_len: decomp.owned_rays[rank].len(),
                    owned_vox_len: decomp.owned_voxels[rank].len(),
                };
                let mut ctx = ExecContext::serial();
                let x_local: Vec<f32> = decomp.owned_voxels[rank]
                    .iter()
                    .map(|&v| x_global[v as usize])
                    .collect();
                let y_local: Vec<f32> = decomp.owned_rays[rank]
                    .iter()
                    .map(|&r| y_global[r as usize])
                    .collect();
                let mut ax = vec![0.0f32; rank_op.rows()];
                rank_op.apply(&x_local, &mut ax, &mut ctx);
                let lhs_part: f64 = ax
                    .iter()
                    .zip(&y_local)
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum();
                let mut aty = vec![0.0f32; rank_op.cols()];
                rank_op.apply_transpose(&y_local, &mut aty, &mut ctx);
                let rhs_part: f64 = aty
                    .iter()
                    .zip(&x_local)
                    .map(|(&a, &b)| f64::from(a) * f64::from(b))
                    .sum();
                let lhs = comm.allreduce_sum(0x6000, lhs_part).expect("allreduce");
                let rhs = comm.allreduce_sum(0x6002, rhs_part).expect("allreduce");
                (lhs, rhs)
            });
            let (lhs, rhs) = outputs[0];
            assert!(
                (lhs - rhs).abs() <= tol * lhs.abs().max(1.0),
                "{precision:?} hier={hierarchical}: ⟨Ax,y⟩ = {lhs} vs ⟨x,Aᵀy⟩ = {rhs}"
            );
        }
    }

    #[test]
    fn overlap_run_shows_global_exchange_over_spmm() {
        // The §III-E acceptance evidence: with overlap on, at least one
        // rank's trace must show a SpmmForward span *nested under* an
        // open ReduceGlobal span — i.e. the next slice's kernel ran while
        // the previous slice's global exchange was still in flight.
        use xct_exec::{Phase, Telemetry};
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 16);
        let fusing = 3;
        let (_, _, y) = phantom_sinogram(&scan, fusing);
        let telemetry = Telemetry::enabled();
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            fusing,
            hierarchical: true,
            overlap: true,
            iterations: 2,
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let _ = reconstruct_distributed(&scan, &y, &cfg);
        let snap = telemetry.snapshot();
        let has_ancestor = |mut parent: Option<usize>, phase: Phase| {
            while let Some(i) = parent {
                if snap.spans[i].phase == phase {
                    return true;
                }
                parent = snap.spans[i].parent;
            }
            false
        };
        let spmm_under_exchange = snap
            .spans
            .iter()
            .any(|s| s.phase == Phase::SpmmForward && has_ancestor(s.parent, Phase::ReduceGlobal));
        assert!(
            spmm_under_exchange,
            "overlap run must trace SpmmForward under an open ReduceGlobal span"
        );
        // Transpose direction too: a transposed SpMM under an in-flight
        // halo exchange (scatter).
        let tspmm_under_halo = snap.spans.iter().any(|s| {
            s.phase == Phase::SpmmTranspose && has_ancestor(s.parent, Phase::HaloExchange)
        });
        assert!(
            tspmm_under_halo,
            "overlap run must trace SpmmTranspose under an open HaloExchange span"
        );
    }

    #[test]
    fn synchronous_run_keeps_spmm_outside_exchange() {
        // Control for the overlap evidence: without overlap no SpMM span
        // nests under a global-exchange span.
        use xct_exec::{Phase, Telemetry};
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 16);
        let fusing = 3;
        let (_, _, y) = phantom_sinogram(&scan, fusing);
        let telemetry = Telemetry::enabled();
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            fusing,
            hierarchical: true,
            overlap: false,
            iterations: 2,
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let _ = reconstruct_distributed(&scan, &y, &cfg);
        let snap = telemetry.snapshot();
        let nested = snap.spans.iter().any(|s| {
            (s.phase == Phase::SpmmForward || s.phase == Phase::SpmmTranspose)
                && s.parent.is_some_and(|i| {
                    matches!(
                        snap.spans[i].phase,
                        Phase::ReduceGlobal | Phase::HaloExchange
                    )
                })
        });
        assert!(
            !nested,
            "synchronous run must not interleave SpMM with exchanges"
        );
    }

    #[test]
    fn comm_accounting_reports_hierarchy() {
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 12);
        let (_, _, y) = phantom_sinogram(&scan, 1);
        let cfg = DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Single,
            iterations: 1,
            hierarchical: true,
            ..Default::default()
        };
        let res = reconstruct_distributed(&scan, &y, &cfg);
        let (s, n, g) = res.comm_elements;
        assert!(s > 0, "socket traffic expected");
        assert!(g > 0, "global traffic expected");
        // Global (post-reduction) must not exceed socket-level input.
        assert!(g <= s + n + g);
        // Measured traffic and merged counters ride along with the plan.
        assert_eq!(res.comm_stats.len(), cfg.topology.size());
        assert!(res.comm_stats.iter().any(|st| st.total_bytes() > 0));
        assert!(res.counters.kernel_launches > 0);
        assert!(res.counters.flops > 0);
    }

    #[test]
    fn distributed_run_records_per_rank_spans() {
        use xct_exec::{Phase, Telemetry};
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let (_, _, y) = phantom_sinogram(&scan, 1);
        let telemetry = Telemetry::enabled();
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            iterations: 3,
            hierarchical: true,
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let _ = reconstruct_distributed(&scan, &y, &cfg);
        let snap = telemetry.snapshot();
        for rank in 0..cfg.topology.size() as u32 {
            let iters = snap
                .spans
                .iter()
                .filter(|s| s.track == rank && s.phase == Phase::SolverIteration)
                .count();
            assert_eq!(iters, 3, "rank {rank} iteration spans");
            assert!(
                snap.spans
                    .iter()
                    .any(|s| s.track == rank && s.phase == Phase::ReduceSocket),
                "rank {rank} socket-reduce span"
            );
        }
        // Residual events were emitted per rank per iteration.
        let events = snap
            .events
            .iter()
            .filter(|e| e.name == "cgls.residual")
            .count();
        assert_eq!(events, 3 * cfg.topology.size());
    }

    #[test]
    fn profiled_run_attributes_spmm_cost_to_every_rank_and_slice() {
        use xct_exec::Telemetry;
        use xct_telemetry::{CostComponent, ProfileDims};
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let fusing = 2;
        let (_, _, y) = phantom_sinogram(&scan, fusing);
        let telemetry = Telemetry::enabled();
        assert!(telemetry.enable_profile(ProfileDims {
            tracks: 4,
            slabs: 1,
            slices: fusing,
        }));
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            fusing,
            hierarchical: true,
            iterations: 2,
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let _ = reconstruct_distributed(&scan, &y, &cfg);
        let profile = telemetry.profile_snapshot().expect("profiling enabled");
        for rank in 0..4 {
            assert!(
                profile.track_component_ns(rank, CostComponent::SpmmCompute) > 0,
                "rank {rank} recorded no SpMM cost"
            );
            assert!(
                profile.track_component_ns(rank, CostComponent::ReduceSocket) > 0,
                "rank {rank} recorded no socket-reduce cost"
            );
            // Both fused slices attract SpMM cost on the slab-0 key.
            for slice in 0..fusing {
                assert!(
                    profile.get(rank, 0, slice, CostComponent::SpmmCompute) > 0,
                    "rank {rank} slice {slice} unattributed"
                );
            }
        }
    }

    #[test]
    fn weighted_run_rebalances_and_flight_records_the_decision() {
        use xct_exec::Telemetry;
        use xct_telemetry::FlightKind;
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 20);
        let (sm, x_true, y) = phantom_sinogram(&scan, 1);
        // A sharply skewed weight table: the first curve-order tiles are
        // two orders of magnitude hotter than the rest.
        let side = 16usize.div_ceil(4);
        let mut weights = vec![10u64; side * side];
        weights[0] = 1_000;
        weights[1] = 1_000;
        let telemetry = Telemetry::enabled();
        let cfg = DistributedConfig {
            topology: Topology::new(1, 2, 2),
            precision: Precision::Single,
            iterations: 20,
            hierarchical: true,
            telemetry: telemetry.clone(),
            tile_weights: Some(xct_plan::TileWeights {
                tile_size: 4,
                weights,
            }),
            ..Default::default()
        };
        let dist = reconstruct_distributed(&scan, &y, &cfg);
        // The repartitioned run still reconstructs the phantom.
        let _ = sm;
        let err = rel_err(&dist.x, &x_true);
        assert!(err < 0.15, "weighted reconstruction error {err}");
        // The flight recorder kept the rebalance decision: some tiles
        // moved, out of the full 4x4 grid.
        let decision = telemetry
            .flight_snapshot()
            .into_iter()
            .find(|e| e.kind == FlightKind::Point && e.code == "rebalance.decision")
            .expect("rebalance decision recorded");
        assert_eq!(decision.b, (side * side) as u64);
        assert!(decision.a > 0, "skewed weights must move at least one tile");
    }

    #[test]
    fn traced_run_records_match_edges_and_a_dominating_critical_path() {
        // End-to-end causal evidence: a wired distributed run leaves
        // send→recv match edges in the snapshot (with wire cost on
        // inter-node ones), and the critical path computed from them
        // dominates every rank's local busy time.
        use xct_exec::Telemetry;
        use xct_telemetry::CausalAnalysis;
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let (_, _, y) = phantom_sinogram(&scan, 1);
        let telemetry = Telemetry::enabled();
        let cfg = DistributedConfig {
            topology: Topology::new(2, 1, 2),
            precision: Precision::Single,
            iterations: 2,
            hierarchical: true,
            wire: Some(WireModel {
                latency: std::time::Duration::from_micros(200),
                bytes_per_sec: f64::INFINITY,
                ranks_per_node: 2,
            }),
            telemetry: telemetry.clone(),
            ..Default::default()
        };
        let _ = reconstruct_distributed(&scan, &y, &cfg);
        let snap = telemetry.snapshot();
        assert!(!snap.edges.is_empty(), "wired run must record match edges");
        assert!(
            snap.edges.iter().any(|e| e.wire_ns >= 200_000),
            "inter-node edges must carry the wire latency"
        );
        assert!(
            snap.edges.iter().any(|e| e.wire_ns == 0),
            "intra-node edges must carry zero wire cost"
        );
        let causal = CausalAnalysis::from_snapshot(&snap);
        assert!(causal.critical_path_ns > 0);
        assert_eq!(causal.per_rank.len(), cfg.topology.size());
        for rank in &causal.per_rank {
            assert!(
                causal.critical_path_ns >= rank.busy_ns,
                "critical path {} shorter than rank {}'s busy time {}",
                causal.critical_path_ns,
                rank.track,
                rank.busy_ns
            );
            assert!(
                rank.slack_ns <= causal.critical_path_ns,
                "slack cannot exceed the critical path"
            );
        }
        assert!(
            causal.per_rank.iter().any(|r| r.slack_ns == 0),
            "some rank must bound end-to-end time"
        );
    }
}
