//! The single-call public API: memoize the operator once, reconstruct
//! many (batches of) slices.

use xct_exec::ExecContext;
use xct_fp16::Precision;
use xct_geometry::{ScanGeometry, SystemMatrix};
use xct_solver::{
    cgls_in, sirt_in, tv_reconstruct_in, CglsConfig, CglsReport, PrecisionOperator, SirtConfig,
    TvConfig,
};
use xct_spmm::Csr;

/// Which iterative algorithm drives the reconstruction.
///
/// CGLS is the paper's solver; SIRT and TV are the standard companions
/// (constraints and regularization — the `C` and `R(x)` of Eq. 1). All
/// three run on the same precision-policy operator, so the optimized
/// kernels and adaptive normalization apply regardless of algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Conjugate gradient on the normal equations (the paper's choice).
    Cgls,
    /// SIRT with optional nonnegativity projection.
    Sirt {
        /// Relaxation λ ∈ (0, 2).
        relaxation: f32,
        /// Project onto `x ≥ 0` each iteration.
        nonneg: bool,
    },
    /// Total-variation-regularized gradient descent (fusing must be 1).
    Tv {
        /// Regularization weight.
        lambda: f32,
        /// TV smoothing parameter.
        epsilon: f32,
    },
}

/// Reconstruction options.
#[derive(Debug, Clone, Copy)]
pub struct ReconOptions {
    /// Precision mode (default: mixed — the paper's recommendation).
    pub precision: Precision,
    /// Slices reconstructed simultaneously through the fused kernels.
    pub fusing: usize,
    /// CG iterations (paper: 24 for noisy data, 30 for benchmarks).
    pub iterations: usize,
    /// Tikhonov damping λ.
    pub damping: f64,
    /// Early-stop tolerance on the relative residual (0 disables).
    pub tolerance: f64,
    /// Threads per simulated GPU block.
    pub block_size: usize,
    /// Staging-buffer bytes per block (96 KB on V100).
    pub shared_bytes: usize,
}

impl Default for ReconOptions {
    fn default() -> Self {
        ReconOptions {
            precision: Precision::Mixed,
            fusing: 1,
            iterations: 24,
            damping: 0.0,
            tolerance: 0.0,
            block_size: 64,
            shared_bytes: 96 * 1024,
        }
    }
}

/// A memoized reconstructor for one scan geometry.
///
/// ```
/// use xct_core::{Reconstructor, ReconOptions};
/// use xct_geometry::{ImageGrid, ScanGeometry};
///
/// let scan = ScanGeometry::uniform(ImageGrid::square(32, 1.0), 32);
/// let recon = Reconstructor::new(scan);
/// // Forward-model a phantom, then invert it.
/// let phantom = vec![0.5f32; recon.num_voxels()];
/// let sinogram = recon.project(&phantom);
/// let result = recon.reconstruct(&sinogram, &ReconOptions::default());
/// assert!(result.report.residual_history.last().unwrap() < &0.1);
/// ```
pub struct Reconstructor {
    scan: ScanGeometry,
    matrix: SystemMatrix,
    csr: Csr<f32>,
}

/// Reconstruction outcome.
pub struct ReconResult {
    /// The volume, slice-major (`fusing × num_voxels`).
    pub x: Vec<f32>,
    /// Solver diagnostics (residual/time histories).
    pub report: CglsReport,
}

impl Reconstructor {
    /// Traces and memoizes the system matrix for `scan` (§II-B: done
    /// once, reused every iteration and every slice).
    pub fn new(scan: ScanGeometry) -> Self {
        let matrix = SystemMatrix::build(&scan);
        let csr = Csr::from_system_matrix(&matrix);
        Reconstructor { scan, matrix, csr }
    }

    /// The scan geometry.
    pub fn scan(&self) -> &ScanGeometry {
        &self.scan
    }

    /// Voxels per slice.
    pub fn num_voxels(&self) -> usize {
        self.matrix.num_voxels()
    }

    /// Sinogram bins per slice.
    pub fn num_rays(&self) -> usize {
        self.matrix.num_rays()
    }

    /// The memoized operator.
    pub fn system_matrix(&self) -> &SystemMatrix {
        &self.matrix
    }

    /// Forward-models one slice: `sinogram = A · image` (for synthetic
    /// experiments and residual checks).
    pub fn project(&self, image: &[f32]) -> Vec<f32> {
        let mut y = vec![0.0f32; self.num_rays()];
        self.matrix.project(image, &mut y);
        y
    }

    /// Reconstructs `opts.fusing` slices from their sinograms
    /// (slice-major, `fusing × num_rays`) with CGLS.
    pub fn reconstruct(&self, sinogram: &[f32], opts: &ReconOptions) -> ReconResult {
        self.reconstruct_with(sinogram, opts, Algorithm::Cgls)
    }

    /// Reconstructs with an explicit [`Algorithm`].
    ///
    /// # Panics
    /// Panics on shape mismatches, or when TV is requested with
    /// `fusing > 1` (TV couples voxels within one slice grid).
    pub fn reconstruct_with(
        &self,
        sinogram: &[f32],
        opts: &ReconOptions,
        algorithm: Algorithm,
    ) -> ReconResult {
        // One parallel context per reconstruction: kernel launches fan
        // out across cores, and every iteration reuses its warm buffers.
        let mut ctx = ExecContext::parallel();
        self.reconstruct_with_in(sinogram, opts, algorithm, &mut ctx)
    }

    /// [`Reconstructor::reconstruct`] running inside a caller-owned
    /// [`ExecContext`] — repeated batches reuse the context's warm
    /// workspace, and its telemetry handle (if enabled) records solver
    /// and kernel phases.
    pub fn reconstruct_in(
        &self,
        sinogram: &[f32],
        opts: &ReconOptions,
        ctx: &mut ExecContext,
    ) -> ReconResult {
        self.reconstruct_with_in(sinogram, opts, Algorithm::Cgls, ctx)
    }

    /// [`Reconstructor::reconstruct_with`] running inside a caller-owned
    /// [`ExecContext`]. The context's precision is aligned with
    /// `opts.precision` for the duration of the call.
    ///
    /// # Panics
    /// Same conditions as [`Reconstructor::reconstruct_with`].
    pub fn reconstruct_with_in(
        &self,
        sinogram: &[f32],
        opts: &ReconOptions,
        algorithm: Algorithm,
        ctx: &mut ExecContext,
    ) -> ReconResult {
        assert_eq!(
            sinogram.len(),
            self.num_rays() * opts.fusing,
            "sinogram length mismatch: {} vs {}×{}",
            sinogram.len(),
            self.num_rays(),
            opts.fusing
        );
        let op = PrecisionOperator::new(
            &self.csr,
            opts.precision,
            opts.fusing,
            opts.block_size,
            opts.shared_bytes,
        );
        ctx.precision = opts.precision;
        let report = match algorithm {
            Algorithm::Cgls => cgls_in(
                &op,
                sinogram,
                &CglsConfig {
                    max_iters: opts.iterations,
                    tolerance: opts.tolerance,
                    damping: opts.damping,
                },
                ctx,
                &mut |v| v,
            ),
            Algorithm::Sirt { relaxation, nonneg } => sirt_in(
                &op,
                sinogram,
                &SirtConfig {
                    max_iters: opts.iterations,
                    relaxation,
                    nonneg,
                    tolerance: opts.tolerance,
                },
                ctx,
            ),
            Algorithm::Tv { lambda, epsilon } => {
                assert_eq!(opts.fusing, 1, "TV reconstruction requires fusing = 1");
                tv_reconstruct_in(
                    &op,
                    sinogram,
                    self.scan.grid.nx,
                    self.scan.grid.nz,
                    &TvConfig {
                        iterations: opts.iterations,
                        lambda,
                        epsilon,
                        nonneg: true,
                    },
                    ctx,
                )
            }
        };
        ReconResult {
            x: report.x.clone(),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::ImageGrid;
    use xct_phantom::shepp_logan;

    #[test]
    fn reconstructs_shepp_logan() {
        let n = 32;
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), 32);
        let recon = Reconstructor::new(scan);
        let phantom = shepp_logan(n);
        let y = recon.project(&phantom.data);
        let result = recon.reconstruct(
            &y,
            &ReconOptions {
                iterations: 40,
                ..Default::default()
            },
        );
        let err: f64 = {
            let num: f64 = result
                .x
                .iter()
                .zip(&phantom.data)
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                .sum();
            let den: f64 = phantom.data.iter().map(|&v| f64::from(v).powi(2)).sum();
            (num / den).sqrt()
        };
        assert!(err < 0.25, "Shepp-Logan reconstruction error {err}");
    }

    #[test]
    fn fused_batch_reconstruction() {
        let n = 16;
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), 20);
        let recon = Reconstructor::new(scan);
        let fusing = 4;
        let mut sino = Vec::new();
        let mut truths = Vec::new();
        for f in 0..fusing {
            let img: Vec<f32> = (0..n * n)
                .map(|i| if (i + f) % 3 == 0 { 0.8 } else { 0.2 })
                .collect();
            sino.extend(recon.project(&img));
            truths.push(img);
        }
        let result = recon.reconstruct(
            &sino,
            &ReconOptions {
                fusing,
                iterations: 30,
                precision: Precision::Single,
                ..Default::default()
            },
        );
        assert_eq!(result.x.len(), n * n * fusing);
        assert!(result.report.residual_history.last().unwrap() < &0.05);
    }

    #[test]
    #[should_panic(expected = "sinogram length mismatch")]
    fn wrong_sinogram_length_panics() {
        let scan = ScanGeometry::uniform(ImageGrid::square(8, 1.0), 8);
        let recon = Reconstructor::new(scan);
        recon.reconstruct(&[0.0; 3], &ReconOptions::default());
    }

    #[test]
    fn all_algorithms_reconstruct_the_same_scene() {
        let n = 20;
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), 24);
        let recon = Reconstructor::new(scan);
        let truth: Vec<f32> = (0..n * n)
            .map(|i| {
                let (ix, iz) = ((i % n) as f32 - 9.5, (i / n) as f32 - 9.5);
                if ix * ix + iz * iz < 36.0 {
                    0.7
                } else {
                    0.0
                }
            })
            .collect();
        let y = recon.project(&truth);
        let err_of = |alg: Algorithm, iters: usize| {
            let r = recon.reconstruct_with(
                &y,
                &ReconOptions {
                    precision: Precision::Single,
                    iterations: iters,
                    ..Default::default()
                },
                alg,
            );
            let num: f64 =
                r.x.iter()
                    .zip(&truth)
                    .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                    .sum();
            let den: f64 = truth.iter().map(|&v| f64::from(v).powi(2)).sum();
            (num / den).sqrt()
        };
        assert!(err_of(Algorithm::Cgls, 40) < 0.15);
        assert!(
            err_of(
                Algorithm::Sirt {
                    relaxation: 1.0,
                    nonneg: true
                },
                150
            ) < 0.25
        );
        assert!(
            err_of(
                Algorithm::Tv {
                    lambda: 0.5,
                    epsilon: 0.01
                },
                300
            ) < 0.25
        );
    }

    #[test]
    #[should_panic(expected = "TV reconstruction requires fusing = 1")]
    fn tv_rejects_fused_batches() {
        let scan = ScanGeometry::uniform(ImageGrid::square(8, 1.0), 8);
        let recon = Reconstructor::new(scan);
        let y = vec![0.0f32; recon.num_rays() * 2];
        recon.reconstruct_with(
            &y,
            &ReconOptions {
                fusing: 2,
                ..Default::default()
            },
            Algorithm::Tv {
                lambda: 1.0,
                epsilon: 0.01,
            },
        );
    }
}
