//! Distributed-pipeline robustness: larger topologies, noise, fused
//! half-precision hierarchical runs, and degenerate rank counts.

use xct_comm::Topology;
use xct_core::distributed::{reconstruct_distributed, DistributedConfig};
use xct_fp16::Precision;
use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};
use xct_phantom::{add_poisson_noise, charcoal_like};

fn sinogram_for(scan: &ScanGeometry, seed: u64, flux: f64) -> (Vec<f32>, Vec<f32>) {
    let sm = SystemMatrix::build(scan);
    let mut phantom = charcoal_like(scan.grid.nx, seed);
    // Keep line integrals in the physical transmission regime (≤ ~3
    // attenuation lengths) so Poisson noise carries signal.
    for v in &mut phantom.data {
        *v *= 0.15;
    }
    let mut y = vec![0.0f32; sm.num_rays()];
    sm.project(&phantom.data, &mut y);
    if flux > 0.0 {
        add_poisson_noise(&mut y, flux, seed);
    }
    (y, phantom.data)
}

fn rel_err(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(&p, &q)| (f64::from(p) - f64::from(q)).powi(2))
        .sum();
    let den: f64 = b.iter().map(|&q| f64::from(q).powi(2)).sum();
    (num / den.max(1e-30)).sqrt()
}

#[test]
fn twelve_ranks_three_nodes_with_noise() {
    let scan = ScanGeometry::uniform(ImageGrid::square(24, 1.0), 24);
    let (y, truth) = sinogram_for(&scan, 5, 2e4);
    let result = reconstruct_distributed(
        &scan,
        &y,
        &DistributedConfig {
            topology: Topology::new(3, 2, 2),
            precision: Precision::Mixed,
            fusing: 1,
            hierarchical: true,
            iterations: 20,
            ..Default::default()
        },
    );
    let err = rel_err(&result.x, &truth);
    assert!(err < 0.35, "noisy 12-rank reconstruction error {err}");
    assert!(result.residual_history.last().unwrap() < &0.1);
}

#[test]
fn single_rank_topology_works() {
    // Degenerate distribution: one GPU owns everything; hierarchy and
    // direct both reduce to local no-ops.
    let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 16);
    let (y, truth) = sinogram_for(&scan, 9, 0.0);
    let result = reconstruct_distributed(
        &scan,
        &y,
        &DistributedConfig {
            topology: Topology::new(1, 1, 1),
            precision: Precision::Single,
            fusing: 1,
            hierarchical: true,
            iterations: 25,
            ..Default::default()
        },
    );
    assert!(rel_err(&result.x, &truth) < 0.2);
    let (s, n, _) = result.comm_elements;
    assert_eq!(s + n, 0, "one rank has no local peers");
}

#[test]
fn fused_half_precision_hierarchical() {
    // The full stack at its most aggressive: half storage AND half
    // compute, fused slices, hierarchical exchange both directions.
    let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 20);
    let sm = SystemMatrix::build(&scan);
    let fusing = 2;
    let mut y = Vec::new();
    let mut truths = Vec::new();
    for f in 0..fusing {
        let phantom = charcoal_like(16, 20 + f as u64);
        let mut s = vec![0.0f32; sm.num_rays()];
        sm.project(&phantom.data, &mut s);
        y.extend(s);
        truths.push(phantom.data);
    }
    let result = reconstruct_distributed(
        &scan,
        &y,
        &DistributedConfig {
            topology: Topology::new(2, 2, 2),
            precision: Precision::Half,
            fusing,
            hierarchical: true,
            iterations: 15,
            ..Default::default()
        },
    );
    for (f, truth) in truths.iter().enumerate() {
        let piece = &result.x[f * sm.num_voxels()..(f + 1) * sm.num_voxels()];
        let err = rel_err(piece, truth);
        assert!(err < 0.4, "half-everything slice {f} error {err}");
    }
}

#[test]
fn more_ranks_than_tiles_leaves_spare_ranks_idle_but_correct() {
    // 16 ranks on an 8x8 grid with 4-cell tiles: only 4 tomogram tiles
    // exist per domain, so most ranks own nothing — the pipeline must
    // still complete and agree with the reference.
    let scan = ScanGeometry::uniform(ImageGrid::square(8, 1.0), 12);
    let (y, _) = sinogram_for(&scan, 31, 0.0);
    let result = reconstruct_distributed(
        &scan,
        &y,
        &DistributedConfig {
            topology: Topology::new(4, 2, 2),
            precision: Precision::Single,
            fusing: 1,
            hierarchical: true,
            iterations: 10,
            tile: 4,
            ..Default::default()
        },
    );
    assert_eq!(result.x.len(), 64);
    assert!(result.residual_history.last().unwrap() < &0.2);
}
