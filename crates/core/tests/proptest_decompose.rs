//! Randomized-shape properties of the slice decomposition: for any grid,
//! angle count, rank count, tile size, and curve, the distributed
//! operator pieces must reassemble the global operator exactly.

use proptest::prelude::*;
use xct_core::decompose::SliceDecomposition;
use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};
use xct_hilbert::CurveKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn local_operators_reassemble_the_global_matrix(
        n in 6usize..24,
        angles in 3usize..16,
        ranks in 1usize..9,
        tile in 2usize..6,
        kind_sel in 0u8..3,
    ) {
        let kind = match kind_sel {
            0 => CurveKind::Hilbert,
            1 => CurveKind::RowMajor,
            _ => CurveKind::Morton,
        };
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), angles);
        let sm = SystemMatrix::build(&scan);
        let d = SliceDecomposition::build(&sm, &scan, ranks, tile, kind);

        // Nonzeros are partitioned exactly.
        let local_nnz: usize = d.local_ops.iter().map(|op| op.csr.nnz()).sum();
        prop_assert_eq!(local_nnz, sm.nnz());

        // Partial projections sum to the full projection.
        let x: Vec<f32> = (0..sm.num_voxels())
            .map(|i| ((i * 7 + 3) % 13) as f32 / 13.0)
            .collect();
        let mut y_ref = vec![0.0f32; sm.num_rays()];
        sm.project(&x, &mut y_ref);
        let mut y_sum = vec![0.0f64; sm.num_rays()];
        for op in &d.local_ops {
            let x_loc: Vec<f32> = op.cols.iter().map(|&c| x[c as usize]).collect();
            let mut y_loc = vec![0.0f32; op.rows.len()];
            op.csr.spmv::<f32>(&x_loc, &mut y_loc);
            for (&r, &v) in op.rows.iter().zip(&y_loc) {
                y_sum[r as usize] += f64::from(v);
            }
        }
        for (a, b) in y_sum.iter().zip(&y_ref) {
            prop_assert!((*a as f32 - b).abs() <= 1e-4 * b.abs().max(1.0));
        }

        // Ownership maps are total and within range.
        prop_assert!(d.voxel_owner.iter().all(|&o| (o as usize) < ranks));
        prop_assert!(d.ray_owner.iter().all(|&o| (o as usize) < ranks));

        // Footprints are exactly the local row sets.
        for p in 0..ranks {
            prop_assert_eq!(&d.footprints.per_rank[p], &d.local_ops[p].rows);
        }
    }

    #[test]
    fn restrict_assemble_roundtrip_any_shape(
        n in 6usize..20,
        ranks in 1usize..7,
        fusing in 1usize..4,
    ) {
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), 8);
        let sm = SystemMatrix::build(&scan);
        let d = SliceDecomposition::build(&sm, &scan, ranks, 3, CurveKind::Hilbert);
        let full: Vec<f32> = (0..sm.num_voxels() * fusing).map(|i| i as f32 * 0.5).collect();
        let pieces: Vec<Vec<f32>> = (0..ranks)
            .map(|p| d.restrict_volume(&full, sm.num_voxels(), fusing, p))
            .collect();
        let back = d.assemble_volume(&pieces, sm.num_voxels(), fusing);
        prop_assert_eq!(back, full);
    }
}
