//! Property tests for the partitioning strategy and complexity model.

use proptest::prelude::*;
use xct_core::{Partitioning, TableIComplexity};

proptest! {
    /// The optimal partitioning always produces a legal configuration:
    /// batch divides the node count, batch ≤ slices, and the whole
    /// machine is used.
    #[test]
    fn optimal_is_legal(
        matrix_gb in 1u64..4000,
        data_gb in 1u64..4000,
        nodes_pow in 0u32..8,
        slices in 1usize..10_000,
    ) {
        let nodes = 1usize << nodes_pow;
        let p = Partitioning::optimal(
            matrix_gb << 30,
            data_gb << 30,
            nodes,
            6,
            16 << 30,
            slices,
        );
        prop_assert_eq!(nodes % p.batch, 0);
        prop_assert!(p.batch <= slices.max(1));
        prop_assert_eq!(p.total(), (nodes / p.batch) * 6 * p.batch);
        prop_assert_eq!(p.data * p.batch, nodes * 6);
    }

    /// Shrinking the matrix footprint never reduces batch parallelism
    /// (lower precision → more batching, the Table III progression).
    #[test]
    fn smaller_matrix_never_batches_less(
        matrix_gb in 2u64..2000,
        data_gb in 1u64..1000,
        nodes_pow in 0u32..8,
    ) {
        let nodes = 1usize << nodes_pow;
        let big = Partitioning::optimal(matrix_gb << 30, data_gb << 30, nodes, 6, 16 << 30, 100_000);
        let small = Partitioning::optimal((matrix_gb / 2) << 30, (data_gb / 2) << 30, nodes, 6, 16 << 30, 100_000);
        prop_assert!(small.batch >= big.batch,
            "halving footprints must not reduce batching: {big:?} -> {small:?}");
    }

    /// When the chosen configuration is memory-feasible, the per-GPU
    /// footprint really fits the usable fraction.
    #[test]
    fn feasible_configurations_fit(
        matrix_gb in 1u64..200,
        data_gb in 1u64..200,
        nodes_pow in 2u32..8,
    ) {
        let nodes = 1usize << nodes_pow;
        let (matrix, data) = ((matrix_gb << 30) as f64, (data_gb << 30) as f64);
        let p = Partitioning::optimal(matrix_gb << 30, data_gb << 30, nodes, 6, 16 << 30, 100_000);
        let per_gpu = matrix / ((nodes / p.batch) as f64 * 6.0) + data / (nodes as f64 * 6.0);
        let usable = (16u64 << 30) as f64 * Partitioning::USABLE_MEMORY_FRACTION;
        // Either it fits, or even Pb=1 did not fit (saturated fallback).
        let pb1 = matrix / (nodes as f64 * 6.0) + data / (nodes as f64 * 6.0);
        prop_assert!(per_gpu <= usable + 1.0 || pb1 > usable,
            "chosen {p:?} uses {per_gpu} of {usable}");
    }

    /// Table I consistency: per-process compute × processes ≈ total
    /// compute (up to the duplicated-boundary term), and comm terms obey
    /// their exact algebraic relation.
    #[test]
    fn table1_totals_are_consistent(
        m in 1usize..4096,
        n in 2usize..4096,
        pb_pow in 0u32..6,
        pd_pow in 0u32..8,
    ) {
        let part = Partitioning { batch: 1 << pb_pow, data: 1 << pd_pow };
        let c = TableIComplexity::evaluate(m, n, part);
        let procs = part.total() as f64;
        // comm: per-process × processes == total (exact by construction).
        prop_assert!((c.comm_per_process * procs - c.comm_total).abs() < 1e-6 * c.comm_total.max(1.0));
        // compute: dominant term matches totals.
        prop_assert!(c.compute_per_process * procs >= c.compute_total * 0.99);
        // Communication per process decreases with more data processes.
        let quadrupled = TableIComplexity::evaluate(
            m,
            n,
            Partitioning { batch: part.batch, data: part.data * 4 },
        );
        prop_assert!((quadrupled.comm_per_process * 2.0 - c.comm_per_process).abs()
            < 1e-6 * c.comm_per_process.max(1.0));
    }
}
