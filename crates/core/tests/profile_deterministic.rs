//! Deterministic profiler fixture: a scripted 1x2x2 "run" driven by a
//! [`ManualClock`] — four rank tracks, two streamed slabs, two fused
//! slices — with every span duration chosen so each profile cell, each
//! drift row, and every derived per-tile cost is an exact arithmetic
//! consequence of the script. No tolerances anywhere: the profiler adds
//! scripted integers, and the artifact builder's tile spread is floor
//! division over the operator's nonzero counts.

use std::sync::Arc;

use xct_comm::Topology;
use xct_core::{build_profile_report, ProfileInputs};
use xct_fp16::Precision;
use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};
use xct_hilbert::{CurveKind, Domain2D, TileDecomposition};
use xct_telemetry::{CostComponent, ManualClock, Phase, ProfileDims, Telemetry, ALL_COMPONENTS};

/// Records one root span of exactly `dur` nanoseconds on `tele`'s
/// track, advancing the shared clock from `*t`.
fn span_for(tele: &Telemetry, clock: &ManualClock, t: &mut u64, phase: Phase, dur: u64) {
    clock.set(*t);
    let g = tele.span(phase);
    *t += dur;
    clock.set(*t);
    drop(g);
}

/// Scripted SpMM duration for `(rank, slab, slice)`: distinct at every
/// key so a misrouted attribution cannot cancel out.
fn spmm_ns(rank: u64, slab: u64, slice: u64) -> u64 {
    1000 * (rank + 1) + 100 * slab + 10 * slice
}

/// Each rank's total scripted SpMM time over both slabs and slices.
fn rank_spmm_total(rank: u64) -> u64 {
    (0..2)
        .flat_map(|s| (0..2).map(move |f| spmm_ns(rank, s, f)))
        .sum()
}

#[test]
fn nested_spans_attribute_exact_self_time_per_slice() {
    let clock = ManualClock::new();
    let tele = Telemetry::with_clock(Arc::new(clock.clone()));
    assert!(tele.enable_profile(ProfileDims {
        tracks: 1,
        slabs: 1,
        slices: 2,
    }));
    // SpMM span [0, 1000] with a comm-wait child [200, 500]: the parent
    // is charged its SELF time 700, the child its full 300.
    clock.set(0);
    let spmm = tele.span(Phase::SpmmForward);
    clock.set(200);
    let wait = tele.span(Phase::CommWait);
    clock.set(500);
    drop(wait);
    clock.set(1000);
    drop(spmm);
    // A second fused slice gets its own cells.
    tele.profile_slice_set(1);
    let mut t = 1000;
    span_for(&tele, &clock, &mut t, Phase::PrecisionConvert, 100);
    let snap = tele.profile_snapshot().unwrap();
    assert_eq!(snap.get(0, 0, 0, CostComponent::SpmmCompute), 700);
    assert_eq!(snap.get(0, 0, 0, CostComponent::CommWait), 300);
    assert_eq!(snap.get(0, 0, 1, CostComponent::GatherConvert), 100);
    assert_eq!(snap.total_ns(), 1100);
}

#[test]
fn scripted_1x2x2_run_yields_exact_cells_drift_and_tile_costs() {
    let clock = ManualClock::new();
    let tele = Telemetry::with_clock(Arc::new(clock.clone()));
    let topology = Topology::new(1, 2, 2);
    let ranks = topology.size();
    assert!(tele.enable_profile(ProfileDims {
        tracks: ranks,
        slabs: 2,
        slices: 2,
    }));
    let forks: Vec<Telemetry> = (0..ranks).map(|r| tele.fork(r as u32)).collect();
    // Each rank's spans are laid back-to-back on its own timeline so
    // its causal busy time is the plain sum of scripted durations.
    let mut cursor = vec![0u64; ranks];

    // Streamed slabs run one at a time; the slab context is
    // collector-global, exactly as `stream.rs` drives it.
    for slab in 0..2u64 {
        tele.profile_slab_set(slab as u32);
        for (r, fork) in forks.iter().enumerate() {
            for slice in 0..2u64 {
                fork.profile_slice_set(slice as u32);
                span_for(
                    fork,
                    &clock,
                    &mut cursor[r],
                    Phase::SpmmForward,
                    spmm_ns(r as u64, slab, slice),
                );
            }
        }
    }
    // One scripted span per remaining component, per rank, all charged
    // to (slab 0, slice 0).
    tele.profile_slab_set(0);
    let singles = [
        (Phase::PrecisionConvert, 100u64),
        (Phase::ReduceSocket, 30),
        (Phase::ReduceNode, 40),
        (Phase::ReduceGlobal, 50),
        (Phase::CommWait, 60),
        (Phase::Io, 70),
    ];
    for (r, fork) in forks.iter().enumerate() {
        fork.profile_slice_set(0);
        for (phase, dur) in singles {
            span_for(fork, &clock, &mut cursor[r], phase, dur);
        }
    }
    // Rank 3 (the longest track) sends one message that rank 0 matches
    // 100 simulated wire nanoseconds later: the critical path gains the
    // wire hop and rank 0 the received-wire attribution.
    let sent = cursor[3];
    clock.set(sent + 100);
    forks[0].edge(3, 1, 64, sent, 100);

    // --- exact profile cells -------------------------------------
    let profile = tele.profile_snapshot().unwrap();
    for r in 0..ranks as u64 {
        for slab in 0..2 {
            for slice in 0..2 {
                assert_eq!(
                    profile.get(r as usize, slab, slice, CostComponent::SpmmCompute),
                    spmm_ns(r, slab as u64, slice as u64),
                    "cell ({r}, {slab}, {slice})"
                );
            }
        }
    }

    // --- exact artifact ------------------------------------------
    let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 12);
    let snapshot = tele.snapshot();
    let report = build_profile_report(&ProfileInputs {
        scan: &scan,
        slices: 2,
        topology,
        precision: Precision::Single,
        tile: 4,
        tile_weights: None,
        snapshot: &snapshot,
        profile: &profile,
        model: None,
    });

    // Drift table: measured totals are the scripted sums; without a
    // model estimate every predicted share is zero, so the drift IS the
    // measured share.
    let spmm_total: u64 = (0..4).map(rank_spmm_total).sum();
    assert_eq!(spmm_total, 40_880);
    let measured = [spmm_total, 400, 120, 160, 200, 240, 280];
    let total: u64 = measured.iter().sum();
    assert_eq!(total, 42_280);
    assert_eq!(report.drift.len(), ALL_COMPONENTS.len());
    for (row, (&component, &ns)) in report
        .drift
        .iter()
        .zip(ALL_COMPONENTS.iter().zip(measured.iter()))
    {
        assert_eq!(row.component, component);
        assert_eq!(row.measured_ns, ns, "{component}");
        assert_eq!(row.measured_share, ns as f64 / total as f64, "{component}");
        assert_eq!(row.predicted_share, 0.0);
        assert_eq!(row.drift(), row.measured_share);
    }

    // Per-rank costs: busy is the scripted sum, slack is the distance
    // to the 16570 + 100 wire-extended critical path, and only rank 0
    // (the edge's receiver) carries wire time.
    assert_eq!(report.skew.critical_path_ns, sent + 100);
    for r in 0..ranks {
        let rc = &report.ranks[r];
        let busy = rank_spmm_total(r as u64) + 350;
        assert_eq!(rc.rank, r as u32);
        assert_eq!(rc.busy_ns, busy, "rank {r} busy");
        assert_eq!(
            rc.component_ns(CostComponent::SpmmCompute),
            rank_spmm_total(r as u64)
        );
        assert_eq!(rc.component_ns(CostComponent::IoStall), 70);
        assert_eq!(rc.wire_ns, if r == 0 { 100 } else { 0 });
        if r < 3 {
            // Ranks 0..2 do no busy work after the match, so their best
            // chain is their own busy run: pure slack against the
            // wire-extended path.
            assert_eq!(rc.slack_ns, sent + 100 - busy, "rank {r} slack");
        }
    }
    // Rank 3 ends the busy chain the wire hop extends: zero slack.
    assert_eq!(report.ranks[3].slack_ns, 0);
    assert_eq!(report.skew.zero_slack_ranks, vec![3]);
    assert_eq!(
        report.skew.max_rank_slack_ns,
        sent + 100 - report.ranks[0].busy_ns
    );

    // Derived tile costs: floor(rank_spmm * tile_nnz / rank_nnz) over
    // the uniform Hilbert ownership — recomputed here from the operator
    // itself, then compared cell-for-cell.
    let sm = SystemMatrix::build(&scan);
    let mut nnz = [0u64; 16];
    for (_, col, _) in sm.triplets() {
        let x = col as usize % 16;
        let z = col as usize / 16;
        nnz[(z / 4) * 4 + x / 4] += 1;
    }
    let tomo = TileDecomposition::new(Domain2D::new(16, 16), 4, CurveKind::Hilbert);
    let mut expect = vec![0u64; 16];
    for sd in tomo.partition(4) {
        let rank_nnz: u64 = sd.tiles.iter().map(|t| nnz[t.ty * 4 + t.tx]).sum();
        if rank_nnz == 0 {
            continue;
        }
        for t in &sd.tiles {
            let i = t.ty * 4 + t.tx;
            expect[i] = (u128::from(rank_spmm_total(sd.id as u64)) * u128::from(nnz[i])
                / u128::from(rank_nnz)) as u64;
        }
    }
    assert_eq!(report.tile_costs_ns, expect);
    assert_eq!(
        report.skew.max_tile_ns,
        expect.iter().copied().max().unwrap()
    );
    // The scripted skew (rank 3 is 4x rank 0) must show up as a
    // genuinely nonuniform tile table.
    assert!(report.skew.max_over_mean() > 1.0);
}
