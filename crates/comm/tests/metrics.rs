//! Communication-metering integration tests: the recorded matrices and
//! per-level volumes must match what the plans predict, exactly.

use std::time::Duration;
use xct_comm::{
    execute_hierarchical, run_ranks, run_ranks_traced, run_ranks_traced_wired, Backoff, CommReport,
    Footprints, HierarchicalPlan, Ownership, PartialData, Topology, TrafficClass, WireModel,
};
use xct_fp16::F16;
use xct_telemetry::{MetricId, Phase, Telemetry};

/// Shared fixture: 8 ranks on a 2-node × 2-socket × 2-GPU topology,
/// 32 rows, deterministic staggered footprints (mirrors the unit fixture
/// in `xct-comm`'s plan tests).
fn fixture() -> (Footprints, Ownership, Topology) {
    let topo = Topology::new(2, 2, 2);
    let owner: Vec<u32> = (0..32u32).map(|r| r / 4).collect();
    let fp: Vec<Vec<u32>> = (0..8usize)
        .map(|p| {
            (0..32u32)
                .filter(|&r| (r as usize * 7 + p * 3) % 5 < 3)
                .collect()
        })
        .collect();
    (Footprints::new(fp), Ownership::new(owner, 8), topo)
}

#[test]
fn ring_exchange_records_exact_byte_matrix() {
    const N: usize = 4;
    const VALS: usize = 8; // 8 × f32 = 32 payload bytes per message
    let stats = run_ranks(N, |comm| {
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        let payload = vec![comm.rank() as f32; VALS];
        comm.send_vals::<f32>(next, 7, &payload).unwrap();
        let got = comm.recv_vals::<f32>(prev, 7).unwrap();
        assert_eq!(got.len(), VALS);
        comm.comm_stats()
    });
    let report = CommReport::new(stats);
    let mut expected = vec![vec![0u64; N]; N];
    for src in 0..N {
        expected[src][(src + 1) % N] = (VALS * std::mem::size_of::<f32>()) as u64;
    }
    assert_eq!(report.byte_matrix(), expected);
    for (src, row) in report.message_matrix().iter().enumerate() {
        for (dst, &msgs) in row.iter().enumerate() {
            assert_eq!(msgs, u64::from(dst == (src + 1) % N), "msgs {src}->{dst}");
        }
    }
    // Plain sends outside any plan scope land in the Other class.
    assert_eq!(
        report.level_bytes()[TrafficClass::Other as usize],
        (N * VALS * std::mem::size_of::<f32>()) as u64
    );
}

#[test]
fn hierarchical_reduction_volumes_match_plan_prediction() {
    let (fp, own, topo) = fixture();
    let plan = HierarchicalPlan::build(&fp, &own, &topo);
    let (socket_el, node_el, global_el) = plan.level_elements();

    let run = |elem_bytes: u64, stats: Vec<xct_comm::RankCommStats>| {
        let report = CommReport::new(stats);
        let levels = report.level_bytes();
        assert_eq!(
            levels[TrafficClass::Socket as usize],
            socket_el * elem_bytes,
            "socket level"
        );
        assert_eq!(
            levels[TrafficClass::Node as usize],
            node_el * elem_bytes,
            "node level"
        );
        assert_eq!(
            levels[TrafficClass::Global as usize],
            global_el * elem_bytes,
            "global level"
        );
        assert_eq!(levels[TrafficClass::Control as usize], 0);
        assert_eq!(levels[TrafficClass::Other as usize], 0);
        assert_eq!(
            report.total_bytes(),
            (socket_el + node_el + global_el) * elem_bytes
        );
    };

    // Single precision: 4 bytes per element on every level.
    let stats = run_ranks(8, |comm| {
        let p = comm.rank();
        let rows = fp.per_rank[p].clone();
        let vals: Vec<f32> = rows.iter().map(|&r| r as f32).collect();
        let mine = PartialData::new(rows, vals);
        execute_hierarchical(comm, &plan, &own, &mine).unwrap();
        comm.comm_stats()
    });
    run(4, stats);

    // Half precision literally moves half the bytes (Table IV's point).
    let stats = run_ranks(8, |comm| {
        let p = comm.rank();
        let rows = fp.per_rank[p].clone();
        let vals: Vec<F16> = rows.iter().map(|&r| F16::from_f32(r as f32)).collect();
        let mine = PartialData::new(rows, vals);
        execute_hierarchical(comm, &plan, &own, &mine).unwrap();
        comm.comm_stats()
    });
    run(2, stats);
}

#[test]
fn traced_ranks_record_per_level_spans_on_their_own_tracks() {
    let (fp, own, topo) = fixture();
    let plan = HierarchicalPlan::build(&fp, &own, &topo);
    let tele = Telemetry::enabled();
    run_ranks_traced(8, &tele, |comm| {
        let p = comm.rank();
        assert_eq!(comm.telemetry().track(), p as u32);
        let rows = fp.per_rank[p].clone();
        let vals: Vec<f32> = rows.iter().map(|&r| r as f32).collect();
        let mine = PartialData::new(rows, vals);
        execute_hierarchical(comm, &plan, &own, &mine).unwrap();
    });
    let snap = tele.snapshot();
    for rank in 0..8u32 {
        for phase in [Phase::ReduceSocket, Phase::ReduceNode, Phase::ReduceGlobal] {
            assert_eq!(
                snap.spans
                    .iter()
                    .filter(|s| s.track == rank && s.phase == phase)
                    .count(),
                1,
                "rank {rank} {phase}"
            );
        }
    }
}

/// The `comm.wait` backoff used to be tune-blind: nothing measured how
/// often a bounded-backoff wait spun, yielded, or slept, so its
/// constants could never be tuned against evidence. Worse, the drain
/// loops re-entered `test_backoff` in a `while`, restarting the ladder
/// at the yield rung every call — the wait never escalated to parks and
/// burned the core the compute pipeline needed. Under a wire model that
/// holds the message back long enough to exhaust the yield phase, a
/// loop-owned [`Backoff`] must (a) reach its parking tier and (b) keep
/// the total failed-poll count small: the doubling pauses cover 3 ms of
/// wire in ~10 parks on top of the 16 yields, nowhere near the hundreds
/// of polls a ladder-resetting loop needs.
#[test]
fn backoff_counters_move_under_a_wired_run() {
    let wire = WireModel {
        latency: Duration::from_millis(3),
        bytes_per_sec: f64::INFINITY,
        ranks_per_node: 1, // every pair inter-node: all messages wired
    };
    let tele = Telemetry::enabled();
    run_ranks_traced_wired(2, &tele, Some(wire), |comm| {
        if comm.rank() == 0 {
            comm.send_vals::<f32>(1, 5, &[1.0, 2.0]).unwrap();
        } else {
            let mut req = comm.irecv(0, 5).unwrap();
            // 3 ms of wire time far exceeds the 16-poll yield phase, so
            // the persistent ladder must reach its sleeping tier before
            // this completes.
            let mut backoff = Backoff::new();
            while !req.test(comm).unwrap() {
                backoff.wait(comm);
            }
            let got = req.wait(comm).unwrap();
            assert_eq!(got.len(), 8);
            comm.recycle(got);
        }
    });
    let metrics = tele.metrics_snapshot();
    let receiver = metrics.track(1).expect("rank 1 recorded metrics");
    let spins = receiver.counter(MetricId::CommWaitSpins);
    assert!(spins >= 17, "spins: {spins} (must pass the yield phase)");
    assert!(
        spins <= 64,
        "spins: {spins} — a persistent ladder covers 3 ms of wire in \
         well under 64 polls; hundreds means the escalation reset is back"
    );
    let yields = receiver.counter(MetricId::CommWaitYields);
    assert_eq!(
        yields,
        u64::from(Backoff::YIELD_POLLS),
        "one wait event yields exactly through the yield phase"
    );
    assert!(
        receiver.counter(MetricId::CommWaitParks) >= 1,
        "parks: {}",
        receiver.counter(MetricId::CommWaitParks)
    );
    assert_eq!(
        spins,
        yields + receiver.counter(MetricId::CommWaitParks),
        "every failed poll either yields or parks"
    );
    // The sender track never waited.
    let sender = metrics.track(0).expect("rank 0 recorded metrics");
    assert_eq!(sender.counter(MetricId::CommWaitSpins), 0);
    // Send/recv accounting is exact: one 8-byte payload each way of the
    // metered channel (plus nothing else in this run).
    assert_eq!(sender.counter(MetricId::CommSendBytes), 8);
    assert_eq!(receiver.counter(MetricId::CommRecvBytes), 8);
    assert_eq!(metrics.inflight_bytes(), 0, "all messages matched");
}

/// A blocking `recv` that arrives late parks on the condvar; the park
/// counter and the comm.wait mailbox-depth gauge must reflect it.
#[test]
fn blocking_recv_counts_parks_and_depth() {
    let wire = WireModel {
        latency: Duration::from_millis(2),
        bytes_per_sec: f64::INFINITY,
        ranks_per_node: 1,
    };
    let tele = Telemetry::enabled();
    run_ranks_traced_wired(2, &tele, Some(wire), |comm| {
        if comm.rank() == 0 {
            comm.send_vals::<f32>(1, 9, &[3.0]).unwrap();
        } else {
            let got = comm.recv_vals::<f32>(0, 9).unwrap();
            assert_eq!(got, vec![3.0]);
        }
    });
    let metrics = tele.metrics_snapshot();
    let receiver = metrics.track(1).expect("rank 1 recorded metrics");
    assert!(
        receiver.counter(MetricId::CommWaitParks) >= 1,
        "parks: {}",
        receiver.counter(MetricId::CommWaitParks)
    );
    assert_eq!(
        receiver.gauge(MetricId::CommMailboxDepth),
        Some(0.0),
        "mailbox drained by the final match"
    );
}
