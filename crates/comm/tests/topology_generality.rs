//! §III-D3: "the method is general and applicable to other node
//! architectures with different number of sockets and GPUs" — exercised
//! on several non-Summit topologies, plus failure-propagation checks for
//! the runtime.

use xct_comm::{
    execute_direct, execute_hierarchical, run_ranks, DirectPlan, Footprints, HierarchicalPlan,
    Ownership, PartialData, Topology,
};

fn fixture(ranks: usize, rows: usize) -> (Footprints, Ownership) {
    let owner: Vec<u32> = (0..rows as u32).map(|r| r % ranks as u32).collect();
    let fp: Vec<Vec<u32>> = (0..ranks)
        .map(|p| {
            (0..rows as u32)
                .filter(|&r| !(r as usize * 13 + p * 7).is_multiple_of(4))
                .collect()
        })
        .collect();
    (Footprints::new(fp), Ownership::new(owner, ranks))
}

fn check_topology(topo: Topology) {
    let ranks = topo.size();
    let (fp, own) = fixture(ranks, 64);
    let dplan = DirectPlan::build(&fp, &own);
    let hplan = HierarchicalPlan::build(&fp, &own, &topo);

    // Hierarchy never increases inter-node traffic.
    assert!(
        hplan.global.internode_elements(&topo) <= dplan.internode_elements(&topo),
        "topology {topo:?}"
    );

    // And numerics agree between schemes.
    let direct = run_ranks(ranks, |comm| {
        let p = comm.rank();
        let rows = fp.per_rank[p].clone();
        let vals: Vec<f32> = rows
            .iter()
            .map(|&r| (p as f32 + 1.0) + r as f32 * 0.01)
            .collect();
        execute_direct(comm, &dplan, &own, &PartialData::new(rows, vals)).unwrap()
    });
    let hier = run_ranks(ranks, |comm| {
        let p = comm.rank();
        let rows = fp.per_rank[p].clone();
        let vals: Vec<f32> = rows
            .iter()
            .map(|&r| (p as f32 + 1.0) + r as f32 * 0.01)
            .collect();
        execute_hierarchical(comm, &hplan, &own, &PartialData::new(rows, vals)).unwrap()
    });
    for (d, h) in direct.iter().zip(&hier) {
        assert_eq!(d.rows, h.rows);
        for (a, b) in d.vals.iter().zip(&h.vals) {
            assert!((a - b).abs() < 1e-4, "topology {topo:?}: {a} vs {b}");
        }
    }
}

#[test]
fn summit_two_sockets_of_three() {
    check_topology(Topology::summit(2));
}

#[test]
fn frontier_like_four_sockets_of_two() {
    // Frontier-style: 4 NUMA domains × 2 GCDs.
    check_topology(Topology::new(2, 4, 2));
}

#[test]
fn dgx_like_single_socket_of_eight() {
    // One big NVLink island per node: the socket level does all the
    // local reduction; the node level degenerates to a no-op.
    let topo = Topology::new(2, 1, 8);
    let (fp, own) = fixture(topo.size(), 64);
    let hplan = HierarchicalPlan::build(&fp, &own, &topo);
    assert_eq!(
        hplan.node.total_elements(),
        0,
        "single-socket nodes have no inter-socket traffic"
    );
    check_topology(topo);
}

#[test]
fn one_gpu_per_node_degenerates_to_direct() {
    // No local peers at all: both local levels are empty and global
    // equals direct.
    let topo = Topology::new(6, 1, 1);
    let (fp, own) = fixture(topo.size(), 48);
    let dplan = DirectPlan::build(&fp, &own);
    let hplan = HierarchicalPlan::build(&fp, &own, &topo);
    assert_eq!(hplan.socket.total_elements(), 0);
    assert_eq!(hplan.node.total_elements(), 0);
    assert_eq!(hplan.global.total_elements(), dplan.total_elements());
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn rank_panic_propagates_to_the_caller() {
    run_ranks(4, |comm| {
        if comm.rank() == 2 {
            panic!("injected failure");
        }
        // Other ranks exit normally; the harness must still surface the
        // failure instead of hanging.
    });
}
