//! Executing communication plans on real data across ranks.
//!
//! Forward (projection) direction: partial sums flow *up* the hierarchy —
//! socket reduction, node reduction, global exchange to owners. Backward
//! (backprojection) direction is the transpose: owners *scatter* total
//! sinogram values back down to every rank whose footprint needs them
//! (paper §III-D1: "this description is also valid for backprojection as
//! it is a transpose of projection").
//!
//! Reductions accumulate in f64 and round to the storage scalar once per
//! level — communication stays at storage width (half precision moves
//! half the bytes), which is the property the paper's Table IV measures.

// Row and position ids in this module are `u32` by the `Ownership`
// contract (`num_rows` fits `u32`); enumerate-index casts back into that
// space are lossless by construction.
#![allow(clippy::cast_possible_truncation)]
use crate::metrics::TrafficClass;
use crate::plan::{DirectPlan, HierarchicalPlan, Ownership, ReductionStep};
use crate::runtime::{CommError, Communicator};
use crate::wire::Wire;
use std::collections::HashMap;
use xct_telemetry::Phase;

/// Sorted rows with one value each — a rank's partial (or reduced) data.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialData<S> {
    /// Global row ids, ascending.
    pub rows: Vec<u32>,
    /// Value per row.
    pub vals: Vec<S>,
}

impl<S: Wire> PartialData<S> {
    /// Creates partial data; rows must be strictly ascending (sorted,
    /// no duplicates) and match `vals` in length.
    ///
    /// Validated in release builds too: unsorted or duplicate rows would
    /// silently corrupt the `binary_search` used by `gather`, surfacing
    /// much later as a misleading "row not in local data" panic.
    pub fn new(rows: Vec<u32>, vals: Vec<S>) -> Self {
        assert_eq!(rows.len(), vals.len(), "rows/vals length mismatch");
        if let Some(w) = rows.windows(2).find(|w| w[0] >= w[1]) {
            // xct-allow(no-panic): validated constructor — rejects corrupt inputs at the boundary, documented above
            panic!(
                "PartialData rows must be strictly ascending: row {} followed by {}",
                w[0], w[1]
            );
        }
        PartialData { rows, vals }
    }

    /// Empty data.
    pub fn empty() -> Self {
        PartialData {
            rows: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn value_map(&self) -> HashMap<u32, f64> {
        self.rows
            .iter()
            .zip(&self.vals)
            .map(|(&r, &v)| (r, v.to_f64()))
            .collect()
    }

    /// Gathers values for `rows` (each must be present).
    fn gather(&self, rows: &[u32]) -> Vec<S> {
        rows.iter()
            .map(|r| {
                let at = self.rows.binary_search(r).unwrap_or_else(|_| {
                    // xct-allow(no-panic): plan invariant — gather rows come from the verified plan's footprint
                    panic!("row {r} not in local data");
                });
                self.vals[at]
            })
            .collect()
    }

    fn from_map(mut acc: HashMap<u32, f64>) -> Self {
        let mut rows: Vec<u32> = acc.keys().copied().collect();
        rows.sort_unstable();
        let vals = rows
            .iter()
            // xct-allow(no-panic): infallible — rows was built from acc's own keys
            .map(|r| S::from_f64(acc.remove(r).expect("row present")))
            .collect();
        PartialData { rows, vals }
    }
}

const TAG_DIRECT: u64 = 0x100;
const TAG_SOCKET: u64 = 0x200;
const TAG_NODE: u64 = 0x300;
const TAG_GLOBAL: u64 = 0x400;
const TAG_SCATTER: u64 = 0x800;

/// Runs one reduce level: sends my rows designated elsewhere, receives and
/// sums rows designated to me. Returns my post-level data.
fn reduce_step<S: Wire>(
    comm: &Communicator,
    step: &ReductionStep,
    mine: &PartialData<S>,
    tag: u64,
) -> Result<PartialData<S>, CommError> {
    let me = comm.rank();
    // Post sends first (non-blocking), then drain receives — the
    // Issend/Irecv overlap pattern of §III-D4.
    for (dst, rows) in &step.sends[me] {
        comm.send_vals(*dst, tag, &mine.gather(rows))?;
    }
    let mut acc: HashMap<u32, f64> = HashMap::new();
    // Seed with my own partials for rows designated to me.
    let my_post = &step.post.per_rank[me];
    let my_map = mine.value_map();
    for &r in my_post {
        if let Some(&v) = my_map.get(&r) {
            acc.insert(r, v);
        } else {
            acc.insert(r, 0.0);
        }
    }
    for (src, sends) in step.sends.iter().enumerate() {
        for (dst, rows) in sends {
            if *dst != me {
                continue;
            }
            let vals: Vec<S> = comm.recv_vals(src, tag)?;
            assert_eq!(vals.len(), rows.len(), "payload/plan length mismatch");
            for (&r, v) in rows.iter().zip(vals) {
                *acc.entry(r).or_insert(0.0) += v.to_f64();
            }
        }
    }
    Ok(PartialData::from_map(acc))
}

/// Direct exchange (Fig 6a): every rank ships partials straight to owners
/// and reduces what it receives for its own rows. Returns the totals for
/// the rows this rank owns.
pub fn execute_direct<S: Wire>(
    comm: &Communicator,
    plan: &DirectPlan,
    ownership: &Ownership,
    mine: &PartialData<S>,
) -> Result<PartialData<S>, CommError> {
    // Direct exchange is all-to-owners over the network: one global level.
    let _class = comm.meter().scope_class(TrafficClass::Global);
    let _span = comm.telemetry().span(Phase::ReduceGlobal);
    let me = comm.rank();
    for (dst, rows) in &plan.sends[me] {
        comm.send_vals(*dst, TAG_DIRECT, &mine.gather(rows))?;
    }
    let mut acc: HashMap<u32, f64> = HashMap::new();
    // My own partials for rows I own.
    for (&r, &v) in mine.rows.iter().zip(&mine.vals) {
        if ownership.owner[r as usize] as usize == me {
            *acc.entry(r).or_insert(0.0) += v.to_f64();
        }
    }
    // Ensure owned rows nobody touched still appear (as zero).
    for (r, &o) in ownership.owner.iter().enumerate() {
        if o as usize == me {
            acc.entry(r as u32).or_insert(0.0);
        }
    }
    for (src, sends) in plan.sends.iter().enumerate() {
        for (dst, rows) in sends {
            if *dst != me {
                continue;
            }
            let vals: Vec<S> = comm.recv_vals(src, TAG_DIRECT)?;
            assert_eq!(vals.len(), rows.len(), "payload/plan length mismatch");
            for (&r, v) in rows.iter().zip(vals) {
                *acc.entry(r).or_insert(0.0) += v.to_f64();
            }
        }
    }
    Ok(PartialData::from_map(acc))
}

/// The full three-level exchange (Fig 6b–d): socket reduction, node
/// reduction, global exchange. Returns the totals for owned rows.
pub fn execute_hierarchical<S: Wire>(
    comm: &Communicator,
    plan: &HierarchicalPlan,
    ownership: &Ownership,
    mine: &PartialData<S>,
) -> Result<PartialData<S>, CommError> {
    let after_socket = {
        let _class = comm.meter().scope_class(TrafficClass::Socket);
        let _span = comm.telemetry().span(Phase::ReduceSocket);
        reduce_step(comm, &plan.socket, mine, TAG_SOCKET)?
    };
    let after_node = {
        let _class = comm.meter().scope_class(TrafficClass::Node);
        let _span = comm.telemetry().span(Phase::ReduceNode);
        reduce_step(comm, &plan.node, &after_socket, TAG_NODE)?
    };
    // Global: the direct plan built on post-node footprints, but tagged
    // separately so hierarchical and direct traffic cannot mix.
    let _class = comm.meter().scope_class(TrafficClass::Global);
    let _span = comm.telemetry().span(Phase::ReduceGlobal);
    let me = comm.rank();
    for (dst, rows) in &plan.global.sends[me] {
        comm.send_vals(*dst, TAG_GLOBAL, &after_node.gather(rows))?;
    }
    let mut acc: HashMap<u32, f64> = HashMap::new();
    for (&r, &v) in after_node.rows.iter().zip(&after_node.vals) {
        if ownership.owner[r as usize] as usize == me {
            *acc.entry(r).or_insert(0.0) += v.to_f64();
        }
    }
    for (r, &o) in ownership.owner.iter().enumerate() {
        if o as usize == me {
            acc.entry(r as u32).or_insert(0.0);
        }
    }
    for (src, sends) in plan.global.sends.iter().enumerate() {
        for (dst, rows) in sends {
            if *dst != me {
                continue;
            }
            let vals: Vec<S> = comm.recv_vals(src, TAG_GLOBAL)?;
            assert_eq!(vals.len(), rows.len(), "payload/plan length mismatch");
            for (&r, v) in rows.iter().zip(vals) {
                *acc.entry(r).or_insert(0.0) += v.to_f64();
            }
        }
    }
    Ok(PartialData::from_map(acc))
}

/// Transpose direction (backprojection input): owners scatter total row
/// values to every rank whose footprint contains them, using the same
/// direct plan with roles reversed. `owned` holds my rows' totals;
/// `footprint` lists the rows I need. Returns my footprint filled in.
pub fn scatter_direct<S: Wire>(
    comm: &Communicator,
    plan: &DirectPlan,
    ownership: &Ownership,
    owned: &PartialData<S>,
    footprint: &[u32],
) -> Result<PartialData<S>, CommError> {
    let _class = comm.meter().scope_class(TrafficClass::Global);
    let _span = comm.telemetry().span(Phase::HaloExchange);
    let me = comm.rank();
    // Reversed roles: for plan entry sends[p] = (me, rows), I (the owner)
    // send those rows' totals back to p.
    for (src, sends) in plan.sends.iter().enumerate() {
        for (dst, rows) in sends {
            if *dst == me {
                comm.send_vals(src, TAG_SCATTER, &owned.gather(rows))?;
            }
        }
    }
    let mut acc: HashMap<u32, f64> = HashMap::new();
    let owned_map = owned.value_map();
    for &r in footprint {
        if ownership.owner[r as usize] as usize == me {
            // xct-allow(no-panic): plan invariant — ownership says this rank holds r
            acc.insert(r, *owned_map.get(&r).expect("owner holds all its rows"));
        }
    }
    for (dst, rows) in &plan.sends[me] {
        let vals: Vec<S> = comm.recv_vals(*dst, TAG_SCATTER)?;
        assert_eq!(vals.len(), rows.len(), "payload/plan length mismatch");
        for (&r, v) in rows.iter().zip(vals) {
            acc.insert(r, v.to_f64());
        }
    }
    Ok(PartialData::from_map(acc))
}

/// One reversed reduce level: designees return row values to the ranks
/// that contributed partials, restoring the pre-step footprint.
fn scatter_step<S: Wire>(
    comm: &Communicator,
    step: &ReductionStep,
    mine: &PartialData<S>,
    tag: u64,
) -> Result<PartialData<S>, CommError> {
    let me = comm.rank();
    // Reversed roles: wherever rank q sent rows to designee me in the
    // forward direction, I now send those rows' totals back to q.
    for (src, sends) in step.sends.iter().enumerate() {
        for (dst, rows) in sends {
            if *dst == me {
                comm.send_vals(src, tag, &mine.gather(rows))?;
            }
        }
    }
    // My pre-step footprint = rows I kept as designee + rows I sent away.
    let mut acc: HashMap<u32, f64> = HashMap::new();
    let my_map = mine.value_map();
    for &r in &step.post.per_rank[me] {
        if let Some(&v) = my_map.get(&r) {
            acc.insert(r, v);
        }
    }
    for (dst, rows) in &step.sends[me] {
        let vals: Vec<S> = comm.recv_vals(*dst, tag)?;
        assert_eq!(vals.len(), rows.len(), "payload/plan length mismatch");
        for (&r, v) in rows.iter().zip(vals) {
            acc.insert(r, v.to_f64());
        }
    }
    Ok(PartialData::from_map(acc))
}

/// Transpose direction through the full hierarchy (the backprojection
/// pipeline of Fig 8, reversed): owners scatter totals to node designees
/// (global), designees fan out within nodes (node level), then within
/// sockets — restoring every rank's original footprint. Per-level wire
/// volumes are identical to the forward reduction, which is why the
/// paper reports one set of Table IV volumes for both directions.
pub fn scatter_hierarchical<S: Wire>(
    comm: &Communicator,
    plan: &HierarchicalPlan,
    ownership: &Ownership,
    owned: &PartialData<S>,
    footprint: &[u32],
) -> Result<PartialData<S>, CommError> {
    let _halo = comm.telemetry().span(Phase::HaloExchange);
    let me = comm.rank();
    let post_node: PartialData<S> = {
        let _class = comm.meter().scope_class(TrafficClass::Global);
        // Reversed global: owners send totals back along the global plan.
        for (src, sends) in plan.global.sends.iter().enumerate() {
            for (dst, rows) in sends {
                if *dst == me {
                    comm.send_vals(src, TAG_SCATTER | 0x10, &owned.gather(rows))?;
                }
            }
        }
        let mut acc: HashMap<u32, f64> = HashMap::new();
        let owned_map = owned.value_map();
        for &r in &plan.node.post.per_rank[me] {
            if ownership.owner[r as usize] as usize == me {
                // xct-allow(no-panic): plan invariant — ownership says this rank holds r
                acc.insert(r, *owned_map.get(&r).expect("owner holds its rows"));
            }
        }
        for (dst, rows) in &plan.global.sends[me] {
            let vals: Vec<S> = comm.recv_vals(*dst, TAG_SCATTER | 0x10)?;
            assert_eq!(vals.len(), rows.len(), "payload/plan length mismatch");
            for (&r, v) in rows.iter().zip(vals) {
                acc.insert(r, v.to_f64());
            }
        }
        PartialData::from_map(acc)
    };
    // Reversed node and socket levels. Intermediate results legitimately
    // carry rows designated to this rank on *peers'* behalf (they must be
    // forwarded onward); the final answer restricts to the caller's own
    // footprint.
    let post_socket = {
        let _class = comm.meter().scope_class(TrafficClass::Node);
        scatter_step(comm, &plan.node, &post_node, TAG_SCATTER | 0x20)?
    };
    let full = {
        let _class = comm.meter().scope_class(TrafficClass::Socket);
        scatter_step(comm, &plan.socket, &post_socket, TAG_SCATTER | 0x30)?
    };
    let full_map = full.value_map();
    let vals = footprint
        .iter()
        .map(|r| {
            S::from_f64(
                *full_map
                    .get(r)
                    // xct-allow(no-panic): plan invariant — scatter conservation is statically verified
                    .unwrap_or_else(|| panic!("row {r} missing after hierarchical scatter")),
            )
        })
        .collect();
    Ok(PartialData::new(footprint.to_vec(), vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Footprints;
    use crate::runtime::run_ranks;
    use crate::topology::Topology;
    use xct_fp16::F16;

    /// Shared fixture: 8 ranks on 2×2×2, 32 rows, random-ish footprints.
    fn fixture() -> (Footprints, Ownership, Topology) {
        let topo = Topology::new(2, 2, 2);
        let owner: Vec<u32> = (0..32u32).map(|r| r / 4).collect();
        let fp: Vec<Vec<u32>> = (0..8usize)
            .map(|p| {
                (0..32u32)
                    .filter(|&r| (r as usize * 7 + p * 3) % 5 < 3)
                    .collect()
            })
            .collect();
        (Footprints::new(fp), Ownership::new(owner, 8), topo)
    }

    /// Partial value: deterministic function of (rank, row).
    fn partial(p: usize, r: u32) -> f32 {
        ((p as f32 + 1.0) * 0.125) + (r as f32) * 0.01
    }

    /// Expected total per row: sum over holders.
    fn expected_total(fp: &Footprints, r: u32) -> f64 {
        (0..fp.num_ranks())
            .filter(|&p| fp.per_rank[p].contains(&r))
            .map(|p| f64::from(partial(p, r)))
            .sum()
    }

    fn my_data(fp: &Footprints, p: usize) -> PartialData<f32> {
        let rows = fp.per_rank[p].clone();
        let vals = rows.iter().map(|&r| partial(p, r)).collect();
        PartialData::new(rows, vals)
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_rows_rejected_in_release_builds_too() {
        // Must panic with the clear message even with debug_asserts off.
        let _ = PartialData::new(vec![3, 1, 2], vec![0.0f32, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_rows_rejected() {
        let _ = PartialData::new(vec![1, 2, 2], vec![0.0f32, 1.0, 2.0]);
    }

    #[test]
    fn direct_exchange_produces_exact_totals() {
        let (fp, own, _) = fixture();
        let plan = DirectPlan::build(&fp, &own);
        let results = run_ranks(8, |comm| {
            let mine = my_data(&fp, comm.rank());
            execute_direct(comm, &plan, &own, &mine).unwrap()
        });
        for (p, res) in results.iter().enumerate() {
            assert_eq!(res.rows, own.rows_of(p), "rank {p} owned rows");
            for (&r, &v) in res.rows.iter().zip(&res.vals) {
                let expect = expected_total(&fp, r);
                assert!(
                    (f64::from(v) - expect).abs() < 1e-4,
                    "rank {p} row {r}: {v} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn hierarchical_equals_direct() {
        let (fp, own, topo) = fixture();
        let dplan = DirectPlan::build(&fp, &own);
        let hplan = HierarchicalPlan::build(&fp, &own, &topo);
        let direct = run_ranks(8, |comm| {
            execute_direct(comm, &dplan, &own, &my_data(&fp, comm.rank())).unwrap()
        });
        let hier = run_ranks(8, |comm| {
            execute_hierarchical(comm, &hplan, &own, &my_data(&fp, comm.rank())).unwrap()
        });
        for (d, h) in direct.iter().zip(&hier) {
            assert_eq!(d.rows, h.rows);
            for (a, b) in d.vals.iter().zip(&h.vals) {
                assert!((a - b).abs() < 1e-4, "direct {a} vs hierarchical {b}");
            }
        }
    }

    #[test]
    fn hierarchical_moves_less_between_nodes() {
        let (fp, own, topo) = fixture();
        let dplan = DirectPlan::build(&fp, &own);
        let hplan = HierarchicalPlan::build(&fp, &own, &topo);
        assert!(hplan.global.internode_elements(&topo) <= dplan.internode_elements(&topo));
    }

    #[test]
    fn half_precision_exchange_stays_close() {
        let (fp, own, topo) = fixture();
        let hplan = HierarchicalPlan::build(&fp, &own, &topo);
        let results = run_ranks(8, |comm| {
            let p = comm.rank();
            let rows = fp.per_rank[p].clone();
            let vals: Vec<F16> = rows.iter().map(|&r| F16::from_f32(partial(p, r))).collect();
            let mine = PartialData::new(rows, vals);
            execute_hierarchical(comm, &hplan, &own, &mine).unwrap()
        });
        for res in &results {
            for (&r, v) in res.rows.iter().zip(&res.vals) {
                let expect = expected_total(&fp, r);
                // Half quantization at each of ≤3 hops.
                assert!(
                    (v.to_f64() - expect).abs() <= expect.abs() * 3e-3 + 1e-3,
                    "row {r}: {} vs {expect}",
                    v.to_f64()
                );
            }
        }
    }

    #[test]
    fn scatter_returns_footprint_values() {
        let (fp, own, _) = fixture();
        let plan = DirectPlan::build(&fp, &own);
        let results = run_ranks(8, |comm| {
            let p = comm.rank();
            // Owners hold totals = row id as value.
            let rows = own.rows_of(p);
            let vals: Vec<f32> = rows.iter().map(|&r| r as f32).collect();
            let owned = PartialData::new(rows, vals);
            scatter_direct(comm, &plan, &own, &owned, &fp.per_rank[p]).unwrap()
        });
        for (p, res) in results.iter().enumerate() {
            assert_eq!(res.rows, fp.per_rank[p], "rank {p} footprint");
            for (&r, &v) in res.rows.iter().zip(&res.vals) {
                assert_eq!(v, r as f32);
            }
        }
    }

    #[test]
    fn hierarchical_scatter_matches_direct_scatter() {
        let (fp, own, topo) = fixture();
        let dplan = DirectPlan::build(&fp, &own);
        let hplan = HierarchicalPlan::build(&fp, &own, &topo);
        let make_owned = |p: usize| {
            let rows = own.rows_of(p);
            let vals: Vec<f32> = rows.iter().map(|&r| 10.0 + r as f32).collect();
            PartialData::new(rows, vals)
        };
        let direct = run_ranks(8, |comm| {
            let p = comm.rank();
            scatter_direct(comm, &dplan, &own, &make_owned(p), &fp.per_rank[p]).unwrap()
        });
        let hier = run_ranks(8, |comm| {
            let p = comm.rank();
            scatter_hierarchical(comm, &hplan, &own, &make_owned(p), &fp.per_rank[p]).unwrap()
        });
        for (p, (d, h)) in direct.iter().zip(&hier).enumerate() {
            assert_eq!(d.rows, h.rows, "rank {p} footprint rows");
            for ((&r, a), b) in d.rows.iter().zip(&d.vals).zip(&h.vals) {
                assert!((a - b).abs() < 1e-5, "rank {p} row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn hierarchical_scatter_half_precision() {
        let (fp, own, topo) = fixture();
        let hplan = HierarchicalPlan::build(&fp, &own, &topo);
        let results = run_ranks(8, |comm| {
            let p = comm.rank();
            let rows = own.rows_of(p);
            let vals: Vec<F16> = rows
                .iter()
                .map(|&r| F16::from_f32(r as f32 * 0.25))
                .collect();
            let owned = PartialData::new(rows, vals);
            scatter_hierarchical(comm, &hplan, &own, &owned, &fp.per_rank[p]).unwrap()
        });
        for (p, res) in results.iter().enumerate() {
            assert_eq!(res.rows, fp.per_rank[p]);
            for (&r, v) in res.rows.iter().zip(&res.vals) {
                // Values pass through ≤3 half-precision hops unchanged
                // (0.25·r is exactly representable).
                assert_eq!(v.to_f32(), r as f32 * 0.25, "rank {p} row {r}");
            }
        }
    }

    #[test]
    fn rows_owned_by_nobody_in_footprints_still_appear_as_zero() {
        // Row 31 owned by rank 7; strip it from all footprints.
        let topo = Topology::new(1, 2, 2);
        let owner: Vec<u32> = (0..8u32).map(|r| r / 2).collect();
        let fp = Footprints::new(vec![vec![0, 1], vec![2], vec![4], vec![6]]);
        let own = Ownership::new(owner, 4);
        let plan = DirectPlan::build(&fp, &own);
        let results = run_ranks(4, |comm| {
            let p = comm.rank();
            let rows = fp.per_rank[p].clone();
            let vals = vec![1.0f32; rows.len()];
            execute_direct(comm, &plan, &own, &PartialData::new(rows, vals)).unwrap()
        });
        let _ = topo;
        // Rank 0 owns rows 0,1: got 1.0 each. Rank 1 owns 2,3: row 3 is
        // in nobody's footprint — must still be present, as zero.
        assert_eq!(results[1].rows, vec![2, 3]);
        assert_eq!(results[1].vals[1], 0.0);
    }
}
