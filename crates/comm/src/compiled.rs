//! Compiled communication plans: allocation-free, overlappable execution.
//!
//! [`crate::exec`] is the *reference* executor — it re-derives row routing
//! from the plan on every call through `HashMap<u32, f64>` scratch, which
//! is clear but violates the steady-state allocation-free rule (PR 1) and
//! forces every exchange to complete before local work continues.
//! This module compiles a [`DirectPlan`] or [`HierarchicalPlan`] plus an
//! [`Ownership`] once, into per-rank tables of *positions*: for every
//! level, which indices of the current value buffer go to which peer,
//! which indices carry over locally (`keeps`), and where each received
//! element lands. Execution is then pure index arithmetic over reusable
//! `f64` buffers ([`ExchangeScratch`]).
//!
//! Numerical contract: results are **bit-identical** to the reference
//! executor. Both seed each level's accumulator the same way, add
//! received contributions in the same (source-ascending) plan order in
//! f64, and round to the storage scalar once per level — identical
//! floating-point operations in identical order.
//!
//! The split [`RankPlan::global_begin`] / [`RankPlan::global_finish`]
//! (and the scatter twins) is what makes the paper's §III-E overlap
//! executable: `begin` posts the global sends and irecvs and returns a
//! handle; local kernels and the *next* slice's socket/node reductions
//! run while those messages drain; `finish` waits and accumulates. The
//! in-flight handle owns the open `ReduceGlobal`/`HaloExchange` telemetry
//! span, so traces show exactly which work ran under the exchange.

// Row and position ids in this module are `u32` by the `Ownership`
// contract (`num_rows` fits `u32`); enumerate-index casts back into that
// space are lossless by construction.
#![allow(clippy::cast_possible_truncation)]
use crate::metrics::TrafficClass;
use crate::plan::{DirectPlan, HierarchicalPlan, Ownership, ReductionStep};
use crate::runtime::{CommError, Communicator, RecvRequest};
use crate::topology::Topology;
use crate::wire::Wire;
use std::collections::HashMap;
use xct_telemetry::{Phase, SpanGuard};

/// Compiled-plan tag namespace (disjoint from `exec`'s 0x100..0x800 and
/// the solver's 0x7000/0x9000 tags). Callers salt with a per-slice value
/// shifted above these bits to keep concurrent slices separate.
const TAG_SOCKET: u64 = 0x1100;
const TAG_NODE: u64 = 0x1200;
const TAG_GLOBAL: u64 = 0x1400;
const TAG_SCATTER_GLOBAL: u64 = 0x1500;
const TAG_SCATTER_NODE: u64 = 0x1600;
const TAG_SCATTER_SOCKET: u64 = 0x1700;

/// Tag namespace reserved for *re-homed* exchanges: when a fused slice's
/// share of work migrates from one rank to a socket-local sibling
/// (work stealing, ROADMAP), every transfer of the stolen share is
/// re-tagged as `level_tag | TAG_STEAL` so it can never cross-match the
/// thief's own concurrent traffic on the original level tags. The bit is
/// disjoint from every base tag here and from `exec`'s 0x100..0x800
/// range, so OR-ing keeps the level structure visible while moving the
/// whole namespace to 0x3100..0x3700. `xct-verify`'s `transfer_safety`
/// pass proves the disjointness for concrete plans.
pub const TAG_STEAL: u64 = 0x2000;

/// One precomputed point-to-point transfer: the buffer positions whose
/// values go to (or arrive from) `peer`, in wire order.
#[derive(Debug, Clone)]
pub struct Transfer {
    /// The peer rank.
    pub peer: usize,
    /// Positions in the local value buffer (send: gather order;
    /// recv: landing positions).
    pub idx: Vec<u32>,
}

impl Transfer {
    /// Validated constructor: position tables must be strictly ascending
    /// (every compile path gathers sorted row lists through monotone
    /// position maps, so a violation means a corrupted plan). Checked in
    /// release builds too — the same build-time-rejection pattern as
    /// `PartialData::new` — because an unsorted table silently scrambles
    /// payload/position pairing far from the cause.
    pub fn new(peer: usize, idx: Vec<u32>) -> Self {
        match Self::try_new(peer, idx) {
            Ok(t) => t,
            // xct-allow(no-panic): validated constructor — rejects corrupted plans at the boundary; try_new is the fallible form
            Err(e) => panic!("invalid transfer for peer {peer}: {e}"),
        }
    }

    /// Fallible [`Transfer::new`], returning the structured witness.
    pub fn try_new(peer: usize, idx: Vec<u32>) -> Result<Self, crate::plan::PlanError> {
        if let Some(k) = idx.windows(2).position(|w| w[0] >= w[1]) {
            return Err(crate::plan::PlanError::UnsortedIndices {
                position: k + 1,
                prev: idx[k],
                next: idx[k + 1],
            });
        }
        Ok(Transfer { peer, idx })
    }
}

/// One compiled exchange level: input buffer → output buffer. Fields are
/// private (execution owns the invariants); the read-only accessors below
/// exist for the static plan verifier (xct-verify), which symbolically
/// replays these programs.
#[derive(Debug, Clone)]
pub struct LevelProgram {
    /// Output buffer length.
    out_len: usize,
    /// Outgoing transfers, gathered from the input buffer.
    sends: Vec<Transfer>,
    /// Local carries: `(input position, output position)`.
    keeps: Vec<(u32, u32)>,
    /// Incoming transfers in the reference executor's completion order
    /// (source-ascending for reductions, destination-ascending for
    /// scatters); indices are output positions.
    recvs: Vec<Transfer>,
    /// Base tag (XORed with the caller's slice salt).
    tag: u64,
    /// Traffic class accounted for this level's sends.
    class: TrafficClass,
    /// Span recorded around blocking local levels (`None` for levels
    /// whose spans are managed by begin/finish).
    phase: Option<Phase>,
}

impl LevelProgram {
    /// Assembles a level program from raw tables. The compile paths above
    /// are the production constructors; this one exists so the static
    /// verifier (xct-verify) can build *mutated* programs for its
    /// must-reject corpus and re-homed programs for the work-stealing
    /// proof. Execution metadata not meaningful to analysis defaults:
    /// global traffic class, no managed span.
    pub fn from_parts(
        out_len: usize,
        sends: Vec<Transfer>,
        keeps: Vec<(u32, u32)>,
        recvs: Vec<Transfer>,
        tag: u64,
    ) -> Self {
        LevelProgram {
            out_len,
            sends,
            keeps,
            recvs,
            tag,
            class: TrafficClass::Global,
            phase: None,
        }
    }

    /// Output buffer length.
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Outgoing transfers (indices gather from the input buffer).
    pub fn sends(&self) -> &[Transfer] {
        &self.sends
    }

    /// Local carries as `(input position, output position)` pairs.
    pub fn keeps(&self) -> &[(u32, u32)] {
        &self.keeps
    }

    /// Incoming transfers (indices land in the output buffer), in
    /// completion order.
    pub fn recvs(&self) -> &[Transfer] {
        &self.recvs
    }

    /// Base tag for this level (XORed with the caller's slice salt).
    pub fn tag(&self) -> u64 {
        self.tag
    }
}

/// Everything one rank needs to run the exchange without consulting the
/// plan row tables again.
#[derive(Debug, Clone)]
pub struct RankPlan {
    /// Footprint length (reduce input / scatter output).
    in_len: usize,
    /// Owned-row count (reduce output / scatter input).
    owned_len: usize,
    /// Forward local levels (socket, node); empty for direct plans.
    levels: Vec<LevelProgram>,
    /// Forward global exchange to owners.
    global: LevelProgram,
    /// Scatter global stage (owners → node designees, or → footprints
    /// for direct plans).
    scatter_global: LevelProgram,
    /// Scatter fan-out levels (node, socket); empty for direct plans.
    scatter_levels: Vec<LevelProgram>,
    /// Footprint positions in the final scatter buffer.
    restrict: Vec<u32>,
}

/// Per-rank compiled plans for one decomposition.
#[derive(Debug, Clone)]
pub struct CompiledPlans {
    per_rank: Vec<RankPlan>,
}

/// Position-lookup table for a sorted row list.
fn positions(rows: &[u32]) -> HashMap<u32, u32> {
    rows.iter()
        .enumerate()
        .map(|(i, &r)| (r, i as u32))
        .collect()
}

fn gather_idx(rows: &[u32], pos: &HashMap<u32, u32>) -> Vec<u32> {
    rows.iter()
        // xct-allow(no-panic): plan invariant — compile gathers only rows present in the position map
        .map(|r| *pos.get(r).unwrap_or_else(|| panic!("row {r} not held")))
        .collect()
}

/// Compiles one forward reduction level for `me`: input rows `cur_rows`,
/// output rows `step.post.per_rank[me]`.
fn compile_reduce_level(
    me: usize,
    step: &ReductionStep,
    cur_rows: &[u32],
    tag: u64,
    class: TrafficClass,
    phase: Option<Phase>,
) -> LevelProgram {
    let cur_pos = positions(cur_rows);
    let out_rows = &step.post.per_rank[me];
    let out_pos = positions(out_rows);
    let sends = step.sends[me]
        .iter()
        .map(|(dst, rows)| Transfer::new(*dst, gather_idx(rows, &cur_pos)))
        .collect();
    // Rows designated to me that I already hold carry over locally; the
    // rest of the output starts at zero.
    let keeps = out_rows
        .iter()
        .enumerate()
        .filter_map(|(d, r)| cur_pos.get(r).map(|&s| (s, d as u32)))
        .collect();
    // Source-ascending, matching the reference receive loop.
    let mut recvs = Vec::new();
    for (src, sends) in step.sends.iter().enumerate() {
        for (dst, rows) in sends {
            if *dst == me {
                recvs.push(Transfer::new(src, gather_idx(rows, &out_pos)));
            }
        }
    }
    LevelProgram {
        out_len: out_rows.len(),
        sends,
        keeps,
        recvs,
        tag,
        class,
        phase,
    }
}

/// Compiles the forward global exchange: input rows `cur_rows`, output =
/// the rows `me` owns.
fn compile_global(
    me: usize,
    plan: &DirectPlan,
    ownership: &Ownership,
    cur_rows: &[u32],
    owned_rows: &[u32],
    tag: u64,
) -> LevelProgram {
    let cur_pos = positions(cur_rows);
    let owned_pos = positions(owned_rows);
    let sends = plan.sends[me]
        .iter()
        .map(|(dst, rows)| Transfer::new(*dst, gather_idx(rows, &cur_pos)))
        .collect();
    let keeps = cur_rows
        .iter()
        .enumerate()
        .filter(|(_, r)| ownership.owner[**r as usize] as usize == me)
        .map(|(s, r)| (s as u32, owned_pos[r]))
        .collect();
    let mut recvs = Vec::new();
    for (src, sends) in plan.sends.iter().enumerate() {
        for (dst, rows) in sends {
            if *dst == me {
                recvs.push(Transfer::new(src, gather_idx(rows, &owned_pos)));
            }
        }
    }
    LevelProgram {
        out_len: owned_rows.len(),
        sends,
        keeps,
        recvs,
        tag,
        class: TrafficClass::Global,
        phase: None,
    }
}

/// Compiles the global scatter stage (forward global reversed): input =
/// owned rows, output rows `out_rows` (= post-node footprint, or the
/// whole footprint for direct plans).
fn compile_scatter_global(
    me: usize,
    plan: &DirectPlan,
    ownership: &Ownership,
    owned_rows: &[u32],
    out_rows: &[u32],
    tag: u64,
) -> LevelProgram {
    let owned_pos = positions(owned_rows);
    let out_pos = positions(out_rows);
    // Reversed roles: rows peers sent me in the forward direction, I now
    // return to them — gathered from my owned totals, source-ascending.
    let mut sends = Vec::new();
    for (src, peer_sends) in plan.sends.iter().enumerate() {
        for (dst, rows) in peer_sends {
            if *dst == me {
                sends.push(Transfer::new(src, gather_idx(rows, &owned_pos)));
            }
        }
    }
    let keeps = out_rows
        .iter()
        .enumerate()
        .filter(|(_, r)| ownership.owner[**r as usize] as usize == me)
        .map(|(d, r)| (owned_pos[r], d as u32))
        .collect();
    // What I sent away forward now comes back from the owners,
    // destination-ascending like the reference receive loop.
    let recvs = plan.sends[me]
        .iter()
        .map(|(dst, rows)| Transfer::new(*dst, gather_idx(rows, &out_pos)))
        .collect();
    LevelProgram {
        out_len: out_rows.len(),
        sends,
        keeps,
        recvs,
        tag,
        class: TrafficClass::Global,
        phase: None,
    }
}

/// Compiles one reversed reduction level (scatter fan-out): input rows
/// `cur_rows`, output = `post[me] ∪ sends[me].rows` (disjoint union —
/// rows kept as designee plus rows whose contributors await them back).
fn compile_scatter_level(
    me: usize,
    step: &ReductionStep,
    cur_rows: &[u32],
    tag: u64,
    class: TrafficClass,
) -> (LevelProgram, Vec<u32>) {
    let cur_pos = positions(cur_rows);
    let mut out_rows: Vec<u32> = step.post.per_rank[me].clone();
    for (_, rows) in &step.sends[me] {
        out_rows.extend_from_slice(rows);
    }
    out_rows.sort_unstable();
    out_rows.dedup();
    let out_pos = positions(&out_rows);
    let mut sends = Vec::new();
    for (src, peer_sends) in step.sends.iter().enumerate() {
        for (dst, rows) in peer_sends {
            if *dst == me {
                sends.push(Transfer::new(src, gather_idx(rows, &cur_pos)));
            }
        }
    }
    let keeps = step.post.per_rank[me]
        .iter()
        .filter_map(|r| cur_pos.get(r).map(|&s| (s, out_pos[r])))
        .collect();
    let recvs = step.sends[me]
        .iter()
        .map(|(dst, rows)| Transfer::new(*dst, gather_idx(rows, &out_pos)))
        .collect();
    let program = LevelProgram {
        out_len: out_rows.len(),
        sends,
        keeps,
        recvs,
        tag,
        class,
        phase: None,
    };
    (program, out_rows)
}

impl CompiledPlans {
    /// Compiles a three-level hierarchical plan for every rank.
    pub fn compile_hierarchical(
        footprints: &crate::plan::Footprints,
        ownership: &Ownership,
        plan: &HierarchicalPlan,
    ) -> Self {
        let per_rank = (0..footprints.num_ranks())
            .map(|me| {
                let fp = &footprints.per_rank[me];
                let owned = ownership.rows_of(me);
                let socket = compile_reduce_level(
                    me,
                    &plan.socket,
                    fp,
                    TAG_SOCKET,
                    TrafficClass::Socket,
                    Some(Phase::ReduceSocket),
                );
                let node = compile_reduce_level(
                    me,
                    &plan.node,
                    &plan.socket.post.per_rank[me],
                    TAG_NODE,
                    TrafficClass::Node,
                    Some(Phase::ReduceNode),
                );
                let global = compile_global(
                    me,
                    &plan.global,
                    ownership,
                    &plan.node.post.per_rank[me],
                    &owned,
                    TAG_GLOBAL,
                );
                let scatter_global = compile_scatter_global(
                    me,
                    &plan.global,
                    ownership,
                    &owned,
                    &plan.node.post.per_rank[me],
                    TAG_SCATTER_GLOBAL,
                );
                let (scatter_node, after_node) = compile_scatter_level(
                    me,
                    &plan.node,
                    &plan.node.post.per_rank[me],
                    TAG_SCATTER_NODE,
                    TrafficClass::Node,
                );
                let (scatter_socket, full) = compile_scatter_level(
                    me,
                    &plan.socket,
                    &after_node,
                    TAG_SCATTER_SOCKET,
                    TrafficClass::Socket,
                );
                let full_pos = positions(&full);
                let restrict = gather_idx(fp, &full_pos);
                RankPlan {
                    in_len: fp.len(),
                    owned_len: owned.len(),
                    levels: vec![socket, node],
                    global,
                    scatter_global,
                    scatter_levels: vec![scatter_node, scatter_socket],
                    restrict,
                }
            })
            .collect();
        CompiledPlans { per_rank }
    }

    /// Compiles a direct (single-level) plan for every rank.
    pub fn compile_direct(
        footprints: &crate::plan::Footprints,
        ownership: &Ownership,
        plan: &DirectPlan,
    ) -> Self {
        let per_rank = (0..footprints.num_ranks())
            .map(|me| {
                let fp = &footprints.per_rank[me];
                let owned = ownership.rows_of(me);
                let global = compile_global(me, plan, ownership, fp, &owned, TAG_GLOBAL);
                let scatter_global =
                    compile_scatter_global(me, plan, ownership, &owned, fp, TAG_SCATTER_GLOBAL);
                let restrict = (0..fp.len() as u32).collect();
                RankPlan {
                    in_len: fp.len(),
                    owned_len: owned.len(),
                    levels: Vec::new(),
                    global,
                    scatter_global,
                    scatter_levels: Vec::new(),
                    restrict,
                }
            })
            .collect();
        CompiledPlans { per_rank }
    }

    /// Convenience: hierarchical compilation straight from geometry.
    pub fn build_hierarchical(
        footprints: &crate::plan::Footprints,
        ownership: &Ownership,
        topo: &Topology,
    ) -> Self {
        let plan = HierarchicalPlan::build(footprints, ownership, topo);
        Self::compile_hierarchical(footprints, ownership, &plan)
    }

    /// Assembles compiled plans from per-rank programs built with
    /// [`RankPlan::from_parts`] (corpus / re-homing use).
    pub fn from_ranks(per_rank: Vec<RankPlan>) -> Self {
        CompiledPlans { per_rank }
    }

    /// The compiled program for `rank`.
    pub fn rank(&self, rank: usize) -> &RankPlan {
        &self.per_rank[rank]
    }

    /// Number of ranks compiled.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }
}

/// Reusable f64 buffers for compiled exchanges. One per rank thread;
/// after a warm-up iteration every buffer has reached steady capacity and
/// execution allocates nothing (asserted in `tests/alloc_free.rs`).
#[derive(Debug, Default)]
pub struct ExchangeScratch {
    cur: Vec<f64>,
    nxt: Vec<f64>,
    /// Accumulator buffers for in-flight exchanges (two live at once
    /// under overlap).
    acc_pool: Vec<Vec<f64>>,
    /// Request vectors for in-flight exchanges.
    req_pool: Vec<Vec<RecvRequest>>,
}

impl ExchangeScratch {
    /// Fresh scratch (buffers grow to steady size during warm-up).
    pub fn new() -> Self {
        Self::default()
    }

    fn take_acc(&mut self, len: usize) -> Vec<f64> {
        let mut acc = self.acc_pool.pop().unwrap_or_default();
        acc.clear();
        acc.resize(len, 0.0);
        acc
    }

    fn take_reqs(&mut self) -> Vec<RecvRequest> {
        self.req_pool.pop().unwrap_or_default()
    }
}

/// A global reduction in flight: sends posted, receives pending. Holds
/// the open `ReduceGlobal` span — everything traced until
/// [`RankPlan::global_finish`] nests under the exchange, which is the
/// overlap evidence the telemetry report surfaces.
#[derive(Debug)]
pub struct GlobalInFlight {
    acc: Vec<f64>,
    reqs: Vec<RecvRequest>,
    undo: f32,
    _span: SpanGuard,
}

/// A global scatter in flight (transpose direction), analogous to
/// [`GlobalInFlight`]; holds the open `HaloExchange` span.
#[derive(Debug)]
pub struct ScatterInFlight {
    out1: Vec<f64>,
    reqs: Vec<RecvRequest>,
    undo: f32,
    salt: u64,
    _span: SpanGuard,
}

/// Sends every transfer of `level`, gathering from `cur` and encoding at
/// storage width through the communicator's buffer pool.
fn run_sends<S: Wire>(
    comm: &Communicator,
    level: &LevelProgram,
    cur: &[f64],
    salt: u64,
) -> Result<(), CommError> {
    let _class = comm.meter().scope_class(level.class);
    for t in &level.sends {
        let mut buf = comm.pooled_buf(t.idx.len() * S::BYTES);
        for &i in &t.idx {
            S::from_f64(cur[i as usize]).write_to(&mut buf);
        }
        comm.send(t.peer, level.tag ^ salt, buf)?;
    }
    Ok(())
}

/// Decodes `bytes` at storage width and **accumulates** into `out` at the
/// transfer's positions (reduce semantics), without allocating.
fn accumulate_payload<S: Wire>(bytes: &[u8], idx: &[u32], out: &mut [f64]) {
    assert_eq!(bytes.len(), idx.len() * S::BYTES, "payload/plan mismatch");
    for (k, &i) in idx.iter().enumerate() {
        out[i as usize] += S::read_from(&bytes[k * S::BYTES..]).to_f64();
    }
}

/// Decodes `bytes` and **assigns** into `out` (scatter semantics).
fn assign_payload<S: Wire>(bytes: &[u8], idx: &[u32], out: &mut [f64]) {
    assert_eq!(bytes.len(), idx.len() * S::BYTES, "payload/plan mismatch");
    for (k, &i) in idx.iter().enumerate() {
        out[i as usize] = S::read_from(&bytes[k * S::BYTES..]).to_f64();
    }
}

/// Rounds every element to storage precision (the once-per-level rounding
/// the reference executor applies when materializing `PartialData<S>`).
fn round_level<S: Wire>(vals: &mut [f64]) {
    for v in vals {
        *v = S::from_f64(*v).to_f64();
    }
}

impl RankPlan {
    /// Assembles a rank plan from raw level programs — the corpus /
    /// re-homing counterpart of [`LevelProgram::from_parts`].
    pub fn from_parts(
        in_len: usize,
        owned_len: usize,
        levels: Vec<LevelProgram>,
        global: LevelProgram,
        scatter_global: LevelProgram,
        scatter_levels: Vec<LevelProgram>,
        restrict: Vec<u32>,
    ) -> Self {
        RankPlan {
            in_len,
            owned_len,
            levels,
            global,
            scatter_global,
            scatter_levels,
            restrict,
        }
    }

    /// Footprint length (reduce input / scatter output).
    pub fn in_len(&self) -> usize {
        self.in_len
    }

    /// Owned-row count (reduce output / scatter input).
    pub fn owned_len(&self) -> usize {
        self.owned_len
    }

    /// Forward local levels (socket, node), in execution order; empty for
    /// direct plans. Read-only view for the static verifier.
    pub fn local_levels(&self) -> &[LevelProgram] {
        &self.levels
    }

    /// The forward global exchange program.
    pub fn global_level(&self) -> &LevelProgram {
        &self.global
    }

    /// The scatter global-stage program (transpose direction).
    pub fn scatter_global_level(&self) -> &LevelProgram {
        &self.scatter_global
    }

    /// Scatter fan-out levels (node, socket), in execution order; empty
    /// for direct plans.
    pub fn scatter_local_levels(&self) -> &[LevelProgram] {
        &self.scatter_levels
    }

    /// Footprint positions in the final scatter buffer.
    pub fn restrict_idx(&self) -> &[u32] {
        &self.restrict
    }

    /// Runs the *local* forward levels (socket, node) blocking: quantizes
    /// `vals` (× `factor`) to storage precision and reduces within socket
    /// then node groups, leaving the post-node values in scratch. Must be
    /// followed by [`global_begin`] / [`global_finish`].
    ///
    /// [`global_begin`]: RankPlan::global_begin
    /// [`global_finish`]: RankPlan::global_finish
    pub fn reduce_local<S: Wire>(
        &self,
        comm: &Communicator,
        scratch: &mut ExchangeScratch,
        vals: &[f32],
        factor: f32,
        salt: u64,
    ) -> Result<(), CommError> {
        assert_eq!(vals.len(), self.in_len, "footprint length mismatch");
        scratch.cur.clear();
        scratch
            .cur
            .extend(vals.iter().map(|&v| S::from_f32(v * factor).to_f64()));
        for level in &self.levels {
            let _span = level.phase.map(|p| comm.telemetry().span(p));
            run_sends::<S>(comm, level, &scratch.cur, salt)?;
            scratch.nxt.clear();
            scratch.nxt.resize(level.out_len, 0.0);
            for &(s, d) in &level.keeps {
                scratch.nxt[d as usize] = scratch.cur[s as usize];
            }
            for t in &level.recvs {
                let bytes = comm.recv(t.peer, level.tag ^ salt)?;
                accumulate_payload::<S>(&bytes, &t.idx, &mut scratch.nxt);
                comm.recycle(bytes);
            }
            round_level::<S>(&mut scratch.nxt);
            std::mem::swap(&mut scratch.cur, &mut scratch.nxt);
        }
        Ok(())
    }

    /// Posts the global exchange: sends the post-node partials to owners
    /// and posts irecvs for incoming contributions. Local work for other
    /// slices may run freely until [`global_finish`] — that is the §III-E
    /// overlap window.
    ///
    /// [`global_finish`]: RankPlan::global_finish
    pub fn global_begin<S: Wire>(
        &self,
        comm: &Communicator,
        scratch: &mut ExchangeScratch,
        undo: f32,
        salt: u64,
    ) -> Result<GlobalInFlight, CommError> {
        let span = comm.telemetry().span(Phase::ReduceGlobal);
        let level = &self.global;
        run_sends::<S>(comm, level, &scratch.cur, salt)?;
        let mut acc = scratch.take_acc(level.out_len);
        for &(s, d) in &level.keeps {
            acc[d as usize] = scratch.cur[s as usize];
        }
        let mut reqs = scratch.take_reqs();
        for t in &level.recvs {
            reqs.push(comm.irecv(t.peer, level.tag ^ salt)?);
        }
        Ok(GlobalInFlight {
            acc,
            reqs,
            undo,
            _span: span,
        })
    }

    /// Completes a posted global exchange: waits on the irecvs in plan
    /// order, accumulates in f64, rounds to storage precision, and writes
    /// `total × undo` into `out` (one value per owned row).
    // xct-hot
    pub fn global_finish<S: Wire>(
        &self,
        comm: &Communicator,
        scratch: &mut ExchangeScratch,
        inflight: GlobalInFlight,
        out: &mut [f32],
    ) -> Result<(), CommError> {
        let GlobalInFlight {
            mut acc,
            mut reqs,
            undo,
            _span,
        } = inflight;
        assert_eq!(out.len(), self.global.out_len, "owned length mismatch");
        {
            // The blocking drain gets its own phase: under overlap this
            // is pipeline stall time, not exchange work, and charging it
            // to the enclosing span would misattribute the wait.
            let _wait = comm.telemetry().span(Phase::CommWait);
            for (req, t) in reqs.drain(..).zip(&self.global.recvs) {
                debug_assert_eq!(req.src(), t.peer);
                let bytes = req.wait(comm)?;
                accumulate_payload::<S>(&bytes, &t.idx, &mut acc);
                comm.recycle(bytes);
            }
        }
        for (o, &v) in out.iter_mut().zip(acc.iter()) {
            *o = S::from_f64(v).to_f32() * undo;
        }
        acc.clear();
        scratch.acc_pool.push(acc);
        scratch.req_pool.push(reqs);
        Ok(())
    }

    /// Blocking convenience: full forward reduction (local levels +
    /// global), footprint partials in, owned totals out.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce<S: Wire>(
        &self,
        comm: &Communicator,
        scratch: &mut ExchangeScratch,
        vals: &[f32],
        factor: f32,
        undo: f32,
        salt: u64,
        out: &mut [f32],
    ) -> Result<(), CommError> {
        self.reduce_local::<S>(comm, scratch, vals, factor, salt)?;
        let inflight = self.global_begin::<S>(comm, scratch, undo, salt)?;
        self.global_finish::<S>(comm, scratch, inflight, out)
    }

    /// Posts the global scatter stage (transpose direction): quantizes the
    /// owned totals (× `factor`), sends each peer the rows it contributed
    /// partials for, seeds the local carries, and posts irecvs for rows
    /// owned elsewhere. Local work may run until [`scatter_finish`].
    ///
    /// [`scatter_finish`]: RankPlan::scatter_finish
    pub fn scatter_begin<S: Wire>(
        &self,
        comm: &Communicator,
        scratch: &mut ExchangeScratch,
        owned: &[f32],
        factor: f32,
        undo: f32,
        salt: u64,
    ) -> Result<ScatterInFlight, CommError> {
        assert_eq!(owned.len(), self.owned_len, "owned length mismatch");
        let span = comm.telemetry().span(Phase::HaloExchange);
        let level = &self.scatter_global;
        let mut quant = scratch.take_acc(0);
        quant.extend(owned.iter().map(|&v| S::from_f32(v * factor).to_f64()));
        run_sends::<S>(comm, level, &quant, salt)?;
        let mut out1 = scratch.take_acc(level.out_len);
        for &(s, d) in &level.keeps {
            out1[d as usize] = quant[s as usize];
        }
        quant.clear();
        scratch.acc_pool.push(quant);
        let mut reqs = scratch.take_reqs();
        for t in &level.recvs {
            reqs.push(comm.irecv(t.peer, level.tag ^ salt)?);
        }
        Ok(ScatterInFlight {
            out1,
            reqs,
            undo,
            salt,
            _span: span,
        })
    }

    /// Completes a posted scatter: waits on the global irecvs, fans values
    /// out through the reversed node and socket levels (blocking — these
    /// are the fast local links), restricts to the footprint, and writes
    /// `value × undo` into `out`.
    // xct-hot
    pub fn scatter_finish<S: Wire>(
        &self,
        comm: &Communicator,
        scratch: &mut ExchangeScratch,
        inflight: ScatterInFlight,
        out: &mut [f32],
    ) -> Result<(), CommError> {
        let ScatterInFlight {
            mut out1,
            mut reqs,
            undo,
            salt,
            _span,
        } = inflight;
        assert_eq!(out.len(), self.in_len, "footprint length mismatch");
        {
            // As in `global_finish`: waiting on posted irecvs is stall
            // time and reports under its own `comm.wait` phase.
            let _wait = comm.telemetry().span(Phase::CommWait);
            for (req, t) in reqs.drain(..).zip(&self.scatter_global.recvs) {
                debug_assert_eq!(req.src(), t.peer);
                let bytes = req.wait(comm)?;
                assign_payload::<S>(&bytes, &t.idx, &mut out1);
                comm.recycle(bytes);
            }
        }
        round_level::<S>(&mut out1);
        scratch.cur.clear();
        scratch.cur.extend_from_slice(&out1);
        out1.clear();
        scratch.acc_pool.push(out1);
        scratch.req_pool.push(reqs);
        for level in &self.scatter_levels {
            run_sends::<S>(comm, level, &scratch.cur, salt)?;
            scratch.nxt.clear();
            scratch.nxt.resize(level.out_len, 0.0);
            for &(s, d) in &level.keeps {
                scratch.nxt[d as usize] = scratch.cur[s as usize];
            }
            for t in &level.recvs {
                let bytes = comm.recv(t.peer, level.tag ^ salt)?;
                assign_payload::<S>(&bytes, &t.idx, &mut scratch.nxt);
                comm.recycle(bytes);
            }
            round_level::<S>(&mut scratch.nxt);
            std::mem::swap(&mut scratch.cur, &mut scratch.nxt);
        }
        for (o, &i) in out.iter_mut().zip(&self.restrict) {
            *o = S::from_f64(scratch.cur[i as usize]).to_f32() * undo;
        }
        Ok(())
    }

    /// Blocking convenience: full transpose scatter, owned totals in,
    /// footprint values out.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter<S: Wire>(
        &self,
        comm: &Communicator,
        scratch: &mut ExchangeScratch,
        owned: &[f32],
        factor: f32,
        undo: f32,
        salt: u64,
        out: &mut [f32],
    ) -> Result<(), CommError> {
        let inflight = self.scatter_begin::<S>(comm, scratch, owned, factor, undo, salt)?;
        self.scatter_finish::<S>(comm, scratch, inflight, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{
        execute_direct, execute_hierarchical, scatter_direct, scatter_hierarchical, PartialData,
    };
    use crate::plan::Footprints;
    use crate::runtime::run_ranks;
    use xct_fp16::F16;

    /// Same fixture as the reference executor's tests: 8 ranks on 2×2×2,
    /// 32 rows, deterministic overlapping footprints.
    fn fixture() -> (Footprints, Ownership, Topology) {
        let topo = Topology::new(2, 2, 2);
        let owner: Vec<u32> = (0..32u32).map(|r| r / 4).collect();
        let fp: Vec<Vec<u32>> = (0..8usize)
            .map(|p| {
                (0..32u32)
                    .filter(|&r| (r as usize * 7 + p * 3) % 5 < 3)
                    .collect()
            })
            .collect();
        (Footprints::new(fp), Ownership::new(owner, 8), topo)
    }

    fn partial(p: usize, r: u32) -> f32 {
        ((p as f32 + 1.0) * 0.125) + (r as f32) * 0.01
    }

    fn reduce_matches_reference<S: Wire>() {
        let (fp, own, topo) = fixture();
        let plan = HierarchicalPlan::build(&fp, &own, &topo);
        let compiled = CompiledPlans::compile_hierarchical(&fp, &own, &plan);
        let reference = run_ranks(8, |comm| {
            let rows = fp.per_rank[comm.rank()].clone();
            let vals: Vec<S> = rows
                .iter()
                .map(|&r| S::from_f32(partial(comm.rank(), r)))
                .collect();
            let mine = PartialData::new(rows, vals);
            execute_hierarchical(comm, &plan, &own, &mine).unwrap()
        });
        let fast = run_ranks(8, |comm| {
            let me = comm.rank();
            let rp = compiled.rank(me);
            let vals: Vec<f32> = fp.per_rank[me].iter().map(|&r| partial(me, r)).collect();
            let mut scratch = ExchangeScratch::new();
            let mut out = vec![0.0f32; rp.owned_len()];
            rp.reduce::<S>(comm, &mut scratch, &vals, 1.0, 1.0, 0, &mut out)
                .unwrap();
            out
        });
        for (p, (r, f)) in reference.iter().zip(&fast).enumerate() {
            assert_eq!(r.rows, own.rows_of(p));
            let rvals: Vec<f32> = r.vals.iter().map(|v| v.to_f32()).collect();
            assert_eq!(&rvals, f, "rank {p}: compiled must be bit-identical");
        }
    }

    #[test]
    fn hierarchical_reduce_bit_identical_to_reference_f32() {
        reduce_matches_reference::<f32>();
    }

    #[test]
    fn hierarchical_reduce_bit_identical_to_reference_f64() {
        reduce_matches_reference::<f64>();
    }

    #[test]
    fn hierarchical_reduce_bit_identical_to_reference_f16() {
        reduce_matches_reference::<F16>();
    }

    fn scatter_matches_reference<S: Wire>() {
        let (fp, own, topo) = fixture();
        let plan = HierarchicalPlan::build(&fp, &own, &topo);
        let compiled = CompiledPlans::compile_hierarchical(&fp, &own, &plan);
        // Owned totals: deterministic per-row values.
        let total = |r: u32| 0.5 + (r as f32) * 0.03125;
        let reference = run_ranks(8, |comm| {
            let me = comm.rank();
            let rows = own.rows_of(me);
            let vals: Vec<S> = rows.iter().map(|&r| S::from_f32(total(r))).collect();
            let owned = PartialData::new(rows, vals);
            scatter_hierarchical(comm, &plan, &own, &owned, &fp.per_rank[me]).unwrap()
        });
        let fast = run_ranks(8, |comm| {
            let me = comm.rank();
            let rp = compiled.rank(me);
            let owned: Vec<f32> = own.rows_of(me).iter().map(|&r| total(r)).collect();
            let mut scratch = ExchangeScratch::new();
            let mut out = vec![0.0f32; rp.in_len()];
            rp.scatter::<S>(comm, &mut scratch, &owned, 1.0, 1.0, 0, &mut out)
                .unwrap();
            out
        });
        for (p, (r, f)) in reference.iter().zip(&fast).enumerate() {
            assert_eq!(r.rows, fp.per_rank[p]);
            let rvals: Vec<f32> = r.vals.iter().map(|v| v.to_f32()).collect();
            assert_eq!(&rvals, f, "rank {p}: compiled scatter must match");
        }
    }

    #[test]
    fn hierarchical_scatter_bit_identical_to_reference_f32() {
        scatter_matches_reference::<f32>();
    }

    #[test]
    fn hierarchical_scatter_bit_identical_to_reference_f16() {
        scatter_matches_reference::<F16>();
    }

    #[test]
    fn direct_reduce_and_scatter_match_reference() {
        let (fp, own, _) = fixture();
        let plan = DirectPlan::build(&fp, &own);
        let compiled = CompiledPlans::compile_direct(&fp, &own, &plan);
        let reference = run_ranks(8, |comm| {
            let me = comm.rank();
            let rows = fp.per_rank[me].clone();
            let vals: Vec<f32> = rows.iter().map(|&r| partial(me, r)).collect();
            let mine = PartialData::new(rows, vals);
            let owned = execute_direct(comm, &plan, &own, &mine).unwrap();
            let back = scatter_direct(comm, &plan, &own, &owned, &fp.per_rank[me]).unwrap();
            (owned, back)
        });
        let fast = run_ranks(8, |comm| {
            let me = comm.rank();
            let rp = compiled.rank(me);
            let vals: Vec<f32> = fp.per_rank[me].iter().map(|&r| partial(me, r)).collect();
            let mut scratch = ExchangeScratch::new();
            let mut owned = vec![0.0f32; rp.owned_len()];
            rp.reduce::<f32>(comm, &mut scratch, &vals, 1.0, 1.0, 0, &mut owned)
                .unwrap();
            let mut back = vec![0.0f32; rp.in_len()];
            rp.scatter::<f32>(comm, &mut scratch, &owned, 1.0, 1.0, 0, &mut back)
                .unwrap();
            (owned, back)
        });
        for (p, ((rowned, rback), (fowned, fback))) in reference.iter().zip(&fast).enumerate() {
            assert_eq!(&rowned.vals, fowned, "rank {p} direct reduce");
            assert_eq!(rback.rows, fp.per_rank[p]);
            assert_eq!(&rback.vals, fback, "rank {p} direct scatter");
        }
    }

    #[test]
    fn quantization_factor_round_trips() {
        // factor on the way in, undo on the way out: with S = F16 the
        // scaled exchange must land near the unscaled f32 values.
        let (fp, own, topo) = fixture();
        let compiled = CompiledPlans::build_hierarchical(&fp, &own, &topo);
        let factor = 16.0f32;
        let results = run_ranks(8, |comm| {
            let me = comm.rank();
            let rp = compiled.rank(me);
            let vals: Vec<f32> = fp.per_rank[me].iter().map(|&r| partial(me, r)).collect();
            let mut scratch = ExchangeScratch::new();
            let mut out = vec![0.0f32; rp.owned_len()];
            rp.reduce::<F16>(comm, &mut scratch, &vals, factor, 1.0 / factor, 0, &mut out)
                .unwrap();
            out
        });
        for (p, out) in results.iter().enumerate() {
            for (&r, &v) in own.rows_of(p).iter().zip(out) {
                let expect: f64 = (0..8usize)
                    .filter(|&q| fp.per_rank[q].binary_search(&r).is_ok())
                    .map(|q| f64::from(partial(q, r)))
                    .sum();
                assert!(
                    (f64::from(v) - expect).abs() < 0.02,
                    "rank {p} row {r}: {v} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn overlapped_begin_finish_matches_blocking_across_slices() {
        // Two "slices" in flight at once (the §III-E software pipeline
        // shape) must produce the same owned totals as running each slice
        // synchronously.
        let (fp, own, topo) = fixture();
        let compiled = CompiledPlans::build_hierarchical(&fp, &own, &topo);
        let slice_val = |s: usize, p: usize, r: u32| partial(p, r) + s as f32 * 0.25;
        let (compiled, fp) = (&compiled, &fp);
        let run = |overlap: bool| {
            run_ranks(8, move |comm| {
                let me = comm.rank();
                let rp = compiled.rank(me);
                let mut scratch = ExchangeScratch::new();
                let vals: Vec<Vec<f32>> = (0..3)
                    .map(|s| {
                        fp.per_rank[me]
                            .iter()
                            .map(|&r| slice_val(s, me, r))
                            .collect()
                    })
                    .collect();
                let mut outs = vec![vec![0.0f32; rp.owned_len()]; 3];
                if overlap {
                    let mut pending: Option<(usize, GlobalInFlight)> = None;
                    for (s, slice_vals) in vals.iter().enumerate() {
                        let salt = (s as u64 + 1) << 44;
                        rp.reduce_local::<f32>(comm, &mut scratch, slice_vals, 1.0, salt)
                            .unwrap();
                        let inflight = rp
                            .global_begin::<f32>(comm, &mut scratch, 1.0, salt)
                            .unwrap();
                        if let Some((ps, pf)) = pending.take() {
                            rp.global_finish::<f32>(comm, &mut scratch, pf, &mut outs[ps])
                                .unwrap();
                        }
                        pending = Some((s, inflight));
                    }
                    let (ps, pf) = pending.take().unwrap();
                    rp.global_finish::<f32>(comm, &mut scratch, pf, &mut outs[ps])
                        .unwrap();
                } else {
                    for s in 0..3 {
                        let salt = (s as u64 + 1) << 44;
                        rp.reduce::<f32>(
                            comm,
                            &mut scratch,
                            &vals[s],
                            1.0,
                            1.0,
                            salt,
                            &mut outs[s],
                        )
                        .unwrap();
                    }
                }
                outs
            })
        };
        assert_eq!(run(true), run(false), "overlap must not change results");
    }
}
