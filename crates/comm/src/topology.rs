//! Fat-node machine topology: rank ↔ (node, socket, gpu).

/// The interconnect level a pair of ranks communicates over.
///
/// On Summit (paper §IV-A1): sockets connect 3 GPUs with NVLink
/// (50 GB/s/link), the two sockets of a node share a 64 GB/s X-bus, and
/// nodes talk over InfiniBand. Effective measured bandwidth ratios are
/// ~100 : 15 : 1 (Table IV discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommLevel {
    /// Same GPU (no communication).
    Local,
    /// Same socket: dense NVLink.
    Socket,
    /// Same node, different socket: X-bus.
    Node,
    /// Different nodes: InfiniBand.
    Global,
}

/// A machine of `nodes × sockets_per_node × gpus_per_socket` ranks, with
/// ranks assigned contiguously (gpu fastest, then socket, then node) —
/// matching the adjacent-subdomains-in-one-node placement of Fig 3(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: usize,
    /// CPU sockets per node (Summit: 2).
    pub sockets_per_node: usize,
    /// GPUs per socket (Summit: 3).
    pub gpus_per_socket: usize,
}

impl Topology {
    /// Creates a topology; all dimensions must be nonzero.
    pub fn new(nodes: usize, sockets_per_node: usize, gpus_per_socket: usize) -> Self {
        assert!(
            nodes > 0 && sockets_per_node > 0 && gpus_per_socket > 0,
            "degenerate topology {nodes}x{sockets_per_node}x{gpus_per_socket}"
        );
        Topology {
            nodes,
            sockets_per_node,
            gpus_per_socket,
        }
    }

    /// Summit-like node structure with the given node count.
    pub fn summit(nodes: usize) -> Self {
        Self::new(nodes, 2, 3)
    }

    /// Total ranks (GPUs).
    pub fn size(&self) -> usize {
        self.nodes * self.sockets_per_node * self.gpus_per_socket
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.sockets_per_node * self.gpus_per_socket
    }

    /// Node index of a rank.
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.size());
        rank / self.gpus_per_node()
    }

    /// Global socket index of a rank.
    pub fn socket_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.size());
        rank / self.gpus_per_socket
    }

    /// `(node, socket-in-node, gpu-in-socket)` of a rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        let node = self.node_of(rank);
        let within = rank % self.gpus_per_node();
        (
            node,
            within / self.gpus_per_socket,
            within % self.gpus_per_socket,
        )
    }

    /// The interconnect level between two ranks.
    pub fn level(&self, a: usize, b: usize) -> CommLevel {
        if a == b {
            CommLevel::Local
        } else if self.socket_of(a) == self.socket_of(b) {
            CommLevel::Socket
        } else if self.node_of(a) == self.node_of(b) {
            CommLevel::Node
        } else {
            CommLevel::Global
        }
    }

    /// Ranks grouped by socket, each group sorted ascending.
    pub fn socket_groups(&self) -> Vec<Vec<usize>> {
        (0..self.size() / self.gpus_per_socket)
            .map(|s| (s * self.gpus_per_socket..(s + 1) * self.gpus_per_socket).collect())
            .collect()
    }

    /// Ranks grouped by node, each group sorted ascending.
    pub fn node_groups(&self) -> Vec<Vec<usize>> {
        (0..self.nodes)
            .map(|n| (n * self.gpus_per_node()..(n + 1) * self.gpus_per_node()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_node_structure() {
        let t = Topology::summit(4);
        assert_eq!(t.size(), 24);
        assert_eq!(t.gpus_per_node(), 6);
        assert_eq!(t.coords_of(0), (0, 0, 0));
        assert_eq!(t.coords_of(5), (0, 1, 2));
        assert_eq!(t.coords_of(6), (1, 0, 0));
        assert_eq!(t.coords_of(23), (3, 1, 2));
    }

    #[test]
    fn levels_reflect_hierarchy() {
        let t = Topology::summit(2);
        assert_eq!(t.level(0, 0), CommLevel::Local);
        assert_eq!(t.level(0, 2), CommLevel::Socket);
        assert_eq!(t.level(0, 3), CommLevel::Node);
        assert_eq!(t.level(0, 6), CommLevel::Global);
        assert_eq!(t.level(7, 6), CommLevel::Socket);
    }

    #[test]
    fn groups_partition_ranks() {
        let t = Topology::new(3, 2, 4);
        let sockets = t.socket_groups();
        assert_eq!(sockets.len(), 6);
        let all: Vec<usize> = sockets.into_iter().flatten().collect();
        assert_eq!(all, (0..24).collect::<Vec<_>>());
        let nodes = t.node_groups();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[1], (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn level_is_symmetric() {
        let t = Topology::summit(3);
        for a in 0..t.size() {
            for b in 0..t.size() {
                assert_eq!(t.level(a, b), t.level(b, a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate topology")]
    fn zero_dimension_rejected() {
        Topology::new(0, 2, 3);
    }
}
