//! Per-rank communication metering.
//!
//! Every [`Communicator`](crate::Communicator) carries a [`CommMeter`]
//! that counts messages and bytes per destination peer and per *traffic
//! class* (the level of the hierarchical plan the bytes belong to). The
//! per-peer counts reconstruct the paper's Fig. 6 communication matrices;
//! the per-class counts reconstruct the per-level reduction volumes that
//! the hierarchical scheme's 58–64% inter-node savings are measured from.
//!
//! Metering is always on: the counters are preallocated atomics, so the
//! hot send path does one atomic add per counter and never allocates.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use xct_telemetry::Json;

/// Which stage of the communication schedule bytes belong to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficClass {
    /// Intra-socket reduction/scatter traffic.
    Socket = 0,
    /// Intra-node (cross-socket) reduction/scatter traffic.
    Node = 1,
    /// Global (inter-node, or direct all-to-all) traffic.
    Global = 2,
    /// Control plane: allreduces, barriers.
    Control = 3,
    /// Anything sent outside a classified scope.
    Other = 4,
}

/// Number of traffic classes (array dimension of per-class counters).
pub const TRAFFIC_CLASSES: usize = 5;

impl TrafficClass {
    /// All classes, index order.
    pub const ALL: [TrafficClass; TRAFFIC_CLASSES] = [
        TrafficClass::Socket,
        TrafficClass::Node,
        TrafficClass::Global,
        TrafficClass::Control,
        TrafficClass::Other,
    ];

    /// Stable lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            TrafficClass::Socket => "socket",
            TrafficClass::Node => "node",
            TrafficClass::Global => "global",
            TrafficClass::Control => "control",
            TrafficClass::Other => "other",
        }
    }

    fn from_index(i: usize) -> TrafficClass {
        Self::ALL[i]
    }
}

/// Lock-free per-rank communication counters.
///
/// One meter lives inside each `Communicator`; the send path attributes
/// every payload to the destination peer and to the currently-scoped
/// [`TrafficClass`] (default [`TrafficClass::Other`]).
#[derive(Debug)]
pub struct CommMeter {
    bytes_to: Vec<AtomicU64>,
    msgs_to: Vec<AtomicU64>,
    class_bytes: [AtomicU64; TRAFFIC_CLASSES],
    class_msgs: [AtomicU64; TRAFFIC_CLASSES],
    current_class: AtomicUsize,
}

impl CommMeter {
    /// A zeroed meter for a world of `size` ranks.
    pub fn new(size: usize) -> Self {
        CommMeter {
            bytes_to: (0..size).map(|_| AtomicU64::new(0)).collect(),
            msgs_to: (0..size).map(|_| AtomicU64::new(0)).collect(),
            class_bytes: Default::default(),
            class_msgs: Default::default(),
            current_class: AtomicUsize::new(TrafficClass::Other as usize),
        }
    }

    /// Records one outgoing message of `bytes` payload bytes to `dst`.
    pub fn record(&self, dst: usize, bytes: usize) {
        if let Some(slot) = self.bytes_to.get(dst) {
            slot.fetch_add(bytes as u64, Ordering::Relaxed);
            self.msgs_to[dst].fetch_add(1, Ordering::Relaxed);
        }
        let class = self.current_class.load(Ordering::Relaxed);
        self.class_bytes[class].fetch_add(bytes as u64, Ordering::Relaxed);
        self.class_msgs[class].fetch_add(1, Ordering::Relaxed);
    }

    /// Attributes sends to `class` until the returned guard drops (scopes
    /// nest; the previous class is restored).
    pub fn scope_class(&self, class: TrafficClass) -> ClassScope<'_> {
        let prev = self.current_class.swap(class as usize, Ordering::Relaxed);
        ClassScope { meter: self, prev }
    }

    /// The class sends are currently attributed to.
    pub fn current_class(&self) -> TrafficClass {
        TrafficClass::from_index(self.current_class.load(Ordering::Relaxed))
    }

    /// Copies the counters out.
    pub fn snapshot(&self, rank: usize) -> RankCommStats {
        RankCommStats {
            rank,
            bytes_to: self
                .bytes_to
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            msgs_to: self
                .msgs_to
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            class_bytes: std::array::from_fn(|i| self.class_bytes[i].load(Ordering::Relaxed)),
            class_msgs: std::array::from_fn(|i| self.class_msgs[i].load(Ordering::Relaxed)),
        }
    }
}

/// RAII guard restoring the previous traffic class on drop.
#[derive(Debug)]
#[must_use = "the class scope lasts only while this guard lives"]
pub struct ClassScope<'a> {
    meter: &'a CommMeter,
    prev: usize,
}

impl Drop for ClassScope<'_> {
    fn drop(&mut self) {
        self.meter.current_class.store(self.prev, Ordering::Relaxed);
    }
}

/// One rank's communication totals, copied out of its meter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankCommStats {
    /// The sending rank.
    pub rank: usize,
    /// Payload bytes sent to each destination rank.
    pub bytes_to: Vec<u64>,
    /// Messages sent to each destination rank.
    pub msgs_to: Vec<u64>,
    /// Payload bytes per traffic class (index = `TrafficClass as usize`).
    pub class_bytes: [u64; TRAFFIC_CLASSES],
    /// Messages per traffic class.
    pub class_msgs: [u64; TRAFFIC_CLASSES],
}

impl RankCommStats {
    /// Total payload bytes sent by this rank.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to.iter().sum()
    }

    /// Total messages sent by this rank.
    pub fn total_msgs(&self) -> u64 {
        self.msgs_to.iter().sum()
    }

    /// Bytes sent under one traffic class.
    pub fn class_bytes_of(&self, class: TrafficClass) -> u64 {
        self.class_bytes[class as usize]
    }

    /// Adds another rank-stats record (same rank, e.g. across batches)
    /// into this one.
    pub fn merge(&mut self, other: &RankCommStats) {
        if self.bytes_to.len() < other.bytes_to.len() {
            self.bytes_to.resize(other.bytes_to.len(), 0);
            self.msgs_to.resize(other.msgs_to.len(), 0);
        }
        for (dst, &b) in other.bytes_to.iter().enumerate() {
            self.bytes_to[dst] += b;
        }
        for (dst, &m) in other.msgs_to.iter().enumerate() {
            self.msgs_to[dst] += m;
        }
        for i in 0..TRAFFIC_CLASSES {
            self.class_bytes[i] += other.class_bytes[i];
            self.class_msgs[i] += other.class_msgs[i];
        }
    }
}

/// World-level view assembled from every rank's [`RankCommStats`] — the
/// Fig. 6 analogue.
#[derive(Clone, Debug, Default)]
pub struct CommReport {
    /// Per-rank stats, sorted by rank.
    pub per_rank: Vec<RankCommStats>,
}

impl CommReport {
    /// Builds a report from per-rank snapshots (sorted by rank).
    pub fn new(mut per_rank: Vec<RankCommStats>) -> Self {
        per_rank.sort_by_key(|s| s.rank);
        CommReport { per_rank }
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// `matrix[src][dst]` = payload bytes sent from `src` to `dst`.
    pub fn byte_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.ranks();
        self.per_rank
            .iter()
            .map(|s| {
                let mut row = s.bytes_to.clone();
                row.resize(n, 0);
                row
            })
            .collect()
    }

    /// `matrix[src][dst]` = messages sent from `src` to `dst`.
    pub fn message_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.ranks();
        self.per_rank
            .iter()
            .map(|s| {
                let mut row = s.msgs_to.clone();
                row.resize(n, 0);
                row
            })
            .collect()
    }

    /// Bytes summed over all ranks, per traffic class.
    pub fn level_bytes(&self) -> [u64; TRAFFIC_CLASSES] {
        let mut out = [0u64; TRAFFIC_CLASSES];
        for stats in &self.per_rank {
            for (slot, bytes) in out.iter_mut().zip(stats.class_bytes.iter()) {
                *slot += bytes;
            }
        }
        out
    }

    /// Total payload bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|s| s.total_bytes()).sum()
    }

    /// Renders the byte matrix as a right-aligned table (Fig. 6 style).
    pub fn render_matrix(&self) -> String {
        let matrix = self.byte_matrix();
        let width = matrix
            .iter()
            .flatten()
            .map(|v| v.to_string().len())
            .max()
            .unwrap_or(1)
            .max(3);
        let mut out = String::new();
        out.push_str(&format!("{:>6} ", "src\\dst"));
        for dst in 0..self.ranks() {
            out.push_str(&format!("{:>width$} ", dst, width = width));
        }
        out.push('\n');
        for (src, row) in matrix.iter().enumerate() {
            out.push_str(&format!("{:>6} ", src));
            for &bytes in row {
                out.push_str(&format!("{:>width$} ", bytes, width = width));
            }
            out.push('\n');
        }
        out
    }

    /// The report as a JSON fragment: per-rank matrices plus per-level
    /// volumes.
    pub fn to_json(&self) -> Json {
        let level_bytes = self.level_bytes();
        Json::object(vec![
            ("ranks", Json::from(self.ranks())),
            (
                "byte_matrix",
                Json::from(
                    self.byte_matrix()
                        .into_iter()
                        .map(|row| Json::from(row.into_iter().map(Json::from).collect::<Vec<_>>()))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "message_matrix",
                Json::from(
                    self.message_matrix()
                        .into_iter()
                        .map(|row| Json::from(row.into_iter().map(Json::from).collect::<Vec<_>>()))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "level_bytes",
                Json::object(
                    TrafficClass::ALL
                        .iter()
                        .map(|c| (c.as_str(), Json::from(level_bytes[*c as usize])))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("total_bytes", Json::from(self.total_bytes())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_attributes_bytes_to_peers_and_classes() {
        let meter = CommMeter::new(3);
        meter.record(1, 100);
        {
            let _socket = meter.scope_class(TrafficClass::Socket);
            meter.record(2, 40);
            {
                let _node = meter.scope_class(TrafficClass::Node);
                meter.record(0, 8);
            }
            assert_eq!(meter.current_class(), TrafficClass::Socket);
            meter.record(2, 2);
        }
        assert_eq!(meter.current_class(), TrafficClass::Other);
        let stats = meter.snapshot(7);
        assert_eq!(stats.rank, 7);
        assert_eq!(stats.bytes_to, vec![8, 100, 42]);
        assert_eq!(stats.msgs_to, vec![1, 1, 2]);
        assert_eq!(stats.class_bytes_of(TrafficClass::Other), 100);
        assert_eq!(stats.class_bytes_of(TrafficClass::Socket), 42);
        assert_eq!(stats.class_bytes_of(TrafficClass::Node), 8);
        assert_eq!(stats.total_bytes(), 150);
        assert_eq!(stats.total_msgs(), 4);
    }

    #[test]
    fn report_builds_matrices_and_levels() {
        let mut a = RankCommStats {
            rank: 0,
            bytes_to: vec![0, 10],
            msgs_to: vec![0, 1],
            ..Default::default()
        };
        a.class_bytes[TrafficClass::Global as usize] = 10;
        let mut b = RankCommStats {
            rank: 1,
            bytes_to: vec![20, 0],
            msgs_to: vec![2, 0],
            ..Default::default()
        };
        b.class_bytes[TrafficClass::Socket as usize] = 20;
        let report = CommReport::new(vec![b, a]);
        assert_eq!(report.byte_matrix(), vec![vec![0, 10], vec![20, 0]]);
        assert_eq!(report.message_matrix(), vec![vec![0, 1], vec![2, 0]]);
        let levels = report.level_bytes();
        assert_eq!(levels[TrafficClass::Socket as usize], 20);
        assert_eq!(levels[TrafficClass::Global as usize], 10);
        assert_eq!(report.total_bytes(), 30);
        let json = report.to_json().to_string();
        let back = Json::parse(&json).unwrap();
        assert_eq!(back.get("ranks").unwrap().as_f64(), Some(2.0));
        assert!(back.get("level_bytes").unwrap().get("socket").is_some());
    }

    #[test]
    fn rank_stats_merge_accumulates() {
        let mut a = RankCommStats {
            rank: 0,
            bytes_to: vec![1, 2],
            msgs_to: vec![1, 1],
            ..Default::default()
        };
        let mut b = RankCommStats {
            rank: 0,
            bytes_to: vec![10, 20, 30],
            msgs_to: vec![1, 2, 3],
            ..Default::default()
        };
        b.class_bytes[0] = 60;
        a.merge(&b);
        assert_eq!(a.bytes_to, vec![11, 22, 30]);
        assert_eq!(a.msgs_to, vec![2, 3, 3]);
        assert_eq!(a.class_bytes[0], 60);
    }
}
