//! Hierarchical communications of Petascale XCT (paper §III-D) over an
//! in-process message-passing runtime.
//!
//! After a partial (back)projection, every process holds partial sums for
//! sinogram rows it does not own; those partials must be communicated and
//! reduced at the owners. The paper's contribution is to reduce partials
//! *locally first* — among the 3 GPUs of a CPU socket (NVLink), then the 6
//! GPUs of a node (X-bus) — so that only already-reduced data crosses the
//! slow inter-node network, cutting inter-node volume by ~58–64%.
//!
//! * [`Topology`] — rank ↔ (node, socket, gpu) mapping of a fat-node
//!   machine (Summit: 2 sockets × 3 GPUs),
//! * [`Communicator`] / [`run_ranks`] — the MPI substitute: one thread per
//!   rank, tagged point-to-point messages, pure-function splits
//!   (`MPI_Comm_split` analog),
//! * [`DirectPlan`] / [`HierarchicalPlan`] — communication schedules with
//!   exact per-pair and per-level volume accounting (Figs 6, 11;
//!   Table IV),
//! * [`execute_direct`] / [`execute_hierarchical`] — reference executor:
//!   run a plan on real data across ranks, in any storage precision,
//! * [`CompiledPlans`] — plans compiled to per-peer index tables for
//!   allocation-free execution, with split `begin`/`finish` global
//!   exchanges so communication overlaps computation (§III-E).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tag and index arithmetic throughout this crate narrows integers; every
// such cast must either be lossless by construction (row/position ids
// inhabit u32 per the `Ownership` contract) or carry a local `allow`
// with the bound spelled out.
#![warn(clippy::cast_possible_truncation)]

mod metrics;
mod plan;
mod runtime;
mod topology;
mod wire;

pub use metrics::{
    ClassScope, CommMeter, CommReport, RankCommStats, TrafficClass, TRAFFIC_CLASSES,
};
pub use plan::{DirectPlan, Footprints, HierarchicalPlan, Ownership, PlanError, ReductionStep};
pub use runtime::{
    run_ranks, run_ranks_chaos, run_ranks_chaos_traced, run_ranks_traced, run_ranks_traced_wired,
    run_ranks_with_timeout, Backoff, ChaosMode, ChaosSchedule, CommError, Communicator,
    RecvRequest, SubCommunicator, WireModel, REPLY_TAG_SALT,
};
pub use topology::{CommLevel, Topology};
pub use wire::Wire;

mod exec;
pub use exec::{
    execute_direct, execute_hierarchical, scatter_direct, scatter_hierarchical, PartialData,
};

mod compiled;
pub use compiled::{
    CompiledPlans, ExchangeScratch, GlobalInFlight, LevelProgram, RankPlan, ScatterInFlight,
    Transfer, TAG_STEAL,
};
