//! In-process message-passing runtime: the MPI substitute.
//!
//! One OS thread plays one MPI rank. Point-to-point messages are tagged
//! and matched like MPI envelopes `(source, tag)`; sends are buffered and
//! non-blocking (the paper's `MPI_Issend` usage pattern — post sends, do
//! local work, then complete receives — maps onto this directly).
//! `split_by` mirrors `MPI_Comm_split` for colors that are pure functions
//! of rank, which is all the hierarchical scheme needs (socket and node
//! membership are static).

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metrics::{CommMeter, RankCommStats, TrafficClass};
use crate::wire::Wire;
use xct_telemetry::{Phase, Telemetry};

/// Communication failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Destination or source rank does not exist.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// World size.
        size: usize,
    },
    /// No matching message arrived within the timeout.
    Timeout {
        /// Expected source.
        src: usize,
        /// Expected tag.
        tag: u64,
    },
    /// The peer's thread has exited (its channel endpoint is gone).
    Disconnected,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range (world size {size})")
            }
            CommError::Timeout { src, tag } => {
                write!(f, "timed out waiting for message from rank {src} tag {tag}")
            }
            CommError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

struct Envelope {
    src: usize,
    tag: u64,
    payload: Vec<u8>,
}

struct Mailbox {
    rx: Receiver<Envelope>,
    stash: HashMap<(usize, u64), VecDeque<Vec<u8>>>,
}

/// One rank's endpoint in the world communicator.
pub struct Communicator {
    rank: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    mailbox: Mutex<Mailbox>,
    timeout: Duration,
    meter: CommMeter,
    telemetry: Telemetry,
}

impl Communicator {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// This rank's communication meter (always on; see [`CommMeter`]).
    pub fn meter(&self) -> &CommMeter {
        &self.meter
    }

    /// Snapshot of this rank's communication totals.
    pub fn comm_stats(&self) -> RankCommStats {
        self.meter.snapshot(self.rank)
    }

    /// The tracing handle attached to this rank (disabled unless the world
    /// was started with [`run_ranks_traced`]). Forked per rank, so solver
    /// code running on this rank thread can clone it into an
    /// `ExecContext` and share one nesting stack with the comm layer.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Sends raw bytes to `dst` with `tag`. Non-blocking (buffered).
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) -> Result<(), CommError> {
        let sender = self.senders.get(dst).ok_or(CommError::RankOutOfRange {
            rank: dst,
            size: self.size(),
        })?;
        self.meter.record(dst, payload.len());
        sender
            .send(Envelope {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| CommError::Disconnected)
    }

    /// Sends a typed slice (encoded at the storage-scalar width, so half
    /// precision literally moves half the bytes of single).
    pub fn send_vals<S: Wire>(&self, dst: usize, tag: u64, vals: &[S]) -> Result<(), CommError> {
        self.send(dst, tag, S::encode_slice(vals))
    }

    /// Receives the next message matching `(src, tag)`, buffering
    /// non-matching arrivals. Messages from one sender with one tag are
    /// delivered in send order.
    pub fn recv(&self, src: usize, tag: u64) -> Result<Vec<u8>, CommError> {
        if src >= self.size() {
            return Err(CommError::RankOutOfRange {
                rank: src,
                size: self.size(),
            });
        }
        let mut mb = self.mailbox.lock().expect("mailbox mutex poisoned");
        if let Some(queue) = mb.stash.get_mut(&(src, tag)) {
            if let Some(payload) = queue.pop_front() {
                return Ok(payload);
            }
        }
        loop {
            match mb.rx.recv_timeout(self.timeout) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        return Ok(env.payload);
                    }
                    mb.stash
                        .entry((env.src, env.tag))
                        .or_default()
                        .push_back(env.payload);
                }
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { src, tag }),
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Disconnected),
            }
        }
    }

    /// Typed receive.
    pub fn recv_vals<S: Wire>(&self, src: usize, tag: u64) -> Result<Vec<S>, CommError> {
        Ok(S::decode_slice(&self.recv(src, tag)?))
    }

    /// Splits the world by a *pure* color function of rank (the
    /// `MPI_Comm_split` analog): ranks with equal color form a
    /// subcommunicator ordered by global rank. Requires no coordination
    /// because every rank can evaluate every other rank's color.
    pub fn split_by(&self, color: impl Fn(usize) -> usize) -> SubCommunicator<'_> {
        let mine = color(self.rank);
        let members: Vec<usize> = (0..self.size()).filter(|&r| color(r) == mine).collect();
        let local_rank = members
            .iter()
            .position(|&r| r == self.rank)
            .expect("own rank always in own color group");
        SubCommunicator {
            world: self,
            members,
            local_rank,
            color: mine,
        }
    }

    /// Simple dissemination barrier over the world communicator.
    pub fn barrier(&self, tag: u64) -> Result<(), CommError> {
        let _class = self.meter.scope_class(TrafficClass::Control);
        let _span = self.telemetry.span(Phase::Allreduce);
        // log2 rounds of pairwise token exchange.
        let n = self.size();
        let mut dist = 1;
        while dist < n {
            let to = (self.rank + dist) % n;
            let from = (self.rank + n - dist % n) % n;
            self.send(to, tag ^ (dist as u64) << 32, Vec::new())?;
            self.recv(from, tag ^ (dist as u64) << 32)?;
            dist *= 2;
        }
        Ok(())
    }

    /// Max-allreduce of one f64 (for the global max-norm that the
    /// adaptive normalization factor of §III-C1 is derived from — every
    /// rank must scale by the *same* factor or partial sums combine
    /// incoherently).
    pub fn allreduce_max(&self, tag: u64, value: f64) -> Result<f64, CommError> {
        let _class = self.meter.scope_class(TrafficClass::Control);
        let _span = self.telemetry.span(Phase::Allreduce);
        if self.rank == 0 {
            let mut best = value;
            for src in 1..self.size() {
                let bytes = self.recv(src, tag)?;
                best = best.max(f64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")));
            }
            for dst in 1..self.size() {
                self.send(dst, tag.wrapping_add(1), best.to_le_bytes().to_vec())?;
            }
            Ok(best)
        } else {
            self.send(0, tag, value.to_le_bytes().to_vec())?;
            let bytes = self.recv(0, tag.wrapping_add(1))?;
            Ok(f64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")))
        }
    }

    /// Sum-allreduce of one f64 (for CG inner products across ranks).
    pub fn allreduce_sum(&self, tag: u64, value: f64) -> Result<f64, CommError> {
        let _class = self.meter.scope_class(TrafficClass::Control);
        let _span = self.telemetry.span(Phase::Allreduce);
        // Gather at rank 0, then broadcast: O(P) messages, fine at our scale.
        if self.rank == 0 {
            let mut total = value;
            for src in 1..self.size() {
                let bytes = self.recv(src, tag)?;
                total += f64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
            }
            for dst in 1..self.size() {
                self.send(dst, tag.wrapping_add(1), total.to_le_bytes().to_vec())?;
            }
            Ok(total)
        } else {
            self.send(0, tag, value.to_le_bytes().to_vec())?;
            let bytes = self.recv(0, tag.wrapping_add(1))?;
            Ok(f64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")))
        }
    }
}

/// A subgroup of ranks created by [`Communicator::split_by`]; local ranks
/// are positions in the sorted member list.
pub struct SubCommunicator<'a> {
    world: &'a Communicator,
    members: Vec<usize>,
    local_rank: usize,
    color: usize,
}

impl SubCommunicator<'_> {
    /// Rank within the subgroup.
    pub fn local_rank(&self) -> usize {
        self.local_rank
    }

    /// Subgroup size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The color this subgroup was formed with.
    pub fn color(&self) -> usize {
        self.color
    }

    /// Global ranks of the members, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Global rank of a local rank.
    pub fn global(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Sends to a *local* rank. Tags are salted with the color so
    /// same-tag traffic in different subgroups cannot collide.
    pub fn send_vals<S: Wire>(
        &self,
        local_dst: usize,
        tag: u64,
        vals: &[S],
    ) -> Result<(), CommError> {
        self.world
            .send_vals(self.members[local_dst], self.salt(tag), vals)
    }

    /// Receives from a *local* rank.
    pub fn recv_vals<S: Wire>(&self, local_src: usize, tag: u64) -> Result<Vec<S>, CommError> {
        self.world
            .recv_vals(self.members[local_src], self.salt(tag))
    }

    fn salt(&self, tag: u64) -> u64 {
        tag ^ ((self.color as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) << 8)
    }
}

/// Spawns `n` rank threads, runs `body` on each with its communicator, and
/// returns the results in rank order. Panics in any rank propagate.
///
/// ```
/// use xct_comm::run_ranks;
///
/// // Every rank sends its rank id to rank 0, which sums them.
/// let results = run_ranks(4, |comm| {
///     if comm.rank() == 0 {
///         (1..comm.size())
///             .map(|src| comm.recv_vals::<f32>(src, 1).unwrap()[0])
///             .sum::<f32>()
///     } else {
///         comm.send_vals::<f32>(0, 1, &[comm.rank() as f32]).unwrap();
///         0.0
///     }
/// });
/// assert_eq!(results[0], 6.0);
/// ```
pub fn run_ranks<T: Send>(n: usize, body: impl Fn(&Communicator) -> T + Sync) -> Vec<T> {
    run_ranks_with_timeout(n, Duration::from_secs(30), body)
}

/// [`run_ranks`] with an explicit receive timeout (shorter for failure
/// tests).
pub fn run_ranks_with_timeout<T: Send>(
    n: usize,
    timeout: Duration,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    run_ranks_inner(n, timeout, &Telemetry::disabled(), body)
}

/// [`run_ranks`] with tracing: each rank's communicator carries a fork of
/// `telemetry` on track = rank, so spans recorded by all rank threads land
/// in one shared collector with correct per-rank nesting.
pub fn run_ranks_traced<T: Send>(
    n: usize,
    telemetry: &Telemetry,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    run_ranks_inner(n, Duration::from_secs(30), telemetry, body)
}

fn run_ranks_inner<T: Send>(
    n: usize,
    timeout: Duration,
    telemetry: &Telemetry,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    assert!(n > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    let comms: Vec<Communicator> = receivers
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| Communicator {
            rank,
            senders: Arc::clone(&senders),
            mailbox: Mutex::new(Mailbox {
                rx,
                stash: HashMap::new(),
            }),
            timeout,
            meter: CommMeter::new(n),
            telemetry: telemetry.fork(rank as u32),
        })
        .collect();
    // The world keeps no extra sender clones alive: when a rank thread
    // finishes, peers waiting on it observe Disconnected... only when all
    // senders drop; sender clones live in every rank's Arc, so
    // disconnection is only observable after the scope ends. Timeouts
    // cover premature-exit deadlocks instead.
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| scope.spawn(|| body(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_fp16::F16;

    #[test]
    fn ring_pass() {
        let results = run_ranks(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_vals::<f32>(next, 7, &[comm.rank() as f32])
                .unwrap();
            let got = comm.recv_vals::<f32>(prev, 7).unwrap();
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn tag_matching_reorders() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, 1, &[1.0]).unwrap();
                comm.send_vals::<f32>(1, 2, &[2.0]).unwrap();
                0.0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = comm.recv_vals::<f32>(0, 2).unwrap();
                let a = comm.recv_vals::<f32>(0, 1).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn same_tag_preserves_order() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..5 {
                    comm.send_vals::<f32>(1, 9, &[i as f32]).unwrap();
                }
                Vec::new()
            } else {
                (0..5)
                    .map(|_| comm.recv_vals::<f32>(0, 9).unwrap()[0])
                    .collect()
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn half_precision_on_the_wire() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<F16>(1, 3, &[F16::from_f32(0.1), F16::MAX])
                    .unwrap();
                0
            } else {
                let v = comm.recv_vals::<F16>(0, 3).unwrap();
                assert_eq!(v[0].to_bits(), F16::from_f32(0.1).to_bits());
                assert_eq!(v[1].to_bits(), F16::MAX.to_bits());
                v.len()
            }
        });
        assert_eq!(results[1], 2);
    }

    #[test]
    fn split_by_socket_colors() {
        let results = run_ranks(6, |comm| {
            let socket = comm.split_by(|r| r / 3);
            // Exchange within socket: everyone sends rank to local 0.
            if socket.local_rank() != 0 {
                socket
                    .send_vals::<f32>(0, 5, &[comm.rank() as f32])
                    .unwrap();
                -1.0
            } else {
                let mut sum = comm.rank() as f32;
                for src in 1..socket.size() {
                    sum += socket.recv_vals::<f32>(src, 5).unwrap()[0];
                }
                sum
            }
        });
        assert_eq!(results[0], 3.0); // 0+1+2
        assert_eq!(results[3], 12.0); // 3+4+5
    }

    #[test]
    fn same_tag_in_different_subgroups_does_not_collide() {
        // Global-rank senders use the same tag in two colors; salting
        // keeps them separate even though the underlying world is shared.
        let results = run_ranks(4, |comm| {
            let sub = comm.split_by(|r| r % 2);
            if sub.local_rank() == 0 {
                sub.send_vals::<f32>(1, 42, &[comm.rank() as f32 + 100.0])
                    .unwrap();
                0.0
            } else {
                sub.recv_vals::<f32>(0, 42).unwrap()[0]
            }
        });
        assert_eq!(results[2], 100.0);
        assert_eq!(results[3], 101.0);
    }

    #[test]
    fn barrier_completes() {
        let results = run_ranks(5, |comm| comm.barrier(77).is_ok());
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let results = run_ranks(6, |comm| {
            comm.allreduce_sum(11, comm.rank() as f64).unwrap()
        });
        assert!(results.iter().all(|&v| v == 15.0));
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let results = run_ranks(2, |comm| comm.send(5, 0, Vec::new()));
        assert_eq!(
            results[0],
            Err(CommError::RankOutOfRange { rank: 5, size: 2 })
        );
    }

    #[test]
    fn recv_timeout_fires() {
        let results = run_ranks_with_timeout(2, Duration::from_millis(50), |comm| {
            if comm.rank() == 1 {
                comm.recv(0, 99).err()
            } else {
                None
            }
        });
        assert_eq!(results[1], Some(CommError::Timeout { src: 0, tag: 99 }));
    }
}
