//! In-process message-passing runtime: the MPI substitute.
//!
//! One OS thread plays one MPI rank. Point-to-point messages are tagged
//! and matched like MPI envelopes `(source, tag)`; sends are buffered and
//! non-blocking, and receives may be posted ahead of time with
//! [`Communicator::irecv`] and completed later (the paper's
//! `MPI_Issend` / `MPI_Irecv` usage pattern — post sends and receives, do
//! local work, then complete — maps onto this directly). `split_by`
//! mirrors `MPI_Comm_split` for colors that are pure functions of rank,
//! which is all the hierarchical scheme needs (socket and node membership
//! are static).
//!
//! Transport is a per-rank mailbox (`Mutex<VecDeque>` + `Condvar`) rather
//! than an `mpsc` channel so that wire buffers can be *pooled*: a payload
//! `Vec<u8>` travels from the sender's pool through the mailbox to the
//! receiver, which hands it back via [`Communicator::recycle`]. Because
//! the scatter schedule is the exact transpose of the reduce schedule,
//! every rank receives the same multiset of message sizes it sends over a
//! full solver iteration, so the pools reach a steady state after warm-up
//! and the exchange hot path stops allocating (see `tests/alloc_free.rs`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{CommMeter, RankCommStats, TrafficClass};
use crate::wire::Wire;
use xct_telemetry::{MetricId, Phase, Telemetry};

/// Tag bit reserved for internal reply traffic (allreduce responses).
/// Application tags must keep this bit clear; the collectives salt their
/// root-to-leaf replies with it so a collective at tag `t` can never
/// cross-match application traffic at `t + 1`. Public so the static tag
/// verifier (xct-verify) models the reply namespace with the real bit.
pub const REPLY_TAG_SALT: u64 = 1 << 63;

/// Upper bound on pooled wire buffers kept per rank (a backstop against
/// pathological send/receive imbalance, far above any plan's needs).
const POOL_MAX: usize = 1024;

/// Sentinel send stamp meaning "the sender's telemetry was disabled":
/// the receiver records no match edge for such messages.
const UNSTAMPED: u64 = u64::MAX;

/// Communication failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Destination or source rank does not exist.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// World size.
        size: usize,
    },
    /// No matching message arrived within the timeout.
    Timeout {
        /// Expected source.
        src: usize,
        /// Expected tag.
        tag: u64,
    },
    /// The peer's thread has exited (its channel endpoint is gone).
    Disconnected,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range (world size {size})")
            }
            CommError::Timeout { src, tag } => {
                write!(f, "timed out waiting for message from rank {src} tag {tag}")
            }
            CommError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

/// Simulated wire time for inter-node messages.
///
/// The in-process transport is a memcpy, so without help every "network"
/// is infinitely fast and communication/computation overlap has nothing
/// to hide. A `WireModel` restores the paper's resource separation: an
/// inter-node message is *sent* instantly (the sender never blocks, like
/// a buffered `MPI_Issend`) but cannot be *matched* by the receiver until
/// its wire time — `latency + len / bytes_per_sec` — has elapsed, exactly
/// like bytes still in flight on InfiniBand. Intra-node messages
/// (NVLink/X-bus in the paper) are delivered immediately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Per-message latency.
    pub latency: Duration,
    /// Sustained bandwidth in bytes per second (`f64::INFINITY` for a
    /// pure-latency model).
    pub bytes_per_sec: f64,
    /// Ranks per node: ranks with equal `rank / ranks_per_node` share a
    /// node and exchange messages with zero wire time. `0` makes every
    /// pair inter-node.
    pub ranks_per_node: usize,
}

impl WireModel {
    /// Simulated time on the wire for a message of `len` bytes from
    /// `src` to `dst` — `latency + len / bytes_per_sec` — or `None` for
    /// undelayed (intra-node) delivery. This is both the matchability
    /// delay the runtime enforces and the wire weight stamped onto the
    /// causal match edge ([`xct_telemetry::EdgeRecord`]).
    pub fn wire_time(&self, src: usize, dst: usize, len: usize) -> Option<Duration> {
        if self.ranks_per_node > 0 && src / self.ranks_per_node == dst / self.ranks_per_node {
            return None;
        }
        let mut wire = self.latency;
        if self.bytes_per_sec.is_finite() && self.bytes_per_sec > 0.0 {
            wire += Duration::from_secs_f64(len as f64 / self.bytes_per_sec);
        }
        Some(wire)
    }
}

/// SplitMix64 finalizer: the deterministic hash behind every chaos
/// decision, so a schedule is a pure function of `(seed, src, dst, seq)`
/// and never of thread timing.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How a [`ChaosSchedule`] perturbs message matchability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Every message draws a small seed-derived matchability delay
    /// (roughly half draw none), permuting the order in which concurrent
    /// messages become matchable.
    Jitter,
    /// Exactly one message — the `nth` message sent from `src` to `dst` —
    /// is held back by the schedule's full delay while everything else
    /// flows untouched (the delay-one-message DPOR-lite mode: races that
    /// need one specific reordering are found by enumerating targets).
    DelayOne {
        /// Sender of the delayed message.
        src: usize,
        /// Receiver of the delayed message.
        dst: usize,
        /// Which message in `(src, dst)` send order is delayed (0-based).
        nth: u64,
    },
}

/// Deterministic schedule perturbation for race hunting.
///
/// The runtime already has a mechanism for "sent but not yet matchable":
/// [`WireModel`] stamps envelopes with a `ready_at` instant. A
/// `ChaosSchedule` drives the same mechanism from a seed instead of a
/// bandwidth model: each message's artificial delay is a pure function of
/// `(seed, src, dst, per-pair sequence number)`, so a failing
/// interleaving is reproducible from the seed alone — the schedule
/// explorer in xct-verify reports that seed as the repro. Delays change
/// *when* a message may be matched, never its content or per-key FIFO
/// order, so correct programs must produce identical results under every
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// The seed every delay is derived from.
    pub seed: u64,
    /// Upper bound on the artificial matchability delay.
    pub max_delay: Duration,
    /// Upper bound on the per-rank start stagger (skews rank step
    /// interleavings the way unequal kernel times do on a real machine).
    pub stagger: Duration,
    /// Delay policy.
    pub mode: ChaosMode,
}

impl ChaosSchedule {
    /// Jitter schedule: small random delays on every message.
    pub fn jitter(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            max_delay: Duration::from_micros(1500),
            stagger: Duration::from_millis(2),
            mode: ChaosMode::Jitter,
        }
    }

    /// Delay-one schedule: the seed picks one `(src, dst, nth)` target in
    /// an `n`-rank world and holds only that message back, long enough to
    /// drain everything else first.
    pub fn delay_one(seed: u64, n: usize) -> Self {
        // Bounded: `% n` keeps both ranks inside the (usize-sized) world.
        #[allow(clippy::cast_possible_truncation)]
        let src = (mix64(seed ^ 0x51) % n as u64) as usize;
        #[allow(clippy::cast_possible_truncation)]
        let mut dst = (mix64(seed ^ 0xD5) % n as u64) as usize;
        if dst == src {
            dst = (dst + 1) % n;
        }
        ChaosSchedule {
            seed,
            max_delay: Duration::from_millis(25),
            stagger: Duration::from_millis(2),
            mode: ChaosMode::DelayOne {
                src,
                dst,
                nth: mix64(seed ^ 0x9E) % 4,
            },
        }
    }

    /// The artificial delay for the `seq`-th message from `src` to `dst`,
    /// if any.
    fn delay_for(&self, src: usize, dst: usize, seq: u64) -> Option<Duration> {
        match self.mode {
            ChaosMode::Jitter => {
                let h = mix64(
                    self.seed
                        ^ (src as u64).wrapping_mul(0x0100_0000_01b3)
                        ^ (dst as u64).wrapping_mul(0x1_0001)
                        ^ seq.wrapping_mul(0x5851_f42d_4c95_7f2d),
                );
                if h & 1 == 0 {
                    return None;
                }
                let span = u64::try_from(self.max_delay.as_micros()).unwrap_or(u64::MAX);
                (span > 0).then(|| Duration::from_micros((h >> 32) % span))
            }
            ChaosMode::DelayOne {
                src: s,
                dst: d,
                nth,
            } => (src == s && dst == d && seq == nth).then_some(self.max_delay),
        }
    }

    /// Start stagger for `rank`.
    fn stagger_for(&self, rank: usize) -> Duration {
        let span = u64::try_from(self.stagger.as_micros()).unwrap_or(u64::MAX);
        if span == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(mix64(self.seed ^ 0xC0FFEE ^ (rank as u64) << 17) % span)
    }
}

/// Per-communicator chaos state: the schedule plus per-destination send
/// sequence numbers (atomics only so `Communicator` stays `Sync`; each
/// rank sends from its own thread).
struct ChaosState {
    schedule: ChaosSchedule,
    seq: Vec<AtomicU64>,
}

struct Envelope {
    src: usize,
    tag: u64,
    /// When a [`WireModel`] or chaos schedule is in force: the earliest
    /// instant the receiver may match this message.
    ready_at: Option<Instant>,
    /// Sender's telemetry clock at send time ([`UNSTAMPED`] when the
    /// sender records nothing).
    sent_ns: u64,
    /// Simulated wire cost in nanoseconds. Only [`WireModel`] time
    /// counts — chaos delays perturb matchability without representing
    /// real network cost, so they never appear on causal edges.
    wire_ns: u64,
    payload: Vec<u8>,
}

/// One stashed message for a `(src, tag)` key.
struct Stashed {
    /// Wire/chaos deadline carried over from the envelope.
    ready_at: Option<Instant>,
    sent_ns: u64,
    wire_ns: u64,
    payload: Vec<u8>,
}

impl Stashed {
    fn from_envelope(env: Envelope) -> Stashed {
        Stashed {
            ready_at: env.ready_at,
            sent_ns: env.sent_ns,
            wire_ns: env.wire_ns,
            payload: env.payload,
        }
    }
}

/// Stashed messages for one `(src, tag)` key, FIFO so send order is
/// preserved.
type StashQueue = VecDeque<Stashed>;

/// A matched message plus the send-side metadata the receiver needs to
/// record the causal match edge.
struct Delivery {
    payload: Vec<u8>,
    sent_ns: u64,
    wire_ns: u64,
}

#[derive(Default)]
struct MailboxInner {
    /// Messages delivered but not yet matched, in arrival order.
    arrivals: VecDeque<Envelope>,
    /// Messages already inspected while waiting for a different envelope,
    /// filed by `(src, tag)` with their wire deadline; FIFO per key
    /// preserves send order.
    stash: HashMap<(usize, u64), StashQueue>,
    /// Running count of stashed messages across all keys, so the
    /// mailbox-depth metric is O(1) to read.
    stashed: usize,
}

impl MailboxInner {
    /// Messages delivered to this mailbox but not yet matched.
    fn depth(&self) -> usize {
        self.arrivals.len() + self.stashed
    }
}

/// Outcome of one matching attempt against the mailbox.
enum MatchOutcome {
    /// A matching message, ready now.
    Ready(Delivery),
    /// The next matching message exists but its simulated wire time has
    /// not elapsed; retry at the contained instant.
    NotUntil(Instant),
    /// No matching message has arrived.
    Absent,
}

#[derive(Default)]
struct Mailbox {
    inner: Mutex<MailboxInner>,
    ready: Condvar,
}

/// One rank's endpoint in the world communicator.
pub struct Communicator {
    rank: usize,
    mailboxes: Arc<Vec<Mailbox>>,
    /// Free-listed wire buffers (see module docs on pooling).
    pool: Mutex<Vec<Vec<u8>>>,
    timeout: Duration,
    wire: Option<WireModel>,
    chaos: Option<ChaosState>,
    meter: CommMeter,
    telemetry: Telemetry,
}

impl Communicator {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.mailboxes.len()
    }

    /// This rank's communication meter (always on; see [`CommMeter`]).
    pub fn meter(&self) -> &CommMeter {
        &self.meter
    }

    /// Snapshot of this rank's communication totals.
    pub fn comm_stats(&self) -> RankCommStats {
        self.meter.snapshot(self.rank)
    }

    /// The tracing handle attached to this rank (disabled unless the world
    /// was started with [`run_ranks_traced`]). Forked per rank, so solver
    /// code running on this rank thread can clone it into an
    /// `ExecContext` and share one nesting stack with the comm layer.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Takes a wire buffer from this rank's pool (empty, with at least
    /// `cap` bytes of capacity when the pool can supply it). Buffers
    /// received from peers should be returned with [`recycle`] so the
    /// steady-state exchange paths stop allocating.
    ///
    /// [`recycle`]: Communicator::recycle
    pub fn pooled_buf(&self, cap: usize) -> Vec<u8> {
        // xct-allow(no-panic): lock poisoning means a sibling rank thread already panicked; propagate
        let mut pool = self.pool.lock().expect("pool mutex poisoned");
        // Best fit: the smallest pooled buffer that already holds `cap`.
        let mut best: Option<(usize, usize)> = None;
        for (i, buf) in pool.iter().enumerate() {
            let c = buf.capacity();
            if c >= cap && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((i, c));
            }
        }
        match best {
            Some((i, _)) => pool.swap_remove(i),
            None => Vec::with_capacity(cap),
        }
    }

    /// Returns a wire buffer (typically one obtained from [`recv`]) to
    /// this rank's pool for reuse by later sends.
    ///
    /// [`recv`]: Communicator::recv
    pub fn recycle(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        // xct-allow(no-panic): lock poisoning means a sibling rank thread already panicked; propagate
        let mut pool = self.pool.lock().expect("pool mutex poisoned");
        if pool.len() < POOL_MAX {
            pool.push(buf);
        }
    }

    /// Sends raw bytes to `dst` with `tag`. Non-blocking (buffered).
    pub fn send(&self, dst: usize, tag: u64, payload: Vec<u8>) -> Result<(), CommError> {
        let mailbox = self.mailboxes.get(dst).ok_or(CommError::RankOutOfRange {
            rank: dst,
            size: self.size(),
        })?;
        self.meter.record(dst, payload.len());
        self.telemetry.metric_inc(MetricId::CommSendMsgs);
        self.telemetry
            .metric_add(MetricId::CommSendBytes, payload.len() as u64);
        let wire_time = self
            .wire
            .and_then(|w| w.wire_time(self.rank, dst, payload.len()));
        // xct-allow(wall-clock): the in-process wire model delays real threads — genuine wall time, not telemetry
        let wire_at = wire_time.map(|d| Instant::now() + d);
        let wire_ns = wire_time.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        let sent_ns = self.telemetry.now_ns().unwrap_or(UNSTAMPED);
        let chaos_at = self.chaos.as_ref().and_then(|c| {
            let seq = c.seq[dst].fetch_add(1, Ordering::Relaxed);
            c.schedule
                .delay_for(self.rank, dst, seq)
                // xct-allow(wall-clock): the in-process wire model delays real threads — genuine wall time, not telemetry
                .map(|d| Instant::now() + d)
        });
        if chaos_at.is_some() {
            self.telemetry.metric_inc(MetricId::CommChaosDelays);
        }
        let ready_at = match (wire_at, chaos_at) {
            (Some(w), Some(c)) => Some(w.max(c)),
            (at, None) | (None, at) => at,
        };
        // xct-allow(no-panic): lock poisoning means a sibling rank thread already panicked; propagate
        let mut inner = mailbox.inner.lock().expect("mailbox mutex poisoned");
        inner.arrivals.push_back(Envelope {
            src: self.rank,
            tag,
            ready_at,
            sent_ns,
            wire_ns,
            payload,
        });
        drop(inner);
        mailbox.ready.notify_all();
        Ok(())
    }

    /// Sends a typed slice (encoded at the storage-scalar width, so half
    /// precision literally moves half the bytes of single). The wire
    /// buffer comes from the pool.
    pub fn send_vals<S: Wire>(&self, dst: usize, tag: u64, vals: &[S]) -> Result<(), CommError> {
        let mut buf = self.pooled_buf(vals.len() * S::BYTES);
        for &v in vals {
            v.write_to(&mut buf);
        }
        self.send(dst, tag, buf)
    }

    /// Pops the next message matching `(src, tag)` from the stash or the
    /// arrival queue, filing non-matching arrivals. The stash is checked
    /// first: stashed messages are older than anything still queued. A
    /// matching message still "on the wire" (see [`WireModel`]) is not
    /// delivered; the caller learns when to retry.
    fn take_match(inner: &mut MailboxInner, src: usize, tag: u64) -> MatchOutcome {
        if let Some(queue) = inner.stash.get_mut(&(src, tag)) {
            match queue.front() {
                Some(&Stashed {
                    ready_at: Some(at), ..
                // xct-allow(wall-clock): the in-process wire model delays real threads — genuine wall time, not telemetry
                }) if at > Instant::now() => {
                    return MatchOutcome::NotUntil(at);
                }
                Some(_) => {
                    // xct-allow(no-panic): infallible — the match above proved the front exists
                    let stashed = queue.pop_front().expect("front checked above");
                    inner.stashed -= 1;
                    return MatchOutcome::Ready(Delivery {
                        payload: stashed.payload,
                        sent_ns: stashed.sent_ns,
                        wire_ns: stashed.wire_ns,
                    });
                }
                None => {}
            }
        }
        // Reaching here, the stash holds nothing for `(src, tag)`, so
        // filing a matching-but-in-flight arrival keeps per-key FIFO.
        while let Some(env) = inner.arrivals.pop_front() {
            let matches = env.src == src && env.tag == tag;
            if matches {
                match env.ready_at {
                    // xct-allow(wall-clock): the in-process wire model delays real threads — genuine wall time, not telemetry
                    Some(at) if at > Instant::now() => {
                        inner
                            .stash
                            .entry((src, tag))
                            .or_default()
                            .push_back(Stashed::from_envelope(env));
                        inner.stashed += 1;
                        return MatchOutcome::NotUntil(at);
                    }
                    _ => {
                        return MatchOutcome::Ready(Delivery {
                            payload: env.payload,
                            sent_ns: env.sent_ns,
                            wire_ns: env.wire_ns,
                        })
                    }
                }
            }
            inner
                .stash
                .entry((env.src, env.tag))
                .or_default()
                .push_back(Stashed::from_envelope(env));
            inner.stashed += 1;
        }
        MatchOutcome::Absent
    }

    /// Records the causal match edge for a completed delivery (when
    /// both sides trace) and unwraps the payload. Must be called with
    /// the mailbox lock already released: the edge goes to the
    /// telemetry collector, whose lock never nests inside a mailbox
    /// lock.
    fn finish_match(&self, src: usize, delivery: Delivery, tag: u64) -> Vec<u8> {
        self.telemetry.metric_inc(MetricId::CommRecvMsgs);
        self.telemetry
            .metric_add(MetricId::CommRecvBytes, delivery.payload.len() as u64);
        if delivery.sent_ns != UNSTAMPED {
            self.telemetry.edge(
                u32::try_from(src).unwrap_or(u32::MAX),
                tag,
                u64::try_from(delivery.payload.len()).unwrap_or(u64::MAX),
                delivery.sent_ns,
                delivery.wire_ns,
            );
        }
        delivery.payload
    }

    /// Receives the next message matching `(src, tag)`, buffering
    /// non-matching arrivals. Messages from one sender with one tag are
    /// delivered in send order.
    pub fn recv(&self, src: usize, tag: u64) -> Result<Vec<u8>, CommError> {
        if src >= self.size() {
            return Err(CommError::RankOutOfRange {
                rank: src,
                size: self.size(),
            });
        }
        // xct-allow(wall-clock): recv timeout deadline bounds a real blocking wait
        let deadline = Instant::now() + self.timeout;
        let mailbox = &self.mailboxes[self.rank];
        // xct-allow(no-panic): lock poisoning means a sibling rank thread already panicked; propagate
        let mut inner = mailbox.inner.lock().expect("mailbox mutex poisoned");
        loop {
            let wake_at = match Self::take_match(&mut inner, src, tag) {
                MatchOutcome::Ready(delivery) => {
                    self.note_mailbox_depth(inner.depth());
                    drop(inner);
                    return Ok(self.finish_match(src, delivery, tag));
                }
                // Nobody notifies when a wire deadline passes, so bound
                // the sleep by it and re-poll.
                MatchOutcome::NotUntil(at) => at.min(deadline),
                MatchOutcome::Absent => deadline,
            };
            self.note_mailbox_depth(inner.depth());
            // xct-allow(wall-clock): the in-process wire model delays real threads — genuine wall time, not telemetry
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { src, tag });
            }
            self.telemetry.metric_inc(MetricId::CommWaitParks);
            let (guard, _timed_out) = mailbox
                .ready
                .wait_timeout(inner, wake_at.saturating_duration_since(now))
                // xct-allow(no-panic): lock poisoning means a sibling rank thread already panicked; propagate
                .expect("mailbox mutex poisoned");
            inner = guard;
        }
    }

    /// Publishes this rank's mailbox depth (arrivals + stash) as a
    /// gauge. Called at receive attempts with the mailbox lock held; the
    /// gauge store is a relaxed atomic, and the flight ring it also
    /// touches is a leaf lock, so no lock-order cycle is possible.
    fn note_mailbox_depth(&self, depth: usize) {
        self.telemetry
            .gauge_set(MetricId::CommMailboxDepth, depth as f64);
    }

    /// Non-blocking receive: returns the next matching message if one has
    /// already arrived, `None` otherwise.
    pub fn try_recv(&self, src: usize, tag: u64) -> Result<Option<Vec<u8>>, CommError> {
        if src >= self.size() {
            return Err(CommError::RankOutOfRange {
                rank: src,
                size: self.size(),
            });
        }
        let outcome = {
            let mut inner = self.mailboxes[self.rank]
                .inner
                .lock()
                // xct-allow(no-panic): lock poisoning means a sibling rank thread already panicked; propagate
                .expect("mailbox mutex poisoned");
            let outcome = Self::take_match(&mut inner, src, tag);
            self.note_mailbox_depth(inner.depth());
            outcome
        };
        Ok(match outcome {
            MatchOutcome::Ready(delivery) => Some(self.finish_match(src, delivery, tag)),
            MatchOutcome::NotUntil(_) | MatchOutcome::Absent => None,
        })
    }

    /// Posts a nonblocking receive for `(src, tag)` — the `MPI_Irecv`
    /// analog. A message that has already arrived is captured immediately;
    /// otherwise the returned [`RecvRequest`] completes it later via
    /// [`RecvRequest::test`] / [`RecvRequest::wait`], letting local work
    /// run while the peer's send is still in flight.
    pub fn irecv(&self, src: usize, tag: u64) -> Result<RecvRequest, CommError> {
        let done = self.try_recv(src, tag)?;
        Ok(RecvRequest { src, tag, done })
    }

    /// Typed receive. The wire buffer is recycled into the pool.
    pub fn recv_vals<S: Wire>(&self, src: usize, tag: u64) -> Result<Vec<S>, CommError> {
        let bytes = self.recv(src, tag)?;
        let vals = S::decode_slice(&bytes);
        self.recycle(bytes);
        Ok(vals)
    }

    /// Splits the world by a *pure* color function of rank (the
    /// `MPI_Comm_split` analog): ranks with equal color form a
    /// subcommunicator ordered by global rank. Requires no coordination
    /// because every rank can evaluate every other rank's color.
    pub fn split_by(&self, color: impl Fn(usize) -> usize) -> SubCommunicator<'_> {
        let mine = color(self.rank);
        let members: Vec<usize> = (0..self.size()).filter(|&r| color(r) == mine).collect();
        let local_rank = members
            .iter()
            .position(|&r| r == self.rank)
            // xct-allow(no-panic): infallible — self.rank satisfies its own color predicate
            .expect("own rank always in own color group");
        SubCommunicator {
            world: self,
            members,
            local_rank,
            color: mine,
        }
    }

    /// Simple dissemination barrier over the world communicator.
    pub fn barrier(&self, tag: u64) -> Result<(), CommError> {
        let _class = self.meter.scope_class(TrafficClass::Control);
        let _span = self.telemetry.span(Phase::Allreduce);
        // ceil(log2(n)) rounds of pairwise token exchange; works at any
        // world size, power of two or not.
        let n = self.size();
        let mut dist = 1;
        while dist < n {
            let to = (self.rank + dist) % n;
            let from = (self.rank + n - dist) % n;
            self.send(to, tag ^ (dist as u64) << 32, Vec::new())?;
            let token = self.recv(from, tag ^ (dist as u64) << 32)?;
            self.recycle(token);
            dist *= 2;
        }
        Ok(())
    }

    /// Sends one `f64` through the pool (collective internals).
    fn send_scalar(&self, dst: usize, tag: u64, value: f64) -> Result<(), CommError> {
        let mut buf = self.pooled_buf(8);
        buf.extend_from_slice(&value.to_le_bytes());
        self.send(dst, tag, buf)
    }

    /// Receives one `f64`, recycling the wire buffer.
    fn recv_scalar(&self, src: usize, tag: u64) -> Result<f64, CommError> {
        let bytes = self.recv(src, tag)?;
        // xct-allow(no-panic): infallible — scalar protocol messages are exactly 8 bytes, sliced above
        let value = f64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        self.recycle(bytes);
        Ok(value)
    }

    /// Max-allreduce of one f64 (for the global max-norm that the
    /// adaptive normalization factor of §III-C1 is derived from — every
    /// rank must scale by the *same* factor or partial sums combine
    /// incoherently). The reply leg runs in the reserved reply-tag
    /// namespace, so back-to-back collectives on adjacent tags (and
    /// application traffic at `tag + 1`) cannot cross-match.
    pub fn allreduce_max(&self, tag: u64, value: f64) -> Result<f64, CommError> {
        self.gather_bcast(tag, value, f64::max)
    }

    /// Sum-allreduce of one f64 (for CG inner products across ranks).
    pub fn allreduce_sum(&self, tag: u64, value: f64) -> Result<f64, CommError> {
        self.gather_bcast(tag, value, |a, b| a + b)
    }

    /// Gather-at-root-then-broadcast scalar collective: O(P) messages,
    /// fine at our scale.
    fn gather_bcast(
        &self,
        tag: u64,
        value: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> Result<f64, CommError> {
        let _class = self.meter.scope_class(TrafficClass::Control);
        let _span = self.telemetry.span(Phase::Allreduce);
        let reply = tag ^ REPLY_TAG_SALT;
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size() {
                acc = combine(acc, self.recv_scalar(src, tag)?);
            }
            for dst in 1..self.size() {
                self.send_scalar(dst, reply, acc)?;
            }
            Ok(acc)
        } else {
            self.send_scalar(0, tag, value)?;
            self.recv_scalar(0, reply)
        }
    }
}

/// A nonblocking receive posted with [`Communicator::irecv`] — the
/// `MPI_Irecv` request handle analog. Plain data (no borrow of the
/// communicator), so requests can be stored in reusable scratch vectors.
#[derive(Debug)]
pub struct RecvRequest {
    src: usize,
    tag: u64,
    done: Option<Vec<u8>>,
}

impl RecvRequest {
    /// The source rank this request matches.
    pub fn src(&self) -> usize {
        self.src
    }

    /// The tag this request matches.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Progresses the request without blocking; returns whether the
    /// message has arrived (`MPI_Test`).
    // xct-hot
    pub fn test(&mut self, comm: &Communicator) -> Result<bool, CommError> {
        if self.done.is_none() {
            self.done = comm.try_recv(self.src, self.tag)?;
        }
        Ok(self.done.is_some())
    }

    /// Polls [`test`](Self::test) under a bounded backoff instead of a
    /// busy spin, performing **exactly** `max_polls` tests. Returns
    /// whether the message arrived within those attempts. Prefer
    /// [`wait`](Self::wait) when blocking is fine — the runtime's
    /// condvar wakeups are cheap; this exists for call sites that must
    /// interleave polling with other progress and would otherwise spin
    /// on `test` at full speed. Call sites that poll *repeatedly* (a
    /// drain loop re-testing until completion) should own a [`Backoff`]
    /// and drive `test` themselves — re-entering this method restarts
    /// the ladder from yields every time, which is exactly the
    /// escalation reset the ladder exists to avoid.
    ///
    /// Each unsuccessful poll is counted on the rank's telemetry —
    /// `comm.wait.spins` for the poll itself, plus `comm.wait.yields` or
    /// `comm.wait.parks` for how it backed off — so the backoff constants
    /// are tunable against measurement instead of blind.
    pub fn test_backoff(&mut self, comm: &Communicator, max_polls: u32) -> Result<bool, CommError> {
        let mut backoff = Backoff::new();
        for _ in 0..max_polls {
            if self.test(comm)? {
                return Ok(true);
            }
            backoff.wait(comm);
        }
        Ok(false)
    }

    /// Blocks until the message arrives and returns its payload
    /// (`MPI_Wait`). Consumes the request.
    // xct-hot
    pub fn wait(mut self, comm: &Communicator) -> Result<Vec<u8>, CommError> {
        match self.done.take() {
            Some(payload) => Ok(payload),
            None => comm.recv(self.src, self.tag),
        }
    }
}

/// An escalating wait ladder for polling loops, with the poll count and
/// pause carried *across* calls: the first [`Self::YIELD_POLLS`] failed
/// polls only yield the CPU, later ones sleep with exponentially growing
/// pauses capped at [`Self::PAUSE_CAP`].
///
/// The whole point is persistence. A drain loop that calls a
/// self-contained helper like [`RecvRequest::test_backoff`] inside its
/// `while` restarts the ladder at "yield" on every iteration, so a long
/// wait spins hot forever and never frees the core the compute pipeline
/// needs. Owning one `Backoff` for the loop's lifetime makes the wait
/// actually escalate to capped parks:
///
/// ```ignore
/// let mut backoff = Backoff::new();
/// while !req.test(comm)? {
///     backoff.wait(comm);
/// }
/// ```
///
/// Every failed poll is metered (`comm.wait.spins` plus
/// `comm.wait.yields`/`comm.wait.parks` for how it backed off), so the
/// spin/park split is visible in telemetry and the constants stay
/// tunable against measurement.
#[derive(Debug, Clone)]
pub struct Backoff {
    polls: u32,
    pause: Duration,
}

impl Backoff {
    /// Failed polls that merely yield before the ladder starts parking.
    pub const YIELD_POLLS: u32 = 16;
    /// Longest single park.
    pub const PAUSE_CAP: Duration = Duration::from_millis(1);
    /// First park length; doubles per park up to [`Self::PAUSE_CAP`].
    pub const PAUSE_START: Duration = Duration::from_micros(10);

    /// A ladder at the start (yield) rung.
    pub fn new() -> Self {
        Backoff {
            polls: 0,
            pause: Self::PAUSE_START,
        }
    }

    /// Failed polls recorded since construction or the last reset.
    pub fn polls(&self) -> u32 {
        self.polls
    }

    /// Restarts the ladder — for loops that wait on a *sequence* of
    /// events and want escalation per event, reset after each success.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Records one failed poll and backs off one rung: yield while young,
    /// then park with doubling (capped) pauses. Meters the poll on the
    /// rank's telemetry.
    // xct-hot
    pub fn wait(&mut self, comm: &Communicator) {
        comm.telemetry.metric_inc(MetricId::CommWaitSpins);
        if self.polls < Self::YIELD_POLLS {
            comm.telemetry.metric_inc(MetricId::CommWaitYields);
            std::thread::yield_now();
        } else {
            comm.telemetry.metric_inc(MetricId::CommWaitParks);
            std::thread::sleep(self.pause);
            self.pause = (self.pause * 2).min(Self::PAUSE_CAP);
        }
        self.polls = self.polls.saturating_add(1);
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

/// A subgroup of ranks created by [`Communicator::split_by`]; local ranks
/// are positions in the sorted member list.
pub struct SubCommunicator<'a> {
    world: &'a Communicator,
    members: Vec<usize>,
    local_rank: usize,
    color: usize,
}

impl SubCommunicator<'_> {
    /// Rank within the subgroup.
    pub fn local_rank(&self) -> usize {
        self.local_rank
    }

    /// Subgroup size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The color this subgroup was formed with.
    pub fn color(&self) -> usize {
        self.color
    }

    /// Global ranks of the members, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Global rank of a local rank.
    pub fn global(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Sends to a *local* rank. Tags are salted with the color so
    /// same-tag traffic in different subgroups cannot collide.
    pub fn send_vals<S: Wire>(
        &self,
        local_dst: usize,
        tag: u64,
        vals: &[S],
    ) -> Result<(), CommError> {
        self.world
            .send_vals(self.members[local_dst], self.salt(tag), vals)
    }

    /// Receives from a *local* rank.
    pub fn recv_vals<S: Wire>(&self, local_src: usize, tag: u64) -> Result<Vec<S>, CommError> {
        self.world
            .recv_vals(self.members[local_src], self.salt(tag))
    }

    fn salt(&self, tag: u64) -> u64 {
        tag ^ (((self.color as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) << 8) & !REPLY_TAG_SALT)
    }
}

/// Spawns `n` rank threads, runs `body` on each with its communicator, and
/// returns the results in rank order. Panics in any rank propagate.
///
/// ```
/// use xct_comm::run_ranks;
///
/// // Every rank sends its rank id to rank 0, which sums them.
/// let results = run_ranks(4, |comm| {
///     if comm.rank() == 0 {
///         (1..comm.size())
///             .map(|src| comm.recv_vals::<f32>(src, 1).unwrap()[0])
///             .sum::<f32>()
///     } else {
///         comm.send_vals::<f32>(0, 1, &[comm.rank() as f32]).unwrap();
///         0.0
///     }
/// });
/// assert_eq!(results[0], 6.0);
/// ```
pub fn run_ranks<T: Send>(n: usize, body: impl Fn(&Communicator) -> T + Sync) -> Vec<T> {
    run_ranks_with_timeout(n, Duration::from_secs(30), body)
}

/// [`run_ranks`] with an explicit receive timeout (shorter for failure
/// tests).
pub fn run_ranks_with_timeout<T: Send>(
    n: usize,
    timeout: Duration,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    run_ranks_inner(n, timeout, &Telemetry::disabled(), None, None, body)
}

/// [`run_ranks`] under a deterministic [`ChaosSchedule`]: rank starts are
/// staggered and message matchability is delayed, both as pure functions
/// of the schedule's seed. Correct programs must produce results
/// identical to an unperturbed run; a divergence or error is a race, and
/// the seed is its repro. This is the execution hook the xct-verify
/// schedule explorer drives.
pub fn run_ranks_chaos<T: Send>(
    n: usize,
    timeout: Duration,
    chaos: ChaosSchedule,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    run_ranks_inner(n, timeout, &Telemetry::disabled(), None, Some(chaos), body)
}

/// [`run_ranks_chaos`] with tracing: the chaos schedule perturbs
/// delivery exactly as in an untraced run while every rank records
/// spans, metrics, and flight events into `telemetry`'s collector. The
/// schedule explorer uses this to re-run a failing seed and capture a
/// post-mortem flight dump of it.
pub fn run_ranks_chaos_traced<T: Send>(
    n: usize,
    timeout: Duration,
    chaos: ChaosSchedule,
    telemetry: &Telemetry,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    run_ranks_inner(n, timeout, telemetry, None, Some(chaos), body)
}

/// [`run_ranks`] with tracing: each rank's communicator carries a fork of
/// `telemetry` on track = rank, so spans recorded by all rank threads land
/// in one shared collector with correct per-rank nesting.
pub fn run_ranks_traced<T: Send>(
    n: usize,
    telemetry: &Telemetry,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    run_ranks_inner(n, Duration::from_secs(30), telemetry, None, None, body)
}

/// [`run_ranks_traced`] plus a [`WireModel`]: inter-node messages are held
/// back for their simulated wire time before the receiver can match them,
/// making communication-bound configurations measurable in-process.
pub fn run_ranks_traced_wired<T: Send>(
    n: usize,
    telemetry: &Telemetry,
    wire: Option<WireModel>,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    run_ranks_inner(n, Duration::from_secs(30), telemetry, wire, None, body)
}

fn run_ranks_inner<T: Send>(
    n: usize,
    timeout: Duration,
    telemetry: &Telemetry,
    wire: Option<WireModel>,
    chaos: Option<ChaosSchedule>,
    body: impl Fn(&Communicator) -> T + Sync,
) -> Vec<T> {
    assert!(n > 0, "need at least one rank");
    let mailboxes: Arc<Vec<Mailbox>> = Arc::new((0..n).map(|_| Mailbox::default()).collect());
    let comms: Vec<Communicator> = (0..n)
        .map(|rank| Communicator {
            rank,
            mailboxes: Arc::clone(&mailboxes),
            pool: Mutex::new(Vec::new()),
            timeout,
            wire,
            chaos: chaos.map(|schedule| ChaosState {
                schedule,
                seq: (0..n).map(|_| AtomicU64::new(0)).collect(),
            }),
            meter: CommMeter::new(n),
            // xct-allow(no-panic): infallible — rank counts are tiny (bounded by the topology)
            telemetry: telemetry.fork(u32::try_from(rank).expect("rank fits u32")),
        })
        .collect();
    // Mailboxes outlive every rank thread (the Arc is shared), so a
    // premature peer exit is never observable as a disconnect; receive
    // timeouts cover premature-exit deadlocks instead.
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                scope.spawn(|| {
                    if let Some(c) = &chaos {
                        std::thread::sleep(c.stagger_for(comm.rank));
                    }
                    body(comm)
                })
            })
            .collect();
        handles
            .into_iter()
            // xct-allow(no-panic): test-cluster harness — a panicked rank must propagate to the driver
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_fp16::F16;

    #[test]
    fn wire_model_holds_inter_node_messages_back() {
        let wire = WireModel {
            latency: Duration::from_millis(40),
            bytes_per_sec: f64::INFINITY,
            ranks_per_node: 1, // every pair is inter-node
        };
        let stamps = run_ranks_traced_wired(2, &Telemetry::disabled(), Some(wire), |comm| {
            if comm.rank() == 0 {
                let sent_at = Instant::now();
                comm.send_vals::<f32>(1, 5, &[42.0]).unwrap();
                (sent_at, sent_at)
            } else {
                let got = comm.recv_vals::<f32>(0, 5).unwrap();
                assert_eq!(got, vec![42.0]);
                (Instant::now(), Instant::now())
            }
        });
        let in_flight = stamps[1].0.duration_since(stamps[0].0);
        assert!(
            in_flight >= Duration::from_millis(35),
            "wire time not enforced: delivered after {in_flight:?}"
        );
    }

    #[test]
    fn wire_model_leaves_intra_node_messages_alone() {
        // Same world, but both ranks share a node: payloads must flow
        // untouched and `try_recv` must see them without a wire wait.
        let wire = WireModel {
            latency: Duration::from_secs(3600),
            bytes_per_sec: f64::INFINITY,
            ranks_per_node: 2,
        };
        let results = run_ranks_traced_wired(2, &Telemetry::disabled(), Some(wire), |comm| {
            let peer = 1 - comm.rank();
            comm.send_vals::<f32>(peer, 9, &[comm.rank() as f32])
                .unwrap();
            comm.recv_vals::<f32>(peer, 9).unwrap()[0]
        });
        assert_eq!(results, vec![1.0, 0.0]);
    }

    #[test]
    fn matches_record_causal_edges_with_wire_cost() {
        let wire = WireModel {
            latency: Duration::from_millis(5),
            bytes_per_sec: f64::INFINITY,
            ranks_per_node: 1, // every pair is inter-node
        };
        let telemetry = Telemetry::enabled();
        run_ranks_traced_wired(2, &telemetry, Some(wire), |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, 5, &[1.0, 2.0]).unwrap();
            } else {
                let bytes = comm.recv(0, 5).unwrap();
                comm.recycle(bytes);
            }
        });
        let snap = telemetry.snapshot();
        let edge = snap
            .edges
            .iter()
            .find(|e| e.tag == 5)
            .expect("application match edge recorded");
        assert_eq!(edge.src_track, 0);
        assert_eq!(edge.dst_track, 1);
        assert_eq!(edge.bytes, 8);
        assert_eq!(edge.wire_ns, 5_000_000);
        assert!(
            edge.matched_ns >= edge.sent_ns + edge.wire_ns,
            "match at {} cannot precede send at {} plus wire {}",
            edge.matched_ns,
            edge.sent_ns,
            edge.wire_ns
        );
    }

    #[test]
    fn intra_node_edges_carry_zero_wire_cost() {
        let wire = WireModel {
            latency: Duration::from_secs(3600),
            bytes_per_sec: f64::INFINITY,
            ranks_per_node: 2, // both ranks share a node
        };
        let telemetry = Telemetry::enabled();
        run_ranks_traced_wired(2, &telemetry, Some(wire), |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, 11, &[3.0]).unwrap();
            } else {
                let bytes = comm.recv(0, 11).unwrap();
                comm.recycle(bytes);
            }
        });
        let snap = telemetry.snapshot();
        let edge = snap.edges.iter().find(|e| e.tag == 11).expect("edge");
        assert_eq!(edge.wire_ns, 0);
    }

    #[test]
    fn irecv_test_respects_wire_time() {
        let wire = WireModel {
            latency: Duration::from_millis(30),
            bytes_per_sec: f64::INFINITY,
            ranks_per_node: 1,
        };
        run_ranks_traced_wired(2, &Telemetry::disabled(), Some(wire), |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, 3, &[7.0]).unwrap();
            } else {
                let mut req = comm.irecv(0, 3).unwrap();
                // test() reports not-done while the message is on the
                // wire (almost always observable with a 30 ms wire, but
                // not asserted — the scheduler may stall this thread);
                // poll under a loop-owned backoff so the wait escalates
                // to parks instead of restarting at yields each round,
                // then wait() must block the remaining wire time out.
                let mut backoff = Backoff::new();
                while !req.test(comm).unwrap() {
                    backoff.wait(comm);
                }
                assert!(
                    backoff.polls() > Backoff::YIELD_POLLS,
                    "a 30 ms wire must escalate the ladder past yields"
                );
                let bytes = req.wait(comm).unwrap();
                assert_eq!(bytes.len(), 4);
            }
        });
    }

    #[test]
    fn ring_pass() {
        let results = run_ranks(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_vals::<f32>(next, 7, &[comm.rank() as f32])
                .unwrap();
            let got = comm.recv_vals::<f32>(prev, 7).unwrap();
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn tag_matching_reorders() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, 1, &[1.0]).unwrap();
                comm.send_vals::<f32>(1, 2, &[2.0]).unwrap();
                0.0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b = comm.recv_vals::<f32>(0, 2).unwrap();
                let a = comm.recv_vals::<f32>(0, 1).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn same_tag_preserves_order() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..5 {
                    comm.send_vals::<f32>(1, 9, &[i as f32]).unwrap();
                }
                Vec::new()
            } else {
                (0..5)
                    .map(|_| comm.recv_vals::<f32>(0, 9).unwrap()[0])
                    .collect()
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn half_precision_on_the_wire() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<F16>(1, 3, &[F16::from_f32(0.1), F16::MAX])
                    .unwrap();
                0
            } else {
                let v = comm.recv_vals::<F16>(0, 3).unwrap();
                assert_eq!(v[0].to_bits(), F16::from_f32(0.1).to_bits());
                assert_eq!(v[1].to_bits(), F16::MAX.to_bits());
                v.len()
            }
        });
        assert_eq!(results[1], 2);
    }

    #[test]
    fn split_by_socket_colors() {
        let results = run_ranks(6, |comm| {
            let socket = comm.split_by(|r| r / 3);
            // Exchange within socket: everyone sends rank to local 0.
            if socket.local_rank() != 0 {
                socket
                    .send_vals::<f32>(0, 5, &[comm.rank() as f32])
                    .unwrap();
                -1.0
            } else {
                let mut sum = comm.rank() as f32;
                for src in 1..socket.size() {
                    sum += socket.recv_vals::<f32>(src, 5).unwrap()[0];
                }
                sum
            }
        });
        assert_eq!(results[0], 3.0); // 0+1+2
        assert_eq!(results[3], 12.0); // 3+4+5
    }

    #[test]
    fn same_tag_in_different_subgroups_does_not_collide() {
        // Global-rank senders use the same tag in two colors; salting
        // keeps them separate even though the underlying world is shared.
        let results = run_ranks(4, |comm| {
            let sub = comm.split_by(|r| r % 2);
            if sub.local_rank() == 0 {
                sub.send_vals::<f32>(1, 42, &[comm.rank() as f32 + 100.0])
                    .unwrap();
                0.0
            } else {
                sub.recv_vals::<f32>(0, 42).unwrap()[0]
            }
        });
        assert_eq!(results[2], 100.0);
        assert_eq!(results[3], 101.0);
    }

    #[test]
    fn barrier_completes() {
        let results = run_ranks(5, |comm| comm.barrier(77).is_ok());
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn barrier_completes_at_non_power_of_two_world_sizes() {
        // Regression for the operator-precedence bug in the dissemination
        // peer computation: `(rank + n - dist % n) % n` parsed as
        // `n - (dist % n)`, which silently pairs the wrong peers once the
        // two expressions diverge. Exercise odd world sizes with skewed
        // rank arrival order so any mispairing deadlocks (and trips the
        // receive timeout) instead of passing by accident.
        for &n in &[3usize, 5, 7] {
            let results = run_ranks_with_timeout(n, Duration::from_secs(5), |comm| {
                // Stagger arrival so matching must happen across rounds.
                std::thread::sleep(Duration::from_millis(3 * comm.rank() as u64));
                comm.barrier(0xB000 + n as u64)
            });
            assert!(
                results.iter().all(|r| r.is_ok()),
                "barrier failed at world size {n}: {results:?}"
            );
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let results = run_ranks(6, |comm| {
            comm.allreduce_sum(11, comm.rank() as f64).unwrap()
        });
        assert!(results.iter().all(|&v| v == 15.0));
    }

    #[test]
    fn allreduce_reply_does_not_collide_with_adjacent_tag_traffic() {
        // Regression for the reply-tag collision: replies used to go out
        // at `tag + 1`, so application traffic rank 0 sends at `t + 1`
        // *before* the collective could be mistaken for the reply of the
        // collective at `t`. With the reserved reply namespace both the
        // collective and the app message complete correctly.
        let t = 40u64;
        let results = run_ranks(3, |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, t + 1, &[123.0]).unwrap();
            }
            let sum = comm.allreduce_sum(t, 1.0).unwrap();
            let app = if comm.rank() == 1 {
                comm.recv_vals::<f32>(0, t + 1).unwrap()[0]
            } else {
                123.0
            };
            (sum, app)
        });
        for &(sum, app) in &results {
            assert_eq!(sum, 3.0);
            assert_eq!(app, 123.0);
        }
    }

    #[test]
    fn back_to_back_collectives_on_adjacent_tags() {
        // A sum at tag t immediately followed by a max at t + 1: under
        // the old `tag + 1` reply scheme the sum's broadcast could be
        // consumed as the max's gather leg. Both must come out exact.
        let results = run_ranks(4, |comm| {
            let sum = comm.allreduce_sum(500, comm.rank() as f64 + 1.0).unwrap();
            let max = comm.allreduce_max(501, comm.rank() as f64).unwrap();
            (sum, max)
        });
        for &(sum, max) in &results {
            assert_eq!(sum, 10.0);
            assert_eq!(max, 3.0);
        }
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                // Nothing has been sent to rank 0 at this tag.
                let empty = comm.try_recv(1, 7).unwrap().is_none();
                comm.send_vals::<f32>(1, 8, &[5.0]).unwrap();
                empty
            } else {
                comm.recv_vals::<f32>(0, 8).unwrap();
                true
            }
        });
        assert!(results[0], "try_recv must not block or invent messages");
    }

    #[test]
    fn irecv_test_then_wait() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 1 {
                let mut req = comm.irecv(0, 13).unwrap();
                // Tell rank 0 we have posted the receive, then poll
                // test() under a loop-owned backoff until the message
                // lands (no hot spin, and the ladder keeps escalating
                // across iterations).
                comm.send_vals::<f32>(0, 12, &[1.0]).unwrap();
                let mut backoff = Backoff::new();
                while !req.test(comm).unwrap() {
                    backoff.wait(comm);
                    assert!(backoff.polls() < 100_000, "irecv never completed");
                }
                let payload = req.wait(comm).unwrap();
                f32::decode_slice(&payload)[0]
            } else {
                comm.recv_vals::<f32>(1, 12).unwrap();
                comm.send_vals::<f32>(1, 13, &[42.0]).unwrap();
                42.0
            }
        });
        assert_eq!(results[1], 42.0);
    }

    #[test]
    fn irecv_captures_already_arrived_message() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, 21, &[9.0]).unwrap();
                comm.send_vals::<f32>(1, 22, &[0.0]).unwrap(); // release
                0.0
            } else {
                comm.recv_vals::<f32>(0, 22).unwrap(); // tag 21 already queued
                let mut req = comm.irecv(0, 21).unwrap();
                assert!(req.test(comm).unwrap(), "message already arrived");
                f32::decode_slice(&req.wait(comm).unwrap())[0]
            }
        });
        assert_eq!(results[1], 9.0);
    }

    #[test]
    fn recycled_buffers_are_reused_by_sends() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vals::<f32>(1, 1, &[1.0, 2.0, 3.0]).unwrap();
                true
            } else {
                let bytes = comm.recv(0, 1).unwrap();
                let cap = bytes.capacity();
                comm.recycle(bytes);
                let reused = comm.pooled_buf(12);
                // Best-fit hands back the very buffer we recycled.
                reused.capacity() == cap && reused.is_empty()
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let results = run_ranks(2, |comm| comm.send(5, 0, Vec::new()));
        assert_eq!(
            results[0],
            Err(CommError::RankOutOfRange { rank: 5, size: 2 })
        );
    }

    #[test]
    fn chaos_jitter_preserves_correctness() {
        // A correct program must be schedule-independent: the ring pass
        // yields identical results under every jitter seed.
        for seed in 0..4u64 {
            let results = run_ranks_chaos(
                4,
                Duration::from_secs(20),
                ChaosSchedule::jitter(seed),
                |comm| {
                    let next = (comm.rank() + 1) % comm.size();
                    let prev = (comm.rank() + comm.size() - 1) % comm.size();
                    comm.send_vals::<f32>(next, 7, &[comm.rank() as f32])
                        .unwrap();
                    comm.recv_vals::<f32>(prev, 7).unwrap()[0]
                },
            );
            assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0], "seed {seed}");
        }
    }

    #[test]
    fn chaos_preserves_per_key_fifo() {
        // Delays permute matchability *across* keys, never within one
        // (src, tag) stream: the stash queue completes in send order even
        // when a later message drew a shorter delay.
        for seed in [1u64, 7, 23] {
            let results = run_ranks_chaos(
                2,
                Duration::from_secs(20),
                ChaosSchedule::jitter(seed),
                |comm| {
                    if comm.rank() == 0 {
                        for i in 0..5 {
                            comm.send_vals::<f32>(1, 9, &[i as f32]).unwrap();
                        }
                        Vec::new()
                    } else {
                        (0..5)
                            .map(|_| comm.recv_vals::<f32>(0, 9).unwrap()[0])
                            .collect()
                    }
                },
            );
            assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0], "seed {seed}");
        }
    }

    #[test]
    fn chaos_delay_one_is_deterministic_and_never_self_directed() {
        for seed in 0..32u64 {
            let a = ChaosSchedule::delay_one(seed, 4);
            assert_eq!(a, ChaosSchedule::delay_one(seed, 4));
            let ChaosMode::DelayOne { src, dst, .. } = a.mode else {
                panic!("delay_one must build a DelayOne schedule");
            };
            assert_ne!(src, dst, "seed {seed} targets a self-send");
            assert!(src < 4 && dst < 4);
        }
    }

    #[test]
    fn recv_timeout_fires() {
        let results = run_ranks_with_timeout(2, Duration::from_millis(50), |comm| {
            if comm.rank() == 1 {
                comm.recv(0, 99).err()
            } else {
                None
            }
        });
        assert_eq!(results[1], Some(CommError::Timeout { src: 0, tag: 99 }));
    }
}
