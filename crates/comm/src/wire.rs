//! Byte-exact encoding of storage scalars for the message-passing layer.

use xct_fp16::{StorageScalar, F16};

/// A storage scalar that can cross the (simulated) wire losslessly.
///
/// Communication volume per element equals `BYTES` of the storage type —
/// this is precisely how half-precision communication halves the volumes
/// of Table IV relative to single.
pub trait Wire: StorageScalar {
    /// Appends the little-endian encoding of `self`.
    fn write_to(self, out: &mut Vec<u8>);
    /// Decodes from the start of `bytes`; caller guarantees enough bytes.
    fn read_from(bytes: &[u8]) -> Self;

    /// Encodes a slice.
    fn encode_slice(vals: &[Self]) -> Vec<u8> {
        let mut out = Vec::with_capacity(vals.len() * Self::BYTES);
        for &v in vals {
            v.write_to(&mut out);
        }
        out
    }

    /// Decodes a full buffer into values.
    ///
    /// # Panics
    /// Panics when the buffer is not a multiple of the element size.
    fn decode_slice(bytes: &[u8]) -> Vec<Self> {
        assert!(
            bytes.len().is_multiple_of(Self::BYTES),
            "buffer of {} bytes is not a multiple of {}-byte {}",
            bytes.len(),
            Self::BYTES,
            Self::NAME
        );
        bytes
            .chunks_exact(Self::BYTES)
            .map(Self::read_from)
            .collect()
    }
}

impl Wire for f64 {
    fn write_to(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        // xct-allow(no-panic): infallible — the slice taken is exactly 8 bytes
        f64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"))
    }
}

impl Wire for f32 {
    fn write_to(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        // xct-allow(no-panic): infallible — the slice taken is exactly 4 bytes
        f32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"))
    }
}

impl Wire for F16 {
    fn write_to(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn read_from(bytes: &[u8]) -> Self {
        // xct-allow(no-panic): infallible — the slice taken is exactly 2 bytes
        F16::from_bits(u16::from_le_bytes(bytes[..2].try_into().expect("2 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let f64s = [0.0f64, -1.5, f64::MAX, 1e-300];
        let back = f64::decode_slice(&f64::encode_slice(&f64s));
        assert_eq!(back, f64s);

        let f32s = [0.5f32, -0.0, f32::MIN_POSITIVE];
        assert_eq!(f32::decode_slice(&f32::encode_slice(&f32s)), f32s);

        let h = [
            F16::ONE,
            F16::MAX,
            F16::MIN_POSITIVE_SUBNORMAL,
            -F16::EPSILON,
        ];
        let back = F16::decode_slice(&F16::encode_slice(&h));
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            h.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn encoded_size_is_storage_bytes() {
        assert_eq!(F16::encode_slice(&[F16::ONE; 10]).len(), 20);
        assert_eq!(f32::encode_slice(&[1.0; 10]).len(), 40);
        assert_eq!(f64::encode_slice(&[1.0; 10]).len(), 80);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_buffer_rejected() {
        f32::decode_slice(&[0u8; 6]);
    }
}
