//! Communication plans: direct vs. three-level hierarchical partial-data
//! reduction (paper §III-D, Figs 6–7).
//!
//! Inputs are geometric, not numeric: the *footprint* of each rank (which
//! global sinogram rows its partial projection touches) and the
//! *ownership* map (which rank owns each row after decomposition). From
//! those two, exact communication volumes fall out per pair and per level
//! — this is how the harness regenerates Fig 6 and Table IV without any
//! timing involved.

// Row and position ids in this module are `u32` by the `Ownership`
// contract (`num_rows` fits `u32`); enumerate-index casts back into that
// space are lossless by construction.
#![allow(clippy::cast_possible_truncation)]
use crate::topology::Topology;
use std::collections::HashMap;
use std::ops::Range;

/// Structured error for malformed plan-construction inputs.
///
/// PR 3 taught us that silently accepting a malformed table (unsorted
/// `PartialData` rows) produces corruption far from the cause, so plan
/// inputs are validated *at build time, in release builds too* — the same
/// pattern `PartialData::new` uses — and the rejection carries a witness
/// (the offending row/range/position) instead of a boolean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An owner entry names a rank outside the world.
    OwnerOutOfRange {
        /// The row whose owner is invalid.
        row: u32,
        /// The out-of-range owner.
        owner: u32,
        /// World size.
        num_ranks: usize,
    },
    /// Two ownership ranges cover a common row.
    OverlappingRanges {
        /// Earlier range (by start), half-open `[start, end)`.
        first: (u32, u32),
        /// The range overlapping it.
        second: (u32, u32),
    },
    /// An ownership range reaches past the row space.
    RangeOutOfBounds {
        /// The offending range, half-open.
        range: (u32, u32),
        /// Number of global rows.
        num_rows: usize,
    },
    /// A row is covered by no ownership range.
    UncoveredRow {
        /// The first uncovered row.
        row: u32,
    },
    /// A transfer's position table is not strictly ascending (duplicate
    /// or out-of-order index).
    UnsortedIndices {
        /// Offset of the violation within the table.
        position: usize,
        /// The entry at `position - 1`.
        prev: u32,
        /// The entry at `position`.
        next: u32,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::OwnerOutOfRange {
                row,
                owner,
                num_ranks,
            } => write!(
                f,
                "owner out of range: row {row} owned by rank {owner} (world size {num_ranks})"
            ),
            PlanError::OverlappingRanges { first, second } => write!(
                f,
                "ownership ranges overlap: [{}, {}) and [{}, {})",
                first.0, first.1, second.0, second.1
            ),
            PlanError::RangeOutOfBounds { range, num_rows } => write!(
                f,
                "ownership range [{}, {}) exceeds row space of {num_rows}",
                range.0, range.1
            ),
            PlanError::UncoveredRow { row } => {
                write!(f, "row {row} is covered by no ownership range")
            }
            PlanError::UnsortedIndices {
                position,
                prev,
                next,
            } => write!(
                f,
                "transfer indices must be strictly ascending: position {position} holds {next} after {prev}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Per-rank partial-data footprints: `per_rank[p]` lists the global row
/// ids rank `p` produces partial sums for, sorted ascending.
#[derive(Debug, Clone, Default)]
pub struct Footprints {
    /// Footprint per rank.
    pub per_rank: Vec<Vec<u32>>,
}

impl Footprints {
    /// Builds from unsorted lists; sorts and dedups each.
    pub fn new(mut per_rank: Vec<Vec<u32>>) -> Self {
        for fp in &mut per_rank {
            fp.sort_unstable();
            fp.dedup();
        }
        Footprints { per_rank }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Total footprint elements (the "partial data" volume of Fig 6a
    /// before any reduction).
    pub fn total_elements(&self) -> u64 {
        self.per_rank.iter().map(|f| f.len() as u64).sum()
    }
}

/// Row → owning rank.
#[derive(Debug, Clone)]
pub struct Ownership {
    /// Owner rank per global row.
    pub owner: Vec<u32>,
}

impl Ownership {
    /// Creates an ownership map; every owner must be a valid rank.
    pub fn new(owner: Vec<u32>, num_ranks: usize) -> Self {
        match Self::try_new(owner, num_ranks) {
            Ok(own) => own,
            // xct-allow(no-panic): validated constructor — rejects invalid owners at the boundary; try_new is the fallible form
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Ownership::new`]: rejects invalid owners with a
    /// structured witness instead of panicking.
    pub fn try_new(owner: Vec<u32>, num_ranks: usize) -> Result<Self, PlanError> {
        for (row, &o) in owner.iter().enumerate() {
            if (o as usize) >= num_ranks {
                return Err(PlanError::OwnerOutOfRange {
                    row: row as u32,
                    owner: o,
                    num_ranks,
                });
            }
        }
        Ok(Ownership { owner })
    }

    /// Builds ownership from contiguous `(rows, rank)` ranges. The ranges
    /// must partition `0..num_rows`: overlapping or duplicate ranges, a
    /// range past the row space, gaps, and out-of-range ranks are all
    /// rejected with a structured error naming the witness.
    pub fn from_ranges(
        ranges: &[(Range<u32>, u32)],
        num_rows: usize,
        num_ranks: usize,
    ) -> Result<Self, PlanError> {
        let mut sorted: Vec<&(Range<u32>, u32)> = ranges.iter().collect();
        sorted.sort_by_key(|(r, _)| (r.start, r.end));
        let mut next_row = 0u32;
        let mut last: (u32, u32) = (0, 0);
        let mut owner = vec![0u32; num_rows];
        for (range, rank) in sorted {
            if range.is_empty() {
                continue;
            }
            if (range.end as usize) > num_rows {
                return Err(PlanError::RangeOutOfBounds {
                    range: (range.start, range.end),
                    num_rows,
                });
            }
            if (*rank as usize) >= num_ranks {
                return Err(PlanError::OwnerOutOfRange {
                    row: range.start,
                    owner: *rank,
                    num_ranks,
                });
            }
            if range.start < next_row {
                // Overlaps the previous non-empty range in start order.
                return Err(PlanError::OverlappingRanges {
                    first: last,
                    second: (range.start, range.end),
                });
            }
            if range.start > next_row {
                return Err(PlanError::UncoveredRow { row: next_row });
            }
            for row in range.clone() {
                owner[row as usize] = *rank;
            }
            next_row = range.end;
            last = (range.start, range.end);
        }
        if (next_row as usize) < num_rows {
            return Err(PlanError::UncoveredRow { row: next_row });
        }
        Ok(Ownership { owner })
    }

    /// Rows owned by `rank`, ascending.
    pub fn rows_of(&self, rank: usize) -> Vec<u32> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == rank)
            .map(|(r, _)| r as u32)
            .collect()
    }
}

/// Direct communication: every rank sends each footprint row straight to
/// its owner (Fig 6a — the baseline the hierarchy is measured against).
#[derive(Debug, Clone)]
pub struct DirectPlan {
    /// `sends[p]` = list of `(dst, rows)` transfers, dst ascending.
    pub sends: Vec<Vec<(usize, Vec<u32>)>>,
    num_ranks: usize,
}

impl DirectPlan {
    /// Builds a plan straight from send tables, *without* the routing
    /// derivation of [`DirectPlan::build`]. Exists so the xct-verify
    /// known-bad corpus can construct deliberately invalid plans
    /// (misrouted, duplicated, or dropped rows) and assert the verifier
    /// rejects them; production code should always use `build`.
    pub fn from_sends(sends: Vec<Vec<(usize, Vec<u32>)>>) -> Self {
        let num_ranks = sends.len();
        DirectPlan { sends, num_ranks }
    }

    /// Builds the plan. Rows a rank owns itself cost nothing.
    pub fn build(footprints: &Footprints, ownership: &Ownership) -> Self {
        let num_ranks = footprints.num_ranks();
        let sends = footprints
            .per_rank
            .iter()
            .enumerate()
            .map(|(p, fp)| {
                let mut by_dst: HashMap<usize, Vec<u32>> = HashMap::new();
                for &r in fp {
                    let owner = ownership.owner[r as usize] as usize;
                    if owner != p {
                        by_dst.entry(owner).or_default().push(r);
                    }
                }
                let mut out: Vec<(usize, Vec<u32>)> = by_dst.into_iter().collect();
                out.sort_unstable_by_key(|&(dst, _)| dst);
                out
            })
            .collect();
        DirectPlan { sends, num_ranks }
    }

    /// Dense pairwise volume matrix in elements: `m[src][dst]`
    /// (the communication matrix of Fig 6a).
    pub fn volume_matrix(&self) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; self.num_ranks]; self.num_ranks];
        for (src, sends) in self.sends.iter().enumerate() {
            for (dst, rows) in sends {
                m[src][*dst] += rows.len() as u64;
            }
        }
        m
    }

    /// Total transferred elements.
    pub fn total_elements(&self) -> u64 {
        self.sends
            .iter()
            .flat_map(|s| s.iter())
            .map(|(_, rows)| rows.len() as u64)
            .sum()
    }

    /// Elements crossing node boundaries under `topo` — the slow traffic
    /// the hierarchy exists to shrink.
    pub fn internode_elements(&self, topo: &Topology) -> u64 {
        self.sends
            .iter()
            .enumerate()
            .flat_map(|(src, sends)| {
                sends.iter().filter_map(move |(dst, rows)| {
                    (topo.node_of(src) != topo.node_of(*dst)).then_some(rows.len() as u64)
                })
            })
            .sum()
    }
}

/// One local reduction level: within each group, overlapping rows are
/// gathered at a designated member and summed (§III-D2).
#[derive(Debug, Clone)]
pub struct ReductionStep {
    /// The rank groups (sockets or nodes), each ascending.
    pub groups: Vec<Vec<usize>>,
    /// `sends[p]` = `(designee, rows)` transfers of rank `p`, designee
    /// ascending.
    pub sends: Vec<Vec<(usize, Vec<u32>)>>,
    /// Footprints *after* the reduction: `post[p]` = rows rank `p` holds
    /// the group-reduced partial for.
    pub post: Footprints,
}

impl ReductionStep {
    /// Builds one level. Designation rule per row, within each group:
    /// prefer the row's final owner when it is a group member (so the
    /// global step later costs zero for that row); otherwise pick the
    /// least-loaded member already holding the row (the load balancing of
    /// Fig 6b–d).
    pub fn build(footprints: &Footprints, ownership: &Ownership, groups: Vec<Vec<usize>>) -> Self {
        let num_ranks = footprints.num_ranks();
        let mut sends: Vec<Vec<(usize, Vec<u32>)>> = vec![Vec::new(); num_ranks];
        let mut post: Vec<Vec<u32>> = vec![Vec::new(); num_ranks];

        for group in &groups {
            // Union footprint of the group with holder sets.
            let mut holders: HashMap<u32, Vec<usize>> = HashMap::new();
            for &p in group {
                for &r in &footprints.per_rank[p] {
                    holders.entry(r).or_default().push(p);
                }
            }
            let mut rows: Vec<u32> = holders.keys().copied().collect();
            rows.sort_unstable();

            let mut load: HashMap<usize, usize> = group.iter().map(|&p| (p, 0)).collect();
            let mut by_sender: HashMap<usize, HashMap<usize, Vec<u32>>> = HashMap::new();
            for r in rows {
                let hs = &holders[&r];
                let owner = ownership.owner[r as usize] as usize;
                let designee = if group.contains(&owner) {
                    owner
                } else {
                    // Least-loaded current holder keeps the reduced value.
                    *hs.iter()
                        .min_by_key(|&&p| (load[&p], p))
                        // xct-allow(no-panic): infallible — hs is non-empty (the row appeared in a holder set)
                        .expect("row has at least one holder")
                };
                // xct-allow(no-panic): infallible — designee was drawn from this group's load map
                *load.get_mut(&designee).expect("designee in group") += 1;
                post[designee].push(r);
                for &p in hs {
                    if p != designee {
                        by_sender
                            .entry(p)
                            .or_default()
                            .entry(designee)
                            .or_default()
                            .push(r);
                    }
                }
            }
            for (src, by_dst) in by_sender {
                let mut out: Vec<(usize, Vec<u32>)> = by_dst.into_iter().collect();
                out.sort_unstable_by_key(|&(dst, _)| dst);
                sends[src] = out;
            }
        }

        ReductionStep {
            groups,
            sends,
            post: Footprints::new(post),
        }
    }

    /// Elements moved in this level.
    pub fn total_elements(&self) -> u64 {
        self.sends
            .iter()
            .flat_map(|s| s.iter())
            .map(|(_, rows)| rows.len() as u64)
            .sum()
    }

    /// Pairwise volume matrix (block-diagonal by construction — Fig 6b/c).
    pub fn volume_matrix(&self, num_ranks: usize) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; num_ranks]; num_ranks];
        for (src, sends) in self.sends.iter().enumerate() {
            for (dst, rows) in sends {
                m[src][*dst] += rows.len() as u64;
            }
        }
        m
    }
}

/// The full three-level hierarchy: socket reduction → node reduction →
/// global exchange (paper §III-D3).
#[derive(Debug, Clone)]
pub struct HierarchicalPlan {
    /// Socket-level reduction (NVLink).
    pub socket: ReductionStep,
    /// Node-level reduction (X-bus).
    pub node: ReductionStep,
    /// Global exchange of reduced partials to owners (InfiniBand).
    pub global: DirectPlan,
}

impl HierarchicalPlan {
    /// Builds all three levels for `topo`.
    pub fn build(footprints: &Footprints, ownership: &Ownership, topo: &Topology) -> Self {
        assert_eq!(
            footprints.num_ranks(),
            topo.size(),
            "footprints do not match topology size"
        );
        let socket = ReductionStep::build(footprints, ownership, topo.socket_groups());
        let node = ReductionStep::build(&socket.post, ownership, topo.node_groups());
        let global = DirectPlan::build(&node.post, ownership);
        HierarchicalPlan {
            socket,
            node,
            global,
        }
    }

    /// `(socket, node, global)` volumes in elements — the rows of
    /// Table IV.
    pub fn level_elements(&self) -> (u64, u64, u64) {
        (
            self.socket.total_elements(),
            self.node.total_elements(),
            self.global.total_elements(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 nodes × 2 sockets × 2 GPUs, rows 0..16, owner = row / 2,
    /// footprints overlapping heavily within sockets.
    fn example() -> (Footprints, Ownership, Topology) {
        let topo = Topology::new(2, 2, 2);
        let owner: Vec<u32> = (0..16u32).map(|r| r / 2).collect();
        // Every rank's footprint: its own rows plus the next 6 rows
        // (wrapping) — guarantees overlap with socket peers.
        let fp: Vec<Vec<u32>> = (0..8usize)
            .map(|p| (0..8u32).map(|i| (p as u32 * 2 + i) % 16).collect())
            .collect();
        (Footprints::new(fp), Ownership::new(owner, 8), topo)
    }

    #[test]
    fn direct_plan_routes_every_foreign_row() {
        let (fp, own, _) = example();
        let plan = DirectPlan::build(&fp, &own);
        // Each rank holds 8 rows, 2 of which it owns: 6 sends each.
        assert_eq!(plan.total_elements(), 8 * 6);
        let m = plan.volume_matrix();
        for (src, row) in m.iter().enumerate() {
            assert_eq!(row[src], 0, "no self-sends");
        }
    }

    #[test]
    fn hierarchy_reduces_internode_traffic() {
        let (fp, own, topo) = example();
        let direct = DirectPlan::build(&fp, &own);
        let hier = HierarchicalPlan::build(&fp, &own, &topo);
        let direct_internode = direct.internode_elements(&topo);
        let hier_internode = hier.global.internode_elements(&topo);
        assert!(
            hier_internode < direct_internode,
            "hierarchy must shrink inter-node volume: {hier_internode} vs {direct_internode}"
        );
    }

    #[test]
    fn local_steps_stay_inside_groups() {
        let (fp, own, topo) = example();
        let hier = HierarchicalPlan::build(&fp, &own, &topo);
        for (src, sends) in hier.socket.sends.iter().enumerate() {
            for (dst, _) in sends {
                assert_eq!(topo.socket_of(src), topo.socket_of(*dst));
            }
        }
        for (src, sends) in hier.node.sends.iter().enumerate() {
            for (dst, _) in sends {
                assert_eq!(topo.node_of(src), topo.node_of(*dst));
                assert_ne!(
                    topo.socket_of(src),
                    topo.socket_of(*dst),
                    "socket-internal traffic should be gone after socket level"
                );
            }
        }
    }

    #[test]
    fn every_row_reaches_exactly_one_holder_per_level() {
        let (fp, own, topo) = example();
        let hier = HierarchicalPlan::build(&fp, &own, &topo);
        // After node reduction, each (node, row) pair appears at most once.
        for node_group in topo.node_groups() {
            let mut seen = std::collections::HashSet::new();
            for &p in &node_group {
                for &r in &hier.node.post.per_rank[p] {
                    assert!(seen.insert(r), "row {r} duplicated within node");
                }
            }
        }
        let _ = own;
    }

    #[test]
    fn owner_designation_zeroes_global_cost_for_local_rows() {
        // Single node: after node-level reduction every row is at its
        // owner, so the global plan is empty.
        let topo = Topology::new(1, 2, 2);
        let owner: Vec<u32> = (0..8u32).map(|r| r / 2).collect();
        let fp: Vec<Vec<u32>> = (0..4usize).map(|_| (0..8u32).collect()).collect();
        let hier = HierarchicalPlan::build(&Footprints::new(fp), &Ownership::new(owner, 4), &topo);
        assert_eq!(hier.global.total_elements(), 0);
    }

    #[test]
    fn footprints_dedup_and_sort() {
        let fp = Footprints::new(vec![vec![3, 1, 3, 2]]);
        assert_eq!(fp.per_rank[0], vec![1, 2, 3]);
        assert_eq!(fp.total_elements(), 3);
    }

    #[test]
    #[should_panic(expected = "owner out of range")]
    fn bad_owner_rejected() {
        Ownership::new(vec![9], 4);
    }

    #[test]
    fn try_new_reports_witness_row() {
        let err = Ownership::try_new(vec![0, 1, 9], 4).unwrap_err();
        assert_eq!(
            err,
            PlanError::OwnerOutOfRange {
                row: 2,
                owner: 9,
                num_ranks: 4
            }
        );
    }

    #[test]
    fn ownership_from_ranges_partitions() {
        let own = Ownership::from_ranges(&[(4..8, 0), (0..4, 1)], 8, 2).unwrap();
        assert_eq!(own.rows_of(1), vec![0, 1, 2, 3]);
        assert_eq!(own.rows_of(0), vec![4, 5, 6, 7]);
    }

    #[test]
    fn overlapping_ranges_rejected_with_witness() {
        let err = Ownership::from_ranges(&[(0..5, 0), (3..8, 1)], 8, 2).unwrap_err();
        assert_eq!(
            err,
            PlanError::OverlappingRanges {
                first: (0, 5),
                second: (3, 8)
            }
        );
    }

    #[test]
    fn duplicate_range_rejected() {
        let err = Ownership::from_ranges(&[(0..4, 0), (0..4, 1), (4..8, 1)], 8, 2).unwrap_err();
        assert!(matches!(err, PlanError::OverlappingRanges { .. }));
    }

    #[test]
    fn ownership_gap_rejected() {
        let err = Ownership::from_ranges(&[(0..3, 0), (5..8, 1)], 8, 2).unwrap_err();
        assert_eq!(err, PlanError::UncoveredRow { row: 3 });
    }

    #[test]
    fn range_past_row_space_rejected() {
        let err = Ownership::from_ranges(&[(0..9, 0)], 8, 1).unwrap_err();
        assert_eq!(
            err,
            PlanError::RangeOutOfBounds {
                range: (0, 9),
                num_rows: 8
            }
        );
    }
}
