//! Total-variation regularized reconstruction — the "advanced
//! regularizers" the paper's Eq. (1) reserves the `R(x)` term for.
//!
//! Minimizes `‖y − Ax‖² + λ·TVε(x)` by projected gradient descent, where
//! `TVε(x) = Σ √(|∇x|² + ε²)` is the smoothed isotropic total variation
//! over the slice's 2D grid. TV preserves edges while suppressing noise —
//! the regularizer of choice for piecewise-constant specimens like the
//! IC chip.

use crate::cgls::CglsReport;
use crate::operator::LinearOperator;
use std::time::Instant;
use xct_exec::{BufferRole, ExecContext, Phase};

/// TV solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct TvConfig {
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Regularization weight λ (0 = plain least squares).
    pub lambda: f32,
    /// TV smoothing ε (smaller = sharper edges, stiffer problem).
    pub epsilon: f32,
    /// Project onto `x ≥ 0` each step.
    pub nonneg: bool,
}

impl Default for TvConfig {
    fn default() -> Self {
        TvConfig {
            iterations: 100,
            lambda: 1.0,
            epsilon: 1e-3,
            nonneg: true,
        }
    }
}

/// Reconstructs one `nx × nz` slice with TV regularization, using a
/// private serial context.
///
/// # Panics
/// Panics when the operator shape does not match the grid or measurement.
pub fn tv_reconstruct(
    op: &dyn LinearOperator,
    y: &[f32],
    nx: usize,
    nz: usize,
    config: &TvConfig,
) -> CglsReport {
    tv_reconstruct_in(op, y, nx, nz, config, &mut ExecContext::serial())
}

/// [`tv_reconstruct`] running inside a caller-owned [`ExecContext`]; all
/// iteration vectors (forward projection, residual, both gradients) come
/// from the context's workspace.
pub fn tv_reconstruct_in(
    op: &dyn LinearOperator,
    y: &[f32],
    nx: usize,
    nz: usize,
    config: &TvConfig,
    ctx: &mut ExecContext,
) -> CglsReport {
    assert_eq!(op.cols(), nx * nz, "operator/grid shape mismatch");
    assert_eq!(y.len(), op.rows(), "measurement length mismatch");
    assert!(config.epsilon > 0.0, "epsilon must be positive");
    assert!(config.lambda >= 0.0, "lambda must be nonnegative");
    // xct-allow(wall-clock): the solver report carries real wall time even with telemetry disabled
    let t0 = Instant::now();
    let n = op.cols();
    let m = op.rows();

    let setup_span = ctx.telemetry.span(Phase::SolverSetup);
    // Lipschitz estimate of 2AᵀA by power iteration, for the step size.
    let lip = {
        let mut v = ctx.workspace.take_uninit::<f32>(BufferRole::Probe, n);
        for (i, vi) in v.iter_mut().enumerate() {
            *vi = ((i * 37 + 11) % 101) as f32 / 101.0 + 0.01;
        }
        let mut av = ctx.workspace.take::<f32>(BufferRole::Forward, m);
        let mut atav = ctx.workspace.take::<f32>(BufferRole::Update, n);
        let mut norm = 1.0f64;
        for _ in 0..12 {
            op.apply(&v, &mut av, ctx);
            op.apply_transpose(&av, &mut atav, ctx);
            norm = atav
                .iter()
                .map(|&x| f64::from(x).powi(2))
                .sum::<f64>()
                .sqrt();
            if norm <= 0.0 {
                break;
            }
            for (vi, &ai) in v.iter_mut().zip(&atav) {
                *vi = (f64::from(ai) / norm) as f32;
            }
        }
        ctx.workspace.put(BufferRole::Probe, v);
        ctx.workspace.put(BufferRole::Forward, av);
        ctx.workspace.put(BufferRole::Update, atav);
        2.0 * norm
    };
    // TV gradient Lipschitz bound ≈ 8λ/ε on a 4-neighbour grid.
    let step = (1.0 / (lip + f64::from(8.0 * config.lambda / config.epsilon))) as f32;

    let y_norm = y.iter().map(|&v| f64::from(v).powi(2)).sum::<f64>().sqrt();
    let mut x = vec![0.0f32; n];
    let mut ax = ctx.workspace.take::<f32>(BufferRole::Forward, m);
    let mut residual = ctx.workspace.take::<f32>(BufferRole::CgResidual, m);
    let mut grad_ls = ctx.workspace.take::<f32>(BufferRole::Update, n);
    let mut tv_grad = ctx.workspace.take::<f32>(BufferRole::Gradient, n);
    let mut history = Vec::with_capacity(config.iterations + 1);
    history.push(1.0f64);
    let mut times = Vec::with_capacity(config.iterations + 1);
    times.push(t0.elapsed().as_secs_f64());
    drop(setup_span);

    for _ in 0..config.iterations {
        let _iter_span = ctx.telemetry.span(Phase::SolverIteration);
        op.apply(&x, &mut ax, ctx);
        let mut res_norm = 0.0f64;
        for ((r, &yi), &axi) in residual.iter_mut().zip(y).zip(ax.iter()) {
            *r = axi - yi;
            res_norm += f64::from(*r).powi(2);
        }
        op.apply_transpose(&residual, &mut grad_ls, ctx);
        tv_gradient_into(&x, nx, nz, config.epsilon, &mut tv_grad);
        for ((xi, &g), &tg) in x.iter_mut().zip(&grad_ls).zip(tv_grad.iter()) {
            *xi -= step * (2.0 * g + config.lambda * tg);
            if config.nonneg && *xi < 0.0 {
                *xi = 0.0;
            }
        }
        let rel = if y_norm > 0.0 {
            res_norm.sqrt() / y_norm
        } else {
            0.0
        };
        history.push(rel);
        times.push(t0.elapsed().as_secs_f64());
        ctx.telemetry.event("tv.residual", rel);
    }

    ctx.workspace.put(BufferRole::Forward, ax);
    ctx.workspace.put(BufferRole::CgResidual, residual);
    ctx.workspace.put(BufferRole::Update, grad_ls);
    ctx.workspace.put(BufferRole::Gradient, tv_grad);

    CglsReport {
        x,
        iterations: config.iterations,
        converged: false,
        residual_history: history,
        time_history: times,
    }
}

/// Smoothed isotropic TV value of a slice (for tests and diagnostics).
pub fn tv_value(x: &[f32], nx: usize, nz: usize, epsilon: f32) -> f64 {
    assert_eq!(x.len(), nx * nz, "shape mismatch");
    let mut acc = 0.0f64;
    for iz in 0..nz {
        for ix in 0..nx {
            let v = x[iz * nx + ix];
            let dx = if ix + 1 < nx {
                x[iz * nx + ix + 1] - v
            } else {
                0.0
            };
            let dz = if iz + 1 < nz {
                x[(iz + 1) * nx + ix] - v
            } else {
                0.0
            };
            acc += f64::from(dx * dx + dz * dz + epsilon * epsilon).sqrt();
        }
    }
    acc
}

/// Gradient of [`tv_value`] with respect to `x`, written into `grad`.
fn tv_gradient_into(x: &[f32], nx: usize, nz: usize, epsilon: f32, grad: &mut [f32]) {
    assert_eq!(grad.len(), x.len(), "gradient shape mismatch");
    grad.fill(0.0);
    for iz in 0..nz {
        for ix in 0..nx {
            let at = iz * nx + ix;
            let v = x[at];
            let dx = if ix + 1 < nx { x[at + 1] - v } else { 0.0 };
            let dz = if iz + 1 < nz { x[at + nx] - v } else { 0.0 };
            let mag = (dx * dx + dz * dz + epsilon * epsilon).sqrt();
            // ∂/∂v of √(dx²+dz²+ε²) with dx, dz both containing −v.
            grad[at] += -(dx + dz) / mag;
            if ix + 1 < nx {
                grad[at + 1] += dx / mag;
            }
            if iz + 1 < nz {
                grad[at + nx] += dz / mag;
            }
        }
    }
}

/// Gradient of [`tv_value`] with respect to `x` (allocating convenience).
#[cfg(test)]
fn tv_gradient(x: &[f32], nx: usize, nz: usize, epsilon: f32) -> Vec<f32> {
    let mut grad = vec![0.0f32; x.len()];
    tv_gradient_into(x, nx, nz, epsilon, &mut grad);
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgls::{cgls, CglsConfig};
    use crate::operator::SystemMatrixOperator;
    use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};

    fn blocky_phantom(n: usize) -> Vec<f32> {
        // Piecewise-constant: two rectangles on background — TV's best case.
        let mut x = vec![0.0f32; n * n];
        for iz in n / 6..n / 2 {
            for ix in n / 6..n / 2 {
                x[iz * n + ix] = 1.0;
            }
        }
        for iz in n / 2..(5 * n / 6) {
            for ix in n / 2..(5 * n / 6) {
                x[iz * n + ix] = 0.6;
            }
        }
        x
    }

    fn noisy_setup(n: usize) -> (SystemMatrix, Vec<f32>, Vec<f32>) {
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), n);
        let sm = SystemMatrix::build(&scan);
        let x_true = blocky_phantom(n);
        let mut y = vec![0.0f32; sm.num_rays()];
        sm.project(&x_true, &mut y);
        let mut state = 99u64;
        for v in &mut y {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v += ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 1.5;
        }
        (sm, x_true, y)
    }

    fn rel_err(a: &[f32], b: &[f32]) -> f64 {
        let num: f64 = a
            .iter()
            .zip(b)
            .map(|(&p, &q)| (f64::from(p) - f64::from(q)).powi(2))
            .sum();
        let den: f64 = b.iter().map(|&q| f64::from(q).powi(2)).sum();
        (num / den).sqrt()
    }

    #[test]
    fn tv_gradient_matches_finite_differences() {
        let (nx, nz) = (6, 5);
        let x: Vec<f32> = (0..nx * nz)
            .map(|i| ((i * 17 + 3) % 23) as f32 / 23.0)
            .collect();
        let eps = 0.05f32;
        let grad = tv_gradient(&x, nx, nz, eps);
        let f0 = tv_value(&x, nx, nz, eps);
        let h = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let fd = (tv_value(&xp, nx, nz, eps) - f0) / f64::from(h);
            assert!(
                (fd - f64::from(grad[i])).abs() < 2e-2 * fd.abs().max(1.0),
                "voxel {i}: fd {fd} vs grad {}",
                grad[i]
            );
        }
    }

    #[test]
    fn tv_beats_plain_cgls_on_noisy_blocky_data() {
        let n = 24;
        let (sm, x_true, y) = noisy_setup(n);
        let op = SystemMatrixOperator::new(&sm);
        let plain = cgls(
            &op,
            &y,
            &CglsConfig {
                max_iters: 60,
                tolerance: 0.0,
                damping: 0.0,
            },
        );
        let tv = tv_reconstruct(
            &op,
            &y,
            n,
            n,
            &TvConfig {
                iterations: 400,
                lambda: 2.0,
                epsilon: 0.01,
                nonneg: true,
            },
        );
        let e_plain = rel_err(&plain.x, &x_true);
        let e_tv = rel_err(&tv.x, &x_true);
        assert!(
            e_tv < e_plain,
            "TV ({e_tv}) must beat plain CGLS ({e_plain}) on noisy piecewise-constant data"
        );
        // And the TV solution really is smoother.
        assert!(
            tv_value(&tv.x, n, n, 1e-3) < tv_value(&plain.x, n, n, 1e-3),
            "TV regularization must reduce total variation"
        );
    }

    #[test]
    fn zero_lambda_reduces_to_least_squares_descent() {
        let n = 16;
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), 20);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        let x_true = blocky_phantom(n);
        let mut y = vec![0.0f32; sm.num_rays()];
        sm.project(&x_true, &mut y);
        let report = tv_reconstruct(
            &op,
            &y,
            n,
            n,
            &TvConfig {
                iterations: 300,
                lambda: 0.0,
                epsilon: 0.01,
                nonneg: false,
            },
        );
        assert!(
            *report.residual_history.last().unwrap() < 0.1,
            "plain gradient descent must make progress: {}",
            report.residual_history.last().unwrap()
        );
        // Monotone descent (fixed small step).
        for w in report.residual_history.windows(2) {
            assert!(w[1] <= w[0] * 1.001, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn nonneg_projection_is_respected() {
        let n = 12;
        let (sm, _, y) = noisy_setup(n);
        let op = SystemMatrixOperator::new(&sm);
        let report = tv_reconstruct(&op, &y, n, n, &TvConfig::default());
        assert!(report.x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn tv_steady_state_reuses_workspace() {
        let n = 12;
        let (sm, _, y) = noisy_setup(n);
        let op = SystemMatrixOperator::new(&sm);
        let mut ctx = ExecContext::serial();
        let config = TvConfig {
            iterations: 3,
            ..Default::default()
        };
        tv_reconstruct_in(&op, &y, n, n, &config, &mut ctx);
        let warm = ctx.workspace.alloc_events();
        tv_reconstruct_in(&op, &y, n, n, &config, &mut ctx);
        assert_eq!(ctx.workspace.alloc_events(), warm);
    }

    #[test]
    #[should_panic(expected = "operator/grid shape mismatch")]
    fn shape_mismatch_panics() {
        let scan = ScanGeometry::uniform(ImageGrid::square(8, 1.0), 8);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        tv_reconstruct(&op, &vec![0.0; op.rows()], 4, 4, &TvConfig::default());
    }
}
