//! Precision-policy operator: the optimized fused kernels plus adaptive
//! normalization, behind the [`LinearOperator`] interface.

use crate::operator::LinearOperator;
use xct_exec::{BufferRole, ExecContext, Phase};
use xct_fp16::{AdaptiveNormalizer, Precision, StorageScalar, F16};
use xct_spmm::{spmm_with, Csr, KernelMetrics, PackedMatrix};

/// `A` and `Aᵀ` packed for the buffered SpMM at a chosen precision, with
/// the adaptive (de)normalization of §III-C1 around every half-precision
/// cast.
///
/// Two normalizations compose:
/// * **matrix scale** (static): Siddon lengths are scaled once at build
///   time so the largest length sits at 1.0 — the "artificially
///   increasing the voxel size" trick that keeps lengths out of the
///   half-precision subnormal range,
/// * **iterate factor** (dynamic): each `apply` measures the input
///   max-norm and rescales into the half sweet spot, undoing the factor
///   on output; CG's evolving residual therefore never under- or
///   overflows (§III-C1).
///
/// Quantization staging (`xq`/`yq`) comes from the context's workspace
/// under [`BufferRole::QuantIn`] / [`BufferRole::QuantOut`], so repeated
/// applies reuse the same buffers instead of allocating per call.
pub struct PrecisionOperator {
    precision: Precision,
    fusing: usize,
    rows_total: usize,
    cols_total: usize,
    matrix_scale: f32,
    normalizer: AdaptiveNormalizer,
    adaptive: bool,
    inner: Inner,
}

enum Inner {
    Double {
        a: PackedMatrix<f64>,
        at: PackedMatrix<f64>,
    },
    Single {
        a: PackedMatrix<f32>,
        at: PackedMatrix<f32>,
    },
    HalfFamily {
        a: PackedMatrix<F16>,
        at: PackedMatrix<F16>,
        half_compute: bool,
    },
}

impl PrecisionOperator {
    /// Packs `csr` (one slice's `A`) and its transpose for `fusing`
    /// simultaneous slices at `precision`, with `block_size` threads per
    /// block and `shared_bytes` of staging buffer.
    pub fn new(
        csr: &Csr<f32>,
        precision: Precision,
        fusing: usize,
        block_size: usize,
        shared_bytes: usize,
    ) -> Self {
        let max_len = csr
            .triplets()
            .map(|(_, _, v)| v.abs())
            .fold(0.0f32, f32::max);
        // Static matrix normalization: largest length → 1.0.
        let matrix_scale = if precision.quantizes_to_half() && max_len > 0.0 {
            1.0 / max_len
        } else {
            1.0
        };
        let at = csr.transpose();

        fn repack<S: StorageScalar>(
            c: &Csr<f32>,
            scale: f32,
            block: usize,
            shared: usize,
            fusing: usize,
        ) -> PackedMatrix<S> {
            let t = c.triplets().map(|(r, col, v)| (r, col, v * scale));
            let scaled = Csr::<S>::from_triplets(c.num_rows(), c.num_cols(), t);
            PackedMatrix::pack(&scaled, block, shared, fusing)
        }

        let inner = match precision {
            Precision::Double => Inner::Double {
                a: repack::<f64>(csr, matrix_scale, block_size, shared_bytes, fusing),
                at: repack::<f64>(&at, matrix_scale, block_size, shared_bytes, fusing),
            },
            Precision::Single => Inner::Single {
                a: repack::<f32>(csr, matrix_scale, block_size, shared_bytes, fusing),
                at: repack::<f32>(&at, matrix_scale, block_size, shared_bytes, fusing),
            },
            Precision::Half | Precision::Mixed => Inner::HalfFamily {
                a: repack::<F16>(csr, matrix_scale, block_size, shared_bytes, fusing),
                at: repack::<F16>(&at, matrix_scale, block_size, shared_bytes, fusing),
                half_compute: precision == Precision::Half,
            },
        };

        PrecisionOperator {
            precision,
            fusing,
            rows_total: csr.num_rows() * fusing,
            cols_total: csr.num_cols() * fusing,
            matrix_scale,
            normalizer: AdaptiveNormalizer::default(),
            adaptive: true,
            inner,
        }
    }

    /// The precision mode.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Disables the *dynamic* adaptive normalization (the matrix-scale
    /// normalization is baked in at pack time and stays). Exists for the
    /// normalization ablation: without it, shrinking CG residuals
    /// underflow half precision and convergence stalls.
    pub fn disable_adaptive_normalization(&mut self) {
        self.adaptive = false;
    }

    /// Slices fused per kernel call.
    pub fn fusing(&self) -> usize {
        self.fusing
    }

    /// Memory-traffic account of one forward apply.
    pub fn forward_metrics(&self) -> KernelMetrics {
        match &self.inner {
            Inner::Double { a, .. } => a.kernel_metrics(),
            Inner::Single { a, .. } => a.kernel_metrics(),
            Inner::HalfFamily { a, .. } => a.kernel_metrics(),
        }
    }

    /// Stage counts `(forward, transpose)` for sync-overhead modeling.
    pub fn stage_counts(&self) -> (usize, usize) {
        match &self.inner {
            Inner::Double { a, at } => (a.total_stages(), at.total_stages()),
            Inner::Single { a, at } => (a.total_stages(), at.total_stages()),
            Inner::HalfFamily { a, at, .. } => (a.total_stages(), at.total_stages()),
        }
    }

    /// Runs a packed f64 kernel, widening in and narrowing out through
    /// workspace staging.
    fn run_double(
        &self,
        m: &PackedMatrix<f64>,
        input: &[f32],
        output: &mut [f32],
        ctx: &mut ExecContext,
    ) {
        let mut xd = ctx
            .workspace
            .take_uninit::<f64>(BufferRole::QuantIn, input.len());
        {
            let _convert = ctx.telemetry.span(Phase::PrecisionConvert);
            for (q, &v) in xd.iter_mut().zip(input) {
                *q = f64::from(v);
            }
        }
        let mut yd = ctx
            .workspace
            .take::<f64>(BufferRole::QuantOut, output.len());
        spmm_with::<f64, f64>(m, &xd, &mut yd, ctx);
        {
            let _convert = ctx.telemetry.span(Phase::PrecisionConvert);
            for (o, v) in output.iter_mut().zip(&yd) {
                *o = *v as f32;
            }
        }
        ctx.workspace.put(BufferRole::QuantIn, xd);
        ctx.workspace.put(BufferRole::QuantOut, yd);
    }

    /// Runs a packed half kernel with dynamic normalization, returning
    /// denormalized f32 output.
    fn run_half<const HALF_COMPUTE: bool>(
        &self,
        m: &PackedMatrix<F16>,
        input: &[f32],
        output: &mut [f32],
        ctx: &mut ExecContext,
    ) {
        let mut xq = ctx
            .workspace
            .take_uninit::<F16>(BufferRole::QuantIn, input.len());
        let factor = {
            let _convert = ctx.telemetry.span(Phase::PrecisionConvert);
            if self.adaptive {
                self.normalizer.normalize_into(input, &mut xq)
            } else {
                for (q, &v) in xq.iter_mut().zip(input) {
                    *q = F16::from_f32(v);
                }
                1.0
            }
        };
        let mut yq = ctx
            .workspace
            .take::<F16>(BufferRole::QuantOut, output.len());
        if HALF_COMPUTE {
            spmm_with::<F16, F16>(m, &xq, &mut yq, ctx);
        } else {
            spmm_with::<F16, f32>(m, &xq, &mut yq, ctx);
        }
        // Undo both the dynamic factor and the static matrix scale.
        {
            let _convert = ctx.telemetry.span(Phase::PrecisionConvert);
            self.normalizer
                .denormalize_into(&yq, factor * self.matrix_scale, output);
        }
        ctx.workspace.put(BufferRole::QuantIn, xq);
        ctx.workspace.put(BufferRole::QuantOut, yq);
    }
}

impl LinearOperator for PrecisionOperator {
    fn rows(&self) -> usize {
        self.rows_total
    }

    fn cols(&self) -> usize {
        self.cols_total
    }

    fn apply(&self, x: &[f32], y: &mut [f32], ctx: &mut ExecContext) {
        assert_eq!(x.len(), self.cols_total, "input length mismatch");
        assert_eq!(y.len(), self.rows_total, "output length mismatch");
        let _span = ctx.telemetry.span(Phase::SpmmForward);
        match &self.inner {
            Inner::Double { a, .. } => {
                self.run_double(a, x, y, ctx);
            }
            Inner::Single { a, .. } => {
                spmm_with::<f32, f32>(a, x, y, ctx);
            }
            Inner::HalfFamily {
                a, half_compute, ..
            } => {
                if *half_compute {
                    self.run_half::<true>(a, x, y, ctx);
                } else {
                    self.run_half::<false>(a, x, y, ctx);
                }
            }
        }
    }

    fn apply_transpose(&self, y: &[f32], x: &mut [f32], ctx: &mut ExecContext) {
        assert_eq!(y.len(), self.rows_total, "input length mismatch");
        assert_eq!(x.len(), self.cols_total, "output length mismatch");
        let _span = ctx.telemetry.span(Phase::SpmmTranspose);
        match &self.inner {
            Inner::Double { at, .. } => {
                self.run_double(at, y, x, ctx);
            }
            Inner::Single { at, .. } => {
                spmm_with::<f32, f32>(at, y, x, ctx);
            }
            Inner::HalfFamily {
                at, half_compute, ..
            } => {
                if *half_compute {
                    self.run_half::<true>(at, y, x, ctx);
                } else {
                    self.run_half::<false>(at, y, x, ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgls::{cgls, CglsConfig};
    use crate::operator::SystemMatrixOperator;
    use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};

    fn setup(n: usize, angles: usize) -> (SystemMatrix, Csr<f32>) {
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), angles);
        let sm = SystemMatrix::build(&scan);
        let csr = Csr::from_system_matrix(&sm);
        (sm, csr)
    }

    #[test]
    fn all_precisions_approximate_the_reference() {
        let (sm, csr) = setup(16, 12);
        let x: Vec<f32> = (0..sm.num_voxels())
            .map(|i| ((i * 31 + 7) % 89) as f32 / 89.0)
            .collect();
        let mut y_ref = vec![0.0f32; sm.num_rays()];
        sm.project(&x, &mut y_ref);
        for precision in Precision::ALL {
            let op = PrecisionOperator::new(&csr, precision, 1, 64, 48 * 1024);
            let mut ctx = ExecContext::serial().with_precision(precision);
            let mut y = vec![0.0f32; sm.num_rays()];
            op.apply(&x, &mut y, &mut ctx);
            let tol = match precision {
                Precision::Double | Precision::Single => 1e-4,
                Precision::Mixed => 2e-2,
                Precision::Half => 5e-2,
            };
            for (a, b) in y.iter().zip(&y_ref) {
                assert!(
                    (a - b).abs() <= tol * b.abs().max(1.0),
                    "{precision}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn normalization_handles_tiny_inputs() {
        // Residuals shrink by orders of magnitude during CG; unnormalized
        // half precision would flush them to zero.
        let (_, csr) = setup(12, 8);
        let op = PrecisionOperator::new(&csr, Precision::Mixed, 1, 32, 48 * 1024);
        let mut ctx = ExecContext::serial();
        let x = vec![1e-6f32; op.cols()];
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x, &mut y, &mut ctx);
        let nonzero = y.iter().filter(|v| **v != 0.0).count();
        assert!(
            nonzero > y.len() / 2,
            "tiny inputs must survive: {nonzero}/{} nonzero",
            y.len()
        );
    }

    #[test]
    fn fused_slices_are_independent() {
        let (sm, csr) = setup(12, 10);
        let fusing = 3;
        let op = PrecisionOperator::new(&csr, Precision::Mixed, fusing, 32, 48 * 1024);
        let mut ctx = ExecContext::serial();
        // Slice 1 nonzero, slices 0 and 2 zero.
        let mut x = vec![0.0f32; op.cols()];
        for i in 0..sm.num_voxels() {
            x[sm.num_voxels() + i] = 0.5 + (i % 7) as f32 * 0.05;
        }
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x, &mut y, &mut ctx);
        assert!(y[..sm.num_rays()].iter().all(|&v| v == 0.0));
        assert!(y[2 * sm.num_rays()..].iter().all(|&v| v == 0.0));
        assert!(y[sm.num_rays()..2 * sm.num_rays()]
            .iter()
            .any(|&v| v != 0.0));
    }

    #[test]
    fn repeated_applies_reuse_quantization_buffers() {
        let (_, csr) = setup(12, 10);
        let op = PrecisionOperator::new(&csr, Precision::Mixed, 1, 32, 48 * 1024);
        let mut ctx = ExecContext::serial();
        let x = vec![0.3f32; op.cols()];
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x, &mut y, &mut ctx);
        let mut xt = vec![0.0f32; op.cols()];
        op.apply_transpose(&y, &mut xt, &mut ctx);
        let warm = ctx.workspace.alloc_events();
        for _ in 0..4 {
            op.apply(&x, &mut y, &mut ctx);
            op.apply_transpose(&y, &mut xt, &mut ctx);
        }
        assert_eq!(
            ctx.workspace.alloc_events(),
            warm,
            "steady-state applies must not grow the workspace"
        );
    }

    #[test]
    fn mixed_precision_cgls_converges_like_fig13() {
        let (sm, csr) = setup(16, 16);
        let ref_op = SystemMatrixOperator::new(&sm);
        // Disk phantom measurements.
        let x_true: Vec<f32> = (0..sm.num_voxels())
            .map(|i| {
                let (ix, iz) = ((i % 16) as f32 - 7.5, (i / 16) as f32 - 7.5);
                if ix * ix + iz * iz < 30.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = vec![0.0f32; sm.num_rays()];
        ref_op.apply(&x_true, &mut y, &mut ExecContext::serial());

        let config = CglsConfig {
            max_iters: 24,
            tolerance: 0.0,
            damping: 0.0,
        };
        let double = cgls(
            &PrecisionOperator::new(&csr, Precision::Double, 1, 64, 48 * 1024),
            &y,
            &config,
        );
        let mixed = cgls(
            &PrecisionOperator::new(&csr, Precision::Mixed, 1, 64, 48 * 1024),
            &y,
            &config,
        );
        let d_final = *double.residual_history.last().unwrap();
        let m_final = *mixed.residual_history.last().unwrap();
        // Fig 13: "No serious convergence problem is observed with reduced
        // precisions" — mixed tracks double until the half-precision noise
        // floor, which sits well below the 24-iteration residual.
        assert!(d_final < 0.05, "double residual {d_final}");
        assert!(m_final < 0.08, "mixed residual {m_final}");
    }

    #[test]
    fn half_compute_is_worse_than_mixed_but_converges() {
        let (sm, csr) = setup(12, 12);
        let x_true: Vec<f32> = (0..sm.num_voxels()).map(|i| (i % 3) as f32 * 0.3).collect();
        let mut y = vec![0.0f32; sm.num_rays()];
        SystemMatrixOperator::new(&sm).apply(&x_true, &mut y, &mut ExecContext::serial());
        let config = CglsConfig {
            max_iters: 20,
            tolerance: 0.0,
            damping: 0.0,
        };
        let half = cgls(
            &PrecisionOperator::new(&csr, Precision::Half, 1, 32, 48 * 1024),
            &y,
            &config,
        );
        let final_res = *half.residual_history.last().unwrap();
        assert!(
            final_res < 0.2,
            "half-precision CGLS must still descend: {final_res}"
        );
    }
}
