//! Precision-policy operator: the optimized fused kernels plus adaptive
//! normalization, behind the [`LinearOperator`] interface.

use crate::operator::LinearOperator;
use xct_fp16::{max_abs, AdaptiveNormalizer, Precision, StorageScalar, F16};
use xct_spmm::{spmm_buffered, Csr, KernelMetrics, PackedMatrix};

/// `A` and `Aᵀ` packed for the buffered SpMM at a chosen precision, with
/// the adaptive (de)normalization of §III-C1 around every half-precision
/// cast.
///
/// Two normalizations compose:
/// * **matrix scale** (static): Siddon lengths are scaled once at build
///   time so the largest length sits at 1.0 — the "artificially
///   increasing the voxel size" trick that keeps lengths out of the
///   half-precision subnormal range,
/// * **iterate factor** (dynamic): each `apply` measures the input
///   max-norm and rescales into the half sweet spot, undoing the factor
///   on output; CG's evolving residual therefore never under- or
///   overflows (§III-C1).
pub struct PrecisionOperator {
    precision: Precision,
    fusing: usize,
    rows_total: usize,
    cols_total: usize,
    matrix_scale: f32,
    normalizer: AdaptiveNormalizer,
    adaptive: bool,
    inner: Inner,
}

enum Inner {
    Double {
        a: PackedMatrix<f64>,
        at: PackedMatrix<f64>,
    },
    Single {
        a: PackedMatrix<f32>,
        at: PackedMatrix<f32>,
    },
    HalfFamily {
        a: PackedMatrix<F16>,
        at: PackedMatrix<F16>,
        half_compute: bool,
    },
}

impl PrecisionOperator {
    /// Packs `csr` (one slice's `A`) and its transpose for `fusing`
    /// simultaneous slices at `precision`, with `block_size` threads per
    /// block and `shared_bytes` of staging buffer.
    pub fn new(
        csr: &Csr<f32>,
        precision: Precision,
        fusing: usize,
        block_size: usize,
        shared_bytes: usize,
    ) -> Self {
        let max_len = csr
            .triplets()
            .map(|(_, _, v)| v.abs())
            .fold(0.0f32, f32::max);
        // Static matrix normalization: largest length → 1.0.
        let matrix_scale = if precision.quantizes_to_half() && max_len > 0.0 {
            1.0 / max_len
        } else {
            1.0
        };
        let at = csr.transpose();

        fn repack<S: StorageScalar>(
            c: &Csr<f32>,
            scale: f32,
            block: usize,
            shared: usize,
            fusing: usize,
        ) -> PackedMatrix<S> {
            let t = c.triplets().map(|(r, col, v)| (r, col, v * scale));
            let scaled = Csr::<S>::from_triplets(c.num_rows(), c.num_cols(), t);
            PackedMatrix::pack(&scaled, block, shared, fusing)
        }

        let inner = match precision {
            Precision::Double => Inner::Double {
                a: repack::<f64>(csr, matrix_scale, block_size, shared_bytes, fusing),
                at: repack::<f64>(&at, matrix_scale, block_size, shared_bytes, fusing),
            },
            Precision::Single => Inner::Single {
                a: repack::<f32>(csr, matrix_scale, block_size, shared_bytes, fusing),
                at: repack::<f32>(&at, matrix_scale, block_size, shared_bytes, fusing),
            },
            Precision::Half | Precision::Mixed => Inner::HalfFamily {
                a: repack::<F16>(csr, matrix_scale, block_size, shared_bytes, fusing),
                at: repack::<F16>(&at, matrix_scale, block_size, shared_bytes, fusing),
                half_compute: precision == Precision::Half,
            },
        };

        PrecisionOperator {
            precision,
            fusing,
            rows_total: csr.num_rows() * fusing,
            cols_total: csr.num_cols() * fusing,
            matrix_scale,
            normalizer: AdaptiveNormalizer::default(),
            adaptive: true,
            inner,
        }
    }

    /// The precision mode.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Disables the *dynamic* adaptive normalization (the matrix-scale
    /// normalization is baked in at pack time and stays). Exists for the
    /// normalization ablation: without it, shrinking CG residuals
    /// underflow half precision and convergence stalls.
    pub fn disable_adaptive_normalization(&mut self) {
        self.adaptive = false;
    }

    /// Slices fused per kernel call.
    pub fn fusing(&self) -> usize {
        self.fusing
    }

    /// Memory-traffic account of one forward apply.
    pub fn forward_metrics(&self) -> KernelMetrics {
        match &self.inner {
            Inner::Double { a, .. } => a.kernel_metrics(),
            Inner::Single { a, .. } => a.kernel_metrics(),
            Inner::HalfFamily { a, .. } => a.kernel_metrics(),
        }
    }

    /// Stage counts `(forward, transpose)` for sync-overhead modeling.
    pub fn stage_counts(&self) -> (usize, usize) {
        match &self.inner {
            Inner::Double { a, at } => (a.total_stages(), at.total_stages()),
            Inner::Single { a, at } => (a.total_stages(), at.total_stages()),
            Inner::HalfFamily { a, at, .. } => (a.total_stages(), at.total_stages()),
        }
    }

    /// Runs a packed kernel with dynamic normalization, returning
    /// denormalized f32 output.
    fn run_half<const HALF_COMPUTE: bool>(
        &self,
        m: &PackedMatrix<F16>,
        input: &[f32],
        output: &mut [f32],
    ) {
        let factor = if self.adaptive {
            self.normalizer.factor_for(max_abs(input))
        } else {
            1.0
        };
        let xq: Vec<F16> = input.iter().map(|&v| F16::from_f32(v * factor)).collect();
        let mut yq = vec![F16::ZERO; output.len()];
        if HALF_COMPUTE {
            spmm_buffered::<F16, F16>(m, &xq, &mut yq);
        } else {
            spmm_buffered::<F16, f32>(m, &xq, &mut yq);
        }
        let undo = 1.0 / (factor * self.matrix_scale);
        for (o, h) in output.iter_mut().zip(&yq) {
            *o = h.to_f32() * undo;
        }
    }
}

impl LinearOperator for PrecisionOperator {
    fn rows(&self) -> usize {
        self.rows_total
    }

    fn cols(&self) -> usize {
        self.cols_total
    }

    fn apply(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols_total, "input length mismatch");
        assert_eq!(y.len(), self.rows_total, "output length mismatch");
        match &self.inner {
            Inner::Double { a, .. } => {
                let xd: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
                let mut yd = vec![0.0f64; y.len()];
                spmm_buffered::<f64, f64>(a, &xd, &mut yd);
                for (o, v) in y.iter_mut().zip(&yd) {
                    *o = *v as f32;
                }
            }
            Inner::Single { a, .. } => {
                spmm_buffered::<f32, f32>(a, x, y);
            }
            Inner::HalfFamily { a, half_compute, .. } => {
                if *half_compute {
                    self.run_half::<true>(a, x, y);
                } else {
                    self.run_half::<false>(a, x, y);
                }
            }
        }
    }

    fn apply_transpose(&self, y: &[f32], x: &mut [f32]) {
        assert_eq!(y.len(), self.rows_total, "input length mismatch");
        assert_eq!(x.len(), self.cols_total, "output length mismatch");
        match &self.inner {
            Inner::Double { at, .. } => {
                let yd: Vec<f64> = y.iter().map(|&v| f64::from(v)).collect();
                let mut xd = vec![0.0f64; x.len()];
                spmm_buffered::<f64, f64>(at, &yd, &mut xd);
                for (o, v) in x.iter_mut().zip(&xd) {
                    *o = *v as f32;
                }
            }
            Inner::Single { at, .. } => {
                spmm_buffered::<f32, f32>(at, y, x);
            }
            Inner::HalfFamily { at, half_compute, .. } => {
                if *half_compute {
                    self.run_half::<true>(at, y, x);
                } else {
                    self.run_half::<false>(at, y, x);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgls::{cgls, CglsConfig};
    use crate::operator::SystemMatrixOperator;
    use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};

    fn setup(n: usize, angles: usize) -> (SystemMatrix, Csr<f32>) {
        let scan = ScanGeometry::uniform(ImageGrid::square(n, 1.0), angles);
        let sm = SystemMatrix::build(&scan);
        let csr = Csr::from_system_matrix(&sm);
        (sm, csr)
    }

    #[test]
    fn all_precisions_approximate_the_reference() {
        let (sm, csr) = setup(16, 12);
        let x: Vec<f32> = (0..sm.num_voxels())
            .map(|i| ((i * 31 + 7) % 89) as f32 / 89.0)
            .collect();
        let mut y_ref = vec![0.0f32; sm.num_rays()];
        sm.project(&x, &mut y_ref);
        for precision in Precision::ALL {
            let op = PrecisionOperator::new(&csr, precision, 1, 64, 48 * 1024);
            let mut y = vec![0.0f32; sm.num_rays()];
            op.apply(&x, &mut y);
            let tol = match precision {
                Precision::Double | Precision::Single => 1e-4,
                Precision::Mixed => 2e-2,
                Precision::Half => 5e-2,
            };
            for (a, b) in y.iter().zip(&y_ref) {
                assert!(
                    (a - b).abs() <= tol * b.abs().max(1.0),
                    "{precision}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn normalization_handles_tiny_inputs() {
        // Residuals shrink by orders of magnitude during CG; unnormalized
        // half precision would flush them to zero.
        let (_, csr) = setup(12, 8);
        let op = PrecisionOperator::new(&csr, Precision::Mixed, 1, 32, 48 * 1024);
        let x = vec![1e-6f32; op.cols()];
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x, &mut y);
        let nonzero = y.iter().filter(|v| **v != 0.0).count();
        assert!(
            nonzero > y.len() / 2,
            "tiny inputs must survive: {nonzero}/{} nonzero",
            y.len()
        );
    }

    #[test]
    fn fused_slices_are_independent() {
        let (sm, csr) = setup(12, 10);
        let fusing = 3;
        let op = PrecisionOperator::new(&csr, Precision::Mixed, fusing, 32, 48 * 1024);
        // Slice 1 nonzero, slices 0 and 2 zero.
        let mut x = vec![0.0f32; op.cols()];
        for i in 0..sm.num_voxels() {
            x[sm.num_voxels() + i] = 0.5 + (i % 7) as f32 * 0.05;
        }
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x, &mut y);
        assert!(y[..sm.num_rays()].iter().all(|&v| v == 0.0));
        assert!(y[2 * sm.num_rays()..].iter().all(|&v| v == 0.0));
        assert!(y[sm.num_rays()..2 * sm.num_rays()].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn mixed_precision_cgls_converges_like_fig13() {
        let (sm, csr) = setup(16, 16);
        let ref_op = SystemMatrixOperator::new(&sm);
        // Disk phantom measurements.
        let x_true: Vec<f32> = (0..sm.num_voxels())
            .map(|i| {
                let (ix, iz) = ((i % 16) as f32 - 7.5, (i / 16) as f32 - 7.5);
                if ix * ix + iz * iz < 30.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = vec![0.0f32; sm.num_rays()];
        ref_op.apply(&x_true, &mut y);

        let config = CglsConfig {
            max_iters: 24,
            tolerance: 0.0,
            damping: 0.0,
        };
        let double = cgls(
            &PrecisionOperator::new(&csr, Precision::Double, 1, 64, 48 * 1024),
            &y,
            &config,
        );
        let mixed = cgls(
            &PrecisionOperator::new(&csr, Precision::Mixed, 1, 64, 48 * 1024),
            &y,
            &config,
        );
        let d_final = *double.residual_history.last().unwrap();
        let m_final = *mixed.residual_history.last().unwrap();
        // Fig 13: "No serious convergence problem is observed with reduced
        // precisions" — mixed tracks double until the half-precision noise
        // floor, which sits well below the 24-iteration residual.
        assert!(d_final < 0.05, "double residual {d_final}");
        assert!(m_final < 0.08, "mixed residual {m_final}");
    }

    #[test]
    fn half_compute_is_worse_than_mixed_but_converges() {
        let (sm, csr) = setup(12, 12);
        let x_true: Vec<f32> = (0..sm.num_voxels()).map(|i| (i % 3) as f32 * 0.3).collect();
        let mut y = vec![0.0f32; sm.num_rays()];
        SystemMatrixOperator::new(&sm).apply(&x_true, &mut y);
        let config = CglsConfig {
            max_iters: 20,
            tolerance: 0.0,
            damping: 0.0,
        };
        let half = cgls(
            &PrecisionOperator::new(&csr, Precision::Half, 1, 32, 48 * 1024),
            &y,
            &config,
        );
        let final_res = *half.residual_history.last().unwrap();
        assert!(final_res < 0.2, "half-precision CGLS must still descend: {final_res}");
    }
}
