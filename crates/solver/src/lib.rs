//! The iterative solver of Petascale XCT: conjugate gradient on the
//! least-squares normal equations (CGLS), in any of the four precision
//! modes (paper §II-A, §IV-F).
//!
//! The paper solves `x̂ = argmin ‖y − Ax‖² (+ R(x))` with CG, running a
//! forward projection and a backprojection per iteration. Convergence
//! under reduced precision (Fig 13) works because (a) all FMAs stay in
//! single precision (mixed mode), and (b) the iterate and residual are
//! adaptively renormalized before each half-precision cast so quantization
//! noise stays below measurement noise.
//!
//! * [`LinearOperator`] — the `A` abstraction (reference, CSR-backed, or
//!   the optimized packed kernels at any precision),
//! * [`cgls`] / [`cgls_with`] / [`cgls_in`] — damped CGLS with residual
//!   history and a pluggable inner-product reducer (the distributed
//!   reconstructor in `xct-core` injects an allreduce there),
//! * [`PrecisionOperator`] — wraps the fused buffered SpMM kernels with
//!   adaptive normalization for any [`Precision`](xct_fp16::Precision).
//!
//! # Execution contexts
//!
//! Every operator apply and solver loop threads an
//! [`ExecContext`](xct_exec::ExecContext): scratch buffers come from its
//! [`Workspace`](xct_exec::Workspace) (keyed by
//! [`BufferRole`](xct_exec::BufferRole)), parallel kernel launches go
//! through its [`Executor`](xct_exec::Executor), and data movement is
//! metered in its [`ExecCounters`](xct_exec::ExecCounters). The plain
//! entry points ([`cgls`], [`sirt`], [`tv_reconstruct`]) build a private
//! serial context per call; the `*_in` variants ([`cgls_in`],
//! [`sirt_in`], [`tv_reconstruct_in`]) borrow a caller-owned context so
//! that repeated solves — and every iteration after the first — reuse
//! warm buffers and allocate nothing. The migration rule for new code:
//! take per-apply staging from `ctx.workspace`, never `vec![...]` inside
//! an apply or an iteration loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cgls;
mod operator;
mod precision_op;
mod sirt;
mod stepper;
mod tv;

pub use cgls::{cgls, cgls_in, cgls_with, CglsConfig, CglsReport};
pub use operator::{CsrOperator, LinearOperator, SystemMatrixOperator};
pub use precision_op::PrecisionOperator;
pub use sirt::{sirt, sirt_in, SirtConfig};
pub use stepper::{CglsSnapshot, CglsSolver};
pub use tv::{tv_reconstruct, tv_reconstruct_in, tv_value, TvConfig};
pub use xct_exec::{
    BufferRole, ExecContext, ExecCounters, Executor, Phase, SpanGuard, Telemetry, Workspace,
};
