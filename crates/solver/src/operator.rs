//! The linear-operator abstraction CGLS iterates with.

use xct_exec::ExecContext;
use xct_geometry::SystemMatrix;
use xct_spmm::Csr;

/// A (possibly matrix-free, possibly distributed) linear operator.
///
/// The interface speaks `f32` regardless of the internal precision:
/// quantization to half, normalization, kernel dispatch, and any
/// communication happen inside the implementation. `fusing` reports how
/// many slices the operator processes at once — vectors are slice-major
/// of length `cols()` / `rows()` *totals* (already multiplied by fusing).
///
/// Every apply threads an [`ExecContext`]: implementations draw scratch
/// from `ctx.workspace` (never allocate fresh buffers per call), dispatch
/// parallel work through `ctx.executor`, and meter traffic into
/// `ctx.counters`. This is the contract that makes steady-state solver
/// iterations allocation-free — new operator implementations must take
/// per-apply staging through [`Workspace::take`](xct_exec::Workspace::take)
/// / `put` rather than `vec![...]`.
pub trait LinearOperator: Sync {
    /// Total output length of [`apply`](Self::apply).
    fn rows(&self) -> usize;
    /// Total input length of [`apply`](Self::apply).
    fn cols(&self) -> usize;
    /// `y = A·x`.
    fn apply(&self, x: &[f32], y: &mut [f32], ctx: &mut ExecContext);
    /// `x = Aᵀ·y`.
    fn apply_transpose(&self, y: &[f32], x: &mut [f32], ctx: &mut ExecContext);
}

/// Reference operator: the memoized Siddon matrix applied row by row.
pub struct SystemMatrixOperator<'a> {
    matrix: &'a SystemMatrix,
}

impl<'a> SystemMatrixOperator<'a> {
    /// Wraps a system matrix.
    pub fn new(matrix: &'a SystemMatrix) -> Self {
        SystemMatrixOperator { matrix }
    }
}

impl LinearOperator for SystemMatrixOperator<'_> {
    fn rows(&self) -> usize {
        self.matrix.num_rays()
    }
    fn cols(&self) -> usize {
        self.matrix.num_voxels()
    }
    fn apply(&self, x: &[f32], y: &mut [f32], _ctx: &mut ExecContext) {
        self.matrix.project(x, y);
    }
    fn apply_transpose(&self, y: &[f32], x: &mut [f32], _ctx: &mut ExecContext) {
        self.matrix.backproject(y, x);
    }
}

/// CSR-backed operator in full f32 (the unoptimized baseline path).
pub struct CsrOperator {
    a: Csr<f32>,
    at: Csr<f32>,
}

impl CsrOperator {
    /// Builds `A` and the explicit transpose (MemXCT memoizes both).
    pub fn new(a: Csr<f32>) -> Self {
        let at = a.transpose();
        CsrOperator { a, at }
    }

    /// Access to the forward matrix.
    pub fn forward(&self) -> &Csr<f32> {
        &self.a
    }

    /// Meters one CSR SpMV: values + column indices + row pointers +
    /// gathered inputs read once, outputs written once.
    fn record(&self, m: &Csr<f32>, ctx: &mut ExecContext) {
        let nnz = m.nnz() as u64;
        let rows = m.num_rows() as u64;
        ctx.counters
            .record_kernel(2 * nnz, nnz * (4 + 4 + 4) + (rows + 1) * 4, rows * 4);
    }
}

impl LinearOperator for CsrOperator {
    fn rows(&self) -> usize {
        self.a.num_rows()
    }
    fn cols(&self) -> usize {
        self.a.num_cols()
    }
    fn apply(&self, x: &[f32], y: &mut [f32], ctx: &mut ExecContext) {
        self.a.spmv::<f32>(x, y);
        self.record(&self.a, ctx);
    }
    fn apply_transpose(&self, y: &[f32], x: &mut [f32], ctx: &mut ExecContext) {
        self.at.spmv::<f32>(y, x);
        self.record(&self.at, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::{ImageGrid, ScanGeometry};

    #[test]
    fn wrappers_agree_with_each_other() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 8);
        let sm = SystemMatrix::build(&scan);
        let ref_op = SystemMatrixOperator::new(&sm);
        let csr_op = CsrOperator::new(Csr::from_system_matrix(&sm));
        assert_eq!(ref_op.rows(), csr_op.rows());
        assert_eq!(ref_op.cols(), csr_op.cols());
        let mut ctx = ExecContext::serial();

        let x: Vec<f32> = (0..ref_op.cols()).map(|i| (i % 9) as f32 / 9.0).collect();
        let mut y1 = vec![0.0f32; ref_op.rows()];
        let mut y2 = vec![0.0f32; ref_op.rows()];
        ref_op.apply(&x, &mut y1, &mut ctx);
        csr_op.apply(&x, &mut y2, &mut ctx);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0));
        }

        let y: Vec<f32> = (0..ref_op.rows()).map(|i| (i % 7) as f32 / 7.0).collect();
        let mut x1 = vec![0.0f32; ref_op.cols()];
        let mut x2 = vec![0.0f32; ref_op.cols()];
        ref_op.apply_transpose(&y, &mut x1, &mut ctx);
        csr_op.apply_transpose(&y, &mut x2, &mut ctx);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0));
        }
    }

    #[test]
    fn csr_operator_meters_its_traffic() {
        let scan = ScanGeometry::uniform(ImageGrid::square(8, 1.0), 8);
        let sm = SystemMatrix::build(&scan);
        let csr_op = CsrOperator::new(Csr::from_system_matrix(&sm));
        let mut ctx = ExecContext::serial();
        let x = vec![1.0f32; csr_op.cols()];
        let mut y = vec![0.0f32; csr_op.rows()];
        csr_op.apply(&x, &mut y, &mut ctx);
        assert_eq!(ctx.counters.kernel_launches, 1);
        assert_eq!(ctx.counters.flops, 2 * csr_op.forward().nnz() as u64);
        assert!(ctx.counters.bytes() > 0);
    }
}
