//! The linear-operator abstraction CGLS iterates with.

use xct_geometry::SystemMatrix;
use xct_spmm::Csr;

/// A (possibly matrix-free, possibly distributed) linear operator.
///
/// The interface speaks `f32` regardless of the internal precision:
/// quantization to half, normalization, kernel dispatch, and any
/// communication happen inside the implementation. `fusing` reports how
/// many slices the operator processes at once — vectors are slice-major
/// of length `cols()` / `rows()` *totals* (already multiplied by fusing).
pub trait LinearOperator: Sync {
    /// Total output length of [`apply`](Self::apply).
    fn rows(&self) -> usize;
    /// Total input length of [`apply`](Self::apply).
    fn cols(&self) -> usize;
    /// `y = A·x`.
    fn apply(&self, x: &[f32], y: &mut [f32]);
    /// `x = Aᵀ·y`.
    fn apply_transpose(&self, y: &[f32], x: &mut [f32]);
}

/// Reference operator: the memoized Siddon matrix applied row by row.
pub struct SystemMatrixOperator<'a> {
    matrix: &'a SystemMatrix,
}

impl<'a> SystemMatrixOperator<'a> {
    /// Wraps a system matrix.
    pub fn new(matrix: &'a SystemMatrix) -> Self {
        SystemMatrixOperator { matrix }
    }
}

impl LinearOperator for SystemMatrixOperator<'_> {
    fn rows(&self) -> usize {
        self.matrix.num_rays()
    }
    fn cols(&self) -> usize {
        self.matrix.num_voxels()
    }
    fn apply(&self, x: &[f32], y: &mut [f32]) {
        self.matrix.project(x, y);
    }
    fn apply_transpose(&self, y: &[f32], x: &mut [f32]) {
        self.matrix.backproject(y, x);
    }
}

/// CSR-backed operator in full f32 (the unoptimized baseline path).
pub struct CsrOperator {
    a: Csr<f32>,
    at: Csr<f32>,
}

impl CsrOperator {
    /// Builds `A` and the explicit transpose (MemXCT memoizes both).
    pub fn new(a: Csr<f32>) -> Self {
        let at = a.transpose();
        CsrOperator { a, at }
    }

    /// Access to the forward matrix.
    pub fn forward(&self) -> &Csr<f32> {
        &self.a
    }
}

impl LinearOperator for CsrOperator {
    fn rows(&self) -> usize {
        self.a.num_rows()
    }
    fn cols(&self) -> usize {
        self.a.num_cols()
    }
    fn apply(&self, x: &[f32], y: &mut [f32]) {
        self.a.spmv::<f32>(x, y);
    }
    fn apply_transpose(&self, y: &[f32], x: &mut [f32]) {
        self.at.spmv::<f32>(y, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xct_geometry::{ImageGrid, ScanGeometry};

    #[test]
    fn wrappers_agree_with_each_other() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 8);
        let sm = SystemMatrix::build(&scan);
        let ref_op = SystemMatrixOperator::new(&sm);
        let csr_op = CsrOperator::new(Csr::from_system_matrix(&sm));
        assert_eq!(ref_op.rows(), csr_op.rows());
        assert_eq!(ref_op.cols(), csr_op.cols());

        let x: Vec<f32> = (0..ref_op.cols()).map(|i| (i % 9) as f32 / 9.0).collect();
        let mut y1 = vec![0.0f32; ref_op.rows()];
        let mut y2 = vec![0.0f32; ref_op.rows()];
        ref_op.apply(&x, &mut y1);
        csr_op.apply(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0));
        }

        let y: Vec<f32> = (0..ref_op.rows()).map(|i| (i % 7) as f32 / 7.0).collect();
        let mut x1 = vec![0.0f32; ref_op.cols()];
        let mut x2 = vec![0.0f32; ref_op.cols()];
        ref_op.apply_transpose(&y, &mut x1);
        csr_op.apply_transpose(&y, &mut x2);
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0));
        }
    }
}
