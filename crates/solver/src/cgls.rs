//! Damped CGLS: conjugate gradient on the least-squares normal equations.

use crate::operator::LinearOperator;
use std::time::Instant;
use xct_exec::{BufferRole, ExecContext, MetricId, Phase};

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct CglsConfig {
    /// Iteration cap. The paper stops Chip at 24 iterations to avoid
    /// noise overfitting (§IV-F); scaling runs use 30 (§IV-E).
    pub max_iters: usize,
    /// Stop when `‖r‖/‖y‖` falls below this (0 disables).
    pub tolerance: f64,
    /// Tikhonov damping λ: minimizes `‖y − Ax‖² + λ²‖x‖²` (the `R(x)`
    /// hook of Eq. 1).
    pub damping: f64,
}

impl Default for CglsConfig {
    fn default() -> Self {
        CglsConfig {
            max_iters: 30,
            tolerance: 0.0,
            damping: 0.0,
        }
    }
}

/// Solver outcome.
#[derive(Debug, Clone)]
pub struct CglsReport {
    /// The reconstruction.
    pub x: Vec<f32>,
    /// Relative residual `‖y − Ax‖/‖y‖` *after* each iteration
    /// (`history[0]` is the initial 1.0).
    pub residual_history: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the cap.
    pub converged: bool,
    /// Wall-clock seconds per recorded residual (same indexing as
    /// `residual_history`) — the x-axis of Fig 13.
    pub time_history: Vec<f64>,
}

/// Solves `min ‖y − Ax‖² + λ²‖x‖²` with local (single-process) inner
/// products and a private serial context.
///
/// ```
/// use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};
/// use xct_solver::{cgls, CglsConfig, ExecContext, LinearOperator, SystemMatrixOperator};
///
/// let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 16);
/// let sm = SystemMatrix::build(&scan);
/// let op = SystemMatrixOperator::new(&sm);
/// let phantom = vec![0.5f32; op.cols()];
/// let mut y = vec![0.0f32; op.rows()];
/// op.apply(&phantom, &mut y, &mut ExecContext::serial());
/// let report = cgls(&op, &y, &CglsConfig::default());
/// assert!(report.residual_history.last().unwrap() < &0.05);
/// ```
pub fn cgls(op: &dyn LinearOperator, y: &[f32], config: &CglsConfig) -> CglsReport {
    cgls_in(op, y, config, &mut ExecContext::serial(), &mut |v| v)
}

/// [`cgls`] with a pluggable scalar reducer applied to every inner
/// product. A distributed caller passes an allreduce-sum here; partial
/// dot products from each rank then combine into global scalars, which
/// is all CG needs to stay coherent across processes.
pub fn cgls_with(
    op: &dyn LinearOperator,
    y: &[f32],
    config: &CglsConfig,
    reduce: &mut dyn FnMut(f64) -> f64,
) -> CglsReport {
    cgls_in(op, y, config, &mut ExecContext::serial(), reduce)
}

/// [`cgls_with`] running inside a caller-owned [`ExecContext`].
///
/// All iteration vectors (`r`, `s`, `p`, `q`) come from the context's
/// workspace, so after the first call every subsequent solve — and every
/// iteration within a solve — is allocation-free apart from the returned
/// report. The caller keeps the context (and its warm buffers, counters,
/// and executor policy) across solves.
pub fn cgls_in(
    op: &dyn LinearOperator,
    y: &[f32],
    config: &CglsConfig,
    ctx: &mut ExecContext,
    reduce: &mut dyn FnMut(f64) -> f64,
) -> CglsReport {
    assert_eq!(y.len(), op.rows(), "measurement length mismatch");
    let n = op.cols();
    let m = op.rows();
    let lambda = config.damping;
    // xct-allow(wall-clock): the solver report carries real wall time even with telemetry disabled
    let t0 = Instant::now();

    let setup_span = ctx.telemetry.span(Phase::SolverSetup);
    let mut x = vec![0.0f32; n];
    // r = y − A·x = y (x starts at zero).
    let mut r = ctx.workspace.take_uninit::<f32>(BufferRole::CgResidual, m);
    r.copy_from_slice(y);
    // s = Aᵀ·r − λ²·x = Aᵀ·y.
    let mut s = ctx.workspace.take::<f32>(BufferRole::CgNormal, n);
    op.apply_transpose(&r, &mut s, ctx);
    let mut p = ctx.workspace.take_uninit::<f32>(BufferRole::CgDirection, n);
    p.copy_from_slice(&s);
    let mut gamma = reduce(dot(&s, &s));

    let y_norm = reduce(dot(y, y)).sqrt();
    let mut history = Vec::with_capacity(config.max_iters + 1);
    history.push(1.0f64);
    let mut times = Vec::with_capacity(config.max_iters + 1);
    times.push(t0.elapsed().as_secs_f64());
    let mut q = ctx.workspace.take::<f32>(BufferRole::CgProjected, m);
    let mut converged = false;
    let mut iterations = 0;
    drop(setup_span);

    for _ in 0..config.max_iters {
        let _iter_span = ctx.telemetry.span(Phase::SolverIteration);
        if gamma <= 0.0 {
            // Exact solution reached (gradient vanished).
            converged = true;
            break;
        }
        op.apply(&p, &mut q, ctx);
        let mut delta = reduce(dot(&q, &q));
        if lambda > 0.0 {
            delta += lambda * lambda * reduce(dot(&p, &p));
        }
        if delta <= 0.0 {
            break; // p in the null space; cannot progress
        }
        let alpha = gamma / delta;
        axpy(alpha as f32, &p, &mut x);
        axpy(-(alpha as f32), &q, &mut r);
        // s = Aᵀ·r − λ²·x
        op.apply_transpose(&r, &mut s, ctx);
        if lambda > 0.0 {
            let l2 = (lambda * lambda) as f32;
            for (si, xi) in s.iter_mut().zip(&x) {
                *si -= l2 * xi;
            }
        }
        let gamma_new = reduce(dot(&s, &s));
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        // p = s + β·p
        for (pi, &si) in p.iter_mut().zip(&s) {
            *pi = si + (beta as f32) * *pi;
        }

        iterations += 1;
        let rel = if y_norm > 0.0 {
            reduce(dot(&r, &r)).sqrt() / y_norm
        } else {
            0.0
        };
        history.push(rel);
        times.push(t0.elapsed().as_secs_f64());
        ctx.telemetry.event("cgls.residual", rel);
        ctx.telemetry.metric_inc(MetricId::SolverIterations);
        ctx.telemetry.gauge_set(MetricId::SolverResidual, rel);
        if config.tolerance > 0.0 && rel <= config.tolerance {
            converged = true;
            break;
        }
    }

    ctx.workspace.put(BufferRole::CgResidual, r);
    ctx.workspace.put(BufferRole::CgNormal, s);
    ctx.workspace.put(BufferRole::CgDirection, p);
    ctx.workspace.put(BufferRole::CgProjected, q);

    CglsReport {
        x,
        residual_history: history,
        iterations,
        converged,
        time_history: times,
    }
}

/// f64-accumulated dot product of f32 slices.
fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&p, &q)| f64::from(p) * f64::from(q))
        .sum()
}

/// `y += alpha * x`.
fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CsrOperator, SystemMatrixOperator};
    use xct_geometry::{ImageGrid, ScanGeometry, SystemMatrix};
    use xct_spmm::Csr;

    /// Identity-ish diagonal operator for exact-solution tests.
    fn diagonal(n: usize) -> CsrOperator {
        let t = (0..n as u32).map(|i| (i, i, 1.0 + i as f32 * 0.1));
        CsrOperator::new(Csr::from_triplets(n, n, t))
    }

    #[test]
    fn solves_diagonal_system_exactly() {
        let op = diagonal(20);
        let x_true: Vec<f32> = (0..20).map(|i| (i as f32 - 10.0) / 5.0).collect();
        let mut y = vec![0.0f32; 20];
        op.apply(&x_true, &mut y, &mut ExecContext::serial());
        let report = cgls(
            &op,
            &y,
            &CglsConfig {
                max_iters: 50,
                tolerance: 1e-10,
                damping: 0.0,
            },
        );
        assert!(report.converged);
        for (a, b) in report.x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn residual_history_is_monotone_nonincreasing() {
        // CGLS monotonically decreases ‖r‖ in exact arithmetic; allow
        // tiny float slack.
        let scan = ScanGeometry::uniform(ImageGrid::square(16, 1.0), 12);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        let x_true: Vec<f32> = (0..op.cols())
            .map(|i| ((i * 13 + 5) % 97) as f32 / 97.0)
            .collect();
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x_true, &mut y, &mut ExecContext::serial());
        let report = cgls(&op, &y, &CglsConfig::default());
        for w in report.residual_history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-6), "{} -> {}", w[0], w[1]);
        }
        assert!(*report.residual_history.last().unwrap() < 0.05);
    }

    #[test]
    fn reconstructs_from_consistent_measurements() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 24);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        // A disk phantom.
        let x_true: Vec<f32> = (0..144)
            .map(|i| {
                let (ix, iz) = ((i % 12) as f32 - 5.5, (i / 12) as f32 - 5.5);
                if ix * ix + iz * iz < 16.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x_true, &mut y, &mut ExecContext::serial());
        let report = cgls(
            &op,
            &y,
            &CglsConfig {
                max_iters: 100,
                tolerance: 1e-6,
                damping: 0.0,
            },
        );
        let err: f64 = report
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| f64::from(a - b).powi(2))
            .sum::<f64>()
            .sqrt()
            / (x_true.iter().map(|v| f64::from(*v).powi(2)).sum::<f64>()).sqrt();
        assert!(err < 0.05, "relative reconstruction error {err}");
    }

    #[test]
    fn damping_shrinks_the_solution_norm() {
        let scan = ScanGeometry::uniform(ImageGrid::square(10, 1.0), 8);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        let x_true = vec![1.0f32; op.cols()];
        let mut y = vec![0.0f32; op.rows()];
        op.apply(&x_true, &mut y, &mut ExecContext::serial());
        let plain = cgls(
            &op,
            &y,
            &CglsConfig {
                max_iters: 40,
                tolerance: 0.0,
                damping: 0.0,
            },
        );
        let damped = cgls(
            &op,
            &y,
            &CglsConfig {
                max_iters: 40,
                tolerance: 0.0,
                damping: 2.0,
            },
        );
        let norm = |v: &[f32]| v.iter().map(|x| f64::from(*x).powi(2)).sum::<f64>();
        assert!(norm(&damped.x) < norm(&plain.x));
    }

    #[test]
    fn zero_measurement_returns_zero() {
        let op = diagonal(8);
        let report = cgls(&op, &[0.0; 8], &CglsConfig::default());
        assert!(report.x.iter().all(|&v| v == 0.0));
        assert!(report.converged);
    }

    #[test]
    fn reducer_is_used_for_inner_products() {
        // A reducer that doubles everything must not change the solution
        // (alpha and beta are ratios of reduced quantities).
        let op = diagonal(10);
        let x_true: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let mut y = vec![0.0f32; 10];
        op.apply(&x_true, &mut y, &mut ExecContext::serial());
        let mut calls = 0usize;
        let report = cgls_with(
            &op,
            &y,
            &CglsConfig {
                max_iters: 30,
                tolerance: 1e-10,
                damping: 0.0,
            },
            &mut |v| {
                calls += 1;
                2.0 * v
            },
        );
        assert!(calls > 0);
        for (a, b) in report.x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn iteration_cap_respected() {
        let scan = ScanGeometry::uniform(ImageGrid::square(12, 1.0), 12);
        let sm = SystemMatrix::build(&scan);
        let op = SystemMatrixOperator::new(&sm);
        let y = vec![1.0f32; op.rows()];
        let report = cgls(
            &op,
            &y,
            &CglsConfig {
                max_iters: 5,
                tolerance: 0.0,
                damping: 0.0,
            },
        );
        assert_eq!(report.iterations, 5);
        assert_eq!(report.residual_history.len(), 6);
        assert_eq!(report.time_history.len(), 6);
        assert!(!report.converged);
    }

    #[test]
    fn repeated_solves_share_one_workspace() {
        let op = diagonal(16);
        let x_true: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        let mut ctx = ExecContext::serial();
        let mut y = vec![0.0f32; 16];
        op.apply(&x_true, &mut y, &mut ctx);
        let config = CglsConfig {
            max_iters: 20,
            tolerance: 1e-12,
            damping: 0.0,
        };
        let first = cgls_in(&op, &y, &config, &mut ctx, &mut |v| v);
        let warm = ctx.workspace.alloc_events();
        let second = cgls_in(&op, &y, &config, &mut ctx, &mut |v| v);
        assert_eq!(
            ctx.workspace.alloc_events(),
            warm,
            "warm solve must reuse buffers"
        );
        for (a, b) in first.x.iter().zip(&second.x) {
            assert_eq!(a.to_bits(), b.to_bits(), "warm solve must be bit-identical");
        }
    }

    #[test]
    #[should_panic(expected = "measurement length mismatch")]
    fn wrong_y_length_panics() {
        let op = diagonal(4);
        cgls(&op, &[1.0; 3], &CglsConfig::default());
    }
}
